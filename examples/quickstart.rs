//! Quickstart: the paper's headline result on a small, fully enumerable
//! universe.
//!
//! Builds an Eckhardt–Lee-style universe, debugs a pair of versions under
//! both testing regimes, and prints the exact decomposition of the system
//! pfd (equations (22) and (23)), cross-checked against brute-force
//! enumeration and a Monte Carlo estimate.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use diversim::prelude::*;
use diversim::sim::campaign::CampaignRegime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The universe: 6 demands whose difficulty varies — the engine of
    //    the Eckhardt–Lee effect. One singleton fault per demand keeps the
    //    universe exactly the paper's abstract score model.
    let space = DemandSpace::new(6)?;
    let model = Arc::new(FaultModelBuilder::new(space).singleton_faults().build()?);
    let propensities = vec![0.02, 0.05, 0.1, 0.2, 0.4, 0.6];
    let pop = BernoulliPopulation::new(Arc::clone(&model), propensities)?;
    let q = UsageProfile::uniform(space);

    // 2. Before testing: the classic EL analysis.
    let el = ElAnalysis::compute(&pop, &q);
    println!("=== Untested pair (Eckhardt–Lee) ===");
    println!("E[Θ]              = {:.6}", el.mean_theta);
    println!("Var(Θ)            = {:.6}", el.var_theta);
    println!("joint pfd E[Θ²]   = {:.6}", el.joint_pfd);
    println!("independence pred = {:.6}", el.independent_pfd);
    println!(
        "dependence ratio  = {:.3}x worse than independence\n",
        el.dependence_ratio().unwrap_or(f64::NAN)
    );

    // 3. The testing process: suites of 4 i.i.d. operational demands.
    let suite_size = 4;
    let measure = enumerate_iid_suites(&q, suite_size, 1 << 16)?;
    let independent =
        MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::independent(&measure), &q);
    let shared = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::Shared(&measure), &q);

    println!("=== After debugging on {suite_size}-demand suites ===");
    println!("regime               system pfd   mean-prod   Var(Θ_T)   suite-coupling");
    println!(
        "independent (eq 22)  {:<12.6} {:<11.6} {:<10.6} {:<.6}",
        independent.system_pfd(),
        independent.mean_product,
        independent.difficulty_covariance,
        independent.suite_coupling
    );
    println!(
        "shared      (eq 23)  {:<12.6} {:<11.6} {:<10.6} {:<.6}",
        shared.system_pfd(),
        shared.mean_product,
        shared.difficulty_covariance,
        shared.suite_coupling
    );
    println!(
        "\nshared-suite penalty Σ Var_Ξ(ξ(x,T))Q(x) = {:.6} ({:+.1}% system pfd)\n",
        shared.suite_coupling,
        100.0 * shared.suite_coupling / independent.system_pfd()
    );

    // 4. Independent validation: brute-force enumeration of the full
    //    process (every version × every suite with its probability).
    let support = pop.enumerate(1 << 16).expect("enumerable universe");
    let report = verify_pair(&pop, &pop, &support, &support, &measure, &q);
    println!("=== Exact verification (formula vs brute force) ===");
    print!("{report}");
    assert!(report.all_hold(1e-10), "identity violated!");

    // 5. Monte Carlo cross-check (as one would run on larger universes).
    let scenario = Scenario::builder()
        .population(pop.clone())
        .profile(q.clone())
        .regime(CampaignRegime::SharedSuite)
        .suite_size(suite_size)
        .seed(2024)
        .build()?;
    let est = scenario.estimate(50_000, diversim::sim::runner::default_threads());
    println!("\n=== Monte Carlo cross-check (shared suite) ===");
    println!(
        "estimated system pfd = {:.6} ± {:.6} (95% CI {})",
        est.system_pfd.mean, est.system_pfd.standard_error, est.system_pfd.interval
    );
    println!("exact value          = {:.6}", shared.system_pfd());
    assert!(
        est.system_pfd.consistent_with(shared.system_pfd()),
        "simulation disagrees with the exact value"
    );
    println!("\nAll paths agree: the shared test suite makes the pair measurably less diverse.");
    Ok(())
}
