//! The §3.4.1 cost trade-off and reliability growth (the paper's ref [5]
//! study): how version and system pfd evolve with testing effort under
//! different regimes, and when a merged 2n-demand shared suite beats two
//! independent n-demand suites.
//!
//! Run with: `cargo run --release --example test_regime_tradeoff`

use diversim::prelude::*;
use diversim::sim::campaign::CampaignRegime;
use diversim::universe::generator::{ProfileKind, PropensityKind, RegionSize, UniverseSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized universe with fault-region cascades (region size 1-4).
    let spec = UniverseSpec {
        n_demands: 200,
        n_faults: 60,
        region_size: RegionSize::Uniform { min: 1, max: 4 },
        profile: ProfileKind::Zipf(0.8),
    };
    let mut rng = StdRng::seed_from_u64(11);
    let (universe, pop) =
        spec.generate_with_population(&mut rng, PropensityKind::Uniform { lo: 0.05, hi: 0.5 })?;
    let world = SimWorld::from_universe("tradeoff", &universe, pop);
    let scenario = world.scenario().build()?;
    let threads = diversim::sim::runner::default_threads();
    let replications = 3_000;
    let checkpoints = [0usize, 5, 10, 20, 40, 80, 160, 320];

    println!("=== Reliability growth (ref [5] replication) ===");
    println!("universe: {} demands, {} faults, Zipf(0.8) usage", 200, 60);
    println!("replications per curve: {replications}\n");
    println!("          ------ independent suites ------    -------- shared suite ---------");
    println!("demands   version pfd     system pfd          version pfd     system pfd");

    let ind = scenario
        .with_regime(CampaignRegime::IndependentSuites)
        .with_seed(21)
        .growth(&checkpoints, replications, threads)?;
    let sh = scenario
        .with_seed(22)
        .growth(&checkpoints, replications, threads)?;
    for (i, &n) in checkpoints.iter().enumerate() {
        println!(
            "{n:<9} {:<15.6} {:<19.6} {:<15.6} {:<.6}",
            ind.version_a[i].mean(),
            ind.system[i].mean(),
            sh.version_a[i].mean(),
            sh.system[i].mean(),
        );
    }
    println!(
        "\nVersion reliability grows identically; the system under the shared \
         suite lags —\nthe Var_Ξ coupling of eq (23) in action.\n"
    );

    // §3.4.1: merged 2n shared suite vs independent n suites at equal
    // running cost of n demands per version... and at equal *generation*
    // cost (one procedure invocation instead of two).
    println!("=== §3.4.1 merged-suite trade-off ===");
    println!("n        independent(n each)   merged(2n shared)   merged wins?");
    let merged_scenario = scenario.with_seeds(SeedPolicy::offset(0));
    for n in [5usize, 10, 20, 40, 80] {
        let est = merged_scenario.merged_estimate(n, 2_000, threads);
        println!(
            "{n:<8} {:<21.6} {:<19.6} {}",
            est.independent_system.mean,
            est.merged_system.mean,
            if est.merged_system.mean <= est.independent_system.mean {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "\nWith free test execution the merged suite dominates (it strictly \
         dominates fault-wise);\nthe paper's point is that when *running* \
         tests is the binding cost, independent suites\nbuy diversity that \
         the merged/shared regime gives up."
    );
    Ok(())
}
