//! Forced design diversity (Littlewood–Miller) under testing — equations
//! (9)/(10) and the forced-diversity testing results (17), (21), (24),
//! (25).
//!
//! Two methodologies with *mirrored* difficulty (what is hard for A is
//! easy for B) produce negatively correlated difficulty functions, beating
//! the independence benchmark before testing. The example then shows what
//! debugging does to that advantage under both suite regimes, including an
//! engineered universe where the eq-25 covariance term is *negative* — the
//! paper's counterintuitive case where the cheaper shared suite yields the
//! more reliable system.
//!
//! Run with: `cargo run --release --example forced_diversity`

use std::sync::Arc;

use diversim::prelude::*;
use diversim::universe::generator::mirrored_pair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: mirrored methodologies on a singleton universe.
    let space = DemandSpace::new(10)?;
    let model = Arc::new(FaultModelBuilder::new(space).singleton_faults().build()?);
    let (pop_a, pop_b) = mirrored_pair(&model, 0.5, 0.05)?;
    let q = UsageProfile::uniform(space);

    let lm = LmAnalysis::compute(&pop_a, &pop_b, &q);
    println!("=== Untested forced-diversity pair (Littlewood–Miller) ===");
    println!("E[Θ_A]             = {:.6}", lm.mean_theta_a);
    println!("E[Θ_B]             = {:.6}", lm.mean_theta_b);
    println!("Cov(Θ_A, Θ_B)      = {:+.6}", lm.covariance);
    println!("joint pfd (eq 9)   = {:.6}", lm.joint_pfd);
    println!("independence bench = {:.6}", lm.independent_pfd);
    println!(
        "→ forced diversity {} independence\n",
        if lm.beats_independence() {
            "BEATS"
        } else {
            "does not beat"
        }
    );

    // Testing the mirrored pair under both regimes.
    let measure = enumerate_iid_suites(&q, 3, 1 << 16)?;
    let ind = MarginalAnalysis::compute(&pop_a, &pop_b, SuiteAssignment::independent(&measure), &q);
    let sh = MarginalAnalysis::compute(&pop_a, &pop_b, SuiteAssignment::Shared(&measure), &q);
    println!("=== After 3-demand suites (eqs 24 vs 25) ===");
    println!("independent suites: system pfd = {:.6}", ind.system_pfd());
    println!(
        "shared suite:       system pfd = {:.6} (coupling {:+.6})\n",
        sh.system_pfd(),
        sh.suite_coupling
    );

    // Part 2: the engineered negative-coupling universe. Faults with
    // overlapping regions make the same suite repair A and B on
    // *different* demands, so ξ_A and ξ_B anti-move across suites.
    let space2 = DemandSpace::new(3)?;
    let model2 = Arc::new(
        FaultModelBuilder::new(space2)
            .fault([DemandId::new(0), DemandId::new(1)]) // A-prone fault
            .fault([DemandId::new(0), DemandId::new(2)]) // B-prone fault
            .build()?,
    );
    let a2 = BernoulliPopulation::new(Arc::clone(&model2), vec![0.9, 0.0])?;
    let b2 = BernoulliPopulation::new(Arc::clone(&model2), vec![0.0, 0.9])?;
    let q2 = UsageProfile::uniform(space2);
    let m2 = enumerate_iid_suites(&q2, 1, 1 << 8)?;
    let ind2 = MarginalAnalysis::compute(&a2, &b2, SuiteAssignment::independent(&m2), &q2);
    let sh2 = MarginalAnalysis::compute(&a2, &b2, SuiteAssignment::Shared(&m2), &q2);
    println!("=== Engineered negative eq-25 coupling ===");
    println!("independent suites: system pfd = {:.6}", ind2.system_pfd());
    println!(
        "shared suite:       system pfd = {:.6} (coupling {:+.6})",
        sh2.system_pfd(),
        sh2.suite_coupling
    );
    assert!(sh2.suite_coupling < 0.0);
    assert!(sh2.system_pfd() < ind2.system_pfd());
    println!(
        "→ the SHARED suite wins: \"by testing more cheaply … a more \
         reliable system can be delivered\" (§3.4.2).\n"
    );

    // Exact verification of the forced-diversity identities, on a
    // 6-demand mirrored universe small enough for the brute-force
    // quadruple sum.
    let vspace = DemandSpace::new(6)?;
    let vmodel = Arc::new(FaultModelBuilder::new(vspace).singleton_faults().build()?);
    let (vpop_a, vpop_b) = mirrored_pair(&vmodel, 0.5, 0.05)?;
    let vq = UsageProfile::uniform(vspace);
    let sa = vpop_a.enumerate(1 << 12).expect("enumerable");
    let sb = vpop_b.enumerate(1 << 12).expect("enumerable");
    let small_measure = enumerate_iid_suites(&vq, 2, 1 << 16)?;
    let report = verify_pair(&vpop_a, &vpop_b, &sa, &sb, &small_measure, &vq);
    assert!(report.all_hold(1e-10), "identity violated:\n{report}");
    println!("All forced-diversity identities verified exactly.");
    Ok(())
}
