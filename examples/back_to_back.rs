//! Back-to-back testing (§4.2): sweeping the identical-failure probability
//! γ between the paper's optimistic and pessimistic bounds.
//!
//! Back-to-back testing detects failures by output mismatch — no oracle
//! needed — but coincident failures with identical wrong outputs are
//! invisible. The paper bounds the achievable system reliability between
//! the perfect-oracle shared-suite value (γ = 0) and "no system
//! improvement at all" (γ = 1). This example measures the whole spectrum
//! by simulation and checks it stays inside the analytical bounds.
//!
//! Run with: `cargo run --release --example back_to_back`

use std::sync::Arc;

use diversim::prelude::*;
use diversim::sim::campaign::CampaignRegime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Singleton universe: the regime where the §4.2 bounds are exact.
    let space = DemandSpace::new(8)?;
    let model = Arc::new(FaultModelBuilder::new(space).singleton_faults().build()?);
    let pop = BernoulliPopulation::new(
        Arc::clone(&model),
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
    )?;
    let q = UsageProfile::uniform(space);
    let suite_size = 6;

    // Analytical bounds from the explicit suite measure.
    let measure = enumerate_iid_suites(&q, suite_size, 1 << 16)?;
    let bounds = BackToBackBounds::compute(&pop, &pop, &measure, &q);
    println!("=== §4.2 analytical bounds (suite size {suite_size}) ===");
    println!("optimistic  (γ=0, = eq 23): {:.6}", bounds.optimistic);
    println!("pessimistic (γ=1, untested): {:.6}\n", bounds.pessimistic);

    // Simulated γ sweep: one scenario, re-specialised per γ (the
    // prepared world is built once and shared).
    let base = Scenario::builder()
        .population(pop.clone())
        .profile(q.clone())
        .suite_size(suite_size)
        .build()?;
    let replications = 40_000;
    println!("γ      system pfd   version pfd   inside bounds?");
    for step in 0..=10 {
        let gamma = step as f64 / 10.0;
        let identical = match step {
            0 => IdenticalFailureModel::Never,
            10 => IdenticalFailureModel::Always,
            _ => IdenticalFailureModel::Bernoulli(gamma),
        };
        let est = base
            .with_regime(CampaignRegime::BackToBack(identical))
            .with_seed(7 + step as u64)
            .estimate(replications, diversim::sim::runner::default_threads());
        let inside = bounds.contains(est.system_pfd.mean)
            || est.system_pfd.interval.contains(bounds.optimistic)
            || est.system_pfd.interval.contains(bounds.pessimistic);
        println!(
            "{gamma:.1}    {:.6}     {:.6}      {}",
            est.system_pfd.mean,
            est.version_a_pfd.mean,
            if inside { "yes" } else { "NO" }
        );
        assert!(inside, "γ={gamma} escaped the §4.2 bounds");
    }

    println!(
        "\nAs γ → 1 the versions still improve individually, but the system \
         gains vanish:\nversion reliability growth is exactly cancelled by \
         the loss of diversity (§4.2)."
    );
    Ok(())
}
