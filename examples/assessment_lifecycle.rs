//! The full lifecycle the paper's practical warning is about:
//!
//! 1. debug a two-version system with a stopping-rule-driven shared-suite
//!    campaign (acceptance testing "appears to be a common practice");
//! 2. *assess* the system pfd — naively, by squaring the demonstrated
//!    version pfd (the independence assumption eqs (20)–(23) forbid);
//! 3. deploy, observe operation, and compare the naive assessment with
//!    the true pfd and with an honest Clopper–Pearson assessment from
//!    operational data.
//!
//! Run with: `cargo run --release --example assessment_lifecycle`

use std::sync::Arc;

use diversim::core::metrics::DiversityReport;
use diversim::prelude::*;
use diversim::stats::stopping::{StoppingRule, StoppingState};
use diversim::universe::generator::{ProfileKind, PropensityKind, RegionSize, UniverseSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A production-flavoured universe: 500 demands, cascading faults.
    let spec = UniverseSpec {
        n_demands: 500,
        n_faults: 120,
        region_size: RegionSize::Geometric { mean: 2.0 },
        profile: ProfileKind::Zipf(0.9),
    };
    let mut rng = StdRng::seed_from_u64(2004);
    let (universe, pop) =
        spec.generate_with_population(&mut rng, PropensityKind::Uniform { lo: 0.02, hi: 0.3 })?;
    let model = Arc::clone(universe.model());
    let q = universe.profile().clone();

    // 1. Development: two versions from the same methodology.
    let mut rng = StdRng::seed_from_u64(77);
    let mut a = pop.sample(&mut rng);
    let mut b = pop.sample(&mut rng);
    println!("=== Development ===");
    println!(
        "version A: {} faults, pfd {:.5}",
        a.fault_count(),
        a.pfd(&model, &q)
    );
    println!(
        "version B: {} faults, pfd {:.5}",
        b.fault_count(),
        b.pfd(&model, &q)
    );

    // 2. Acceptance testing on ONE shared suite, stopping when 30
    //    consecutive demands pass on both channels (a failure-free rule at
    //    pfd 0.1 / 95%).
    let rule = StoppingRule::FailureFree {
        target: 0.1,
        confidence: 0.95,
    };
    let mut state = StoppingState::new(rule);
    let oracle = PerfectOracle::new();
    let fixer = PerfectFixer::new();
    let mut demands_run = 0u64;
    while !state.should_stop()? && demands_run < 100_000 {
        let x = q.sample(&mut rng);
        demands_run += 1;
        let mut any_failure = false;
        for v in [&mut a, &mut b] {
            if v.fails_on(&model, x) && oracle.detects(&mut rng, x) {
                any_failure = true;
                fixer.fix(&mut rng, &model, v, x);
            }
        }
        state.record(any_failure);
    }
    println!("\n=== Acceptance testing (shared suite, stopping rule) ===");
    println!("demands executed: {demands_run}");
    println!("version A pfd now: {:.6}", a.pfd(&model, &q));
    println!("version B pfd now: {:.6}", b.pfd(&model, &q));

    // 3. Assessment.
    let report = DiversityReport::compute(&a, &b, &model, &q);
    let naive = report.pfd_a * report.pfd_b;
    println!("\n=== Assessment ===");
    println!("naive (independence) system pfd prediction: {naive:.3e}");
    println!(
        "true system pfd:                            {:.3e}",
        report.joint_pfd
    );
    if naive > 0.0 {
        println!(
            "→ the independence assumption is optimistic by {:.1}x \
             (failure correlation {:.3}, Jaccard overlap {:.3})",
            report.joint_pfd / naive,
            report.correlation,
            report.jaccard
        );
    }

    // 4. Operation: one year of demands, honest interval assessment.
    let exposure = 50_000;
    let scenario = Scenario::builder()
        .population(pop)
        .profile(q.clone())
        .build()?;
    let log = scenario.operate(&a, &b, exposure, 4242);
    let iv = log.system_pfd_interval(0.95);
    println!("\n=== Operation ({exposure} demands) ===");
    println!("observed system failures: {}", log.system_failures);
    println!("Clopper–Pearson 95% assessment: {iv}");
    println!("true system pfd:                {:.6}", report.joint_pfd);
    assert!(
        iv.contains(report.joint_pfd) || log.system_failures == 0,
        "operational assessment should cover the truth"
    );
    if report.joint_pfd > naive {
        println!(
            "\nMoral (eqs 20–23): after shared-suite acceptance testing, never\n\
             assess a 1-out-of-2 system by multiplying demonstrated version pfds."
        );
    }
    Ok(())
}
