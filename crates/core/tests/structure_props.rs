//! Property tests of the structure-function algebra: monotonicity,
//! AND↔OR duality under complement, the k-of-n/flat-path identities and
//! the per-gate mixed-moment inequality hold on *arbitrary* trees, not
//! just the hand-picked fixtures of the unit tests.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use diversim_core::structure::{gate_moments, Structure};
use diversim_core::TestedDifficulty;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::bitset::BitSet;
use diversim_universe::demand::DemandSpace;
use diversim_universe::fault::FaultModelBuilder;
use diversim_universe::population::{BernoulliPopulation, Population};
use diversim_universe::profile::UsageProfile;

/// Components every generated tree may reference.
const COMPONENTS: usize = 6;

/// Demands of the bitset universe the set-algebra properties run over.
const DEMANDS: usize = 12;

/// Depth-bounded arbitrary structure trees over [`COMPONENTS`]
/// components (the vendored proptest has no recursive-strategy helper,
/// so recursion is explicit). Gates draw 1–3 children; `k` stays within
/// `1..=children`, so every generated tree validates.
fn tree(depth: usize) -> BoxedStrategy<Structure> {
    let leaf = (0usize..COMPONENTS).prop_map(Structure::component).boxed();
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        leaf,
        vec(tree(depth - 1), 1..4).prop_map(Structure::and).boxed(),
        vec(tree(depth - 1), 1..4).prop_map(Structure::or).boxed(),
        (vec(tree(depth - 1), 1..4), 0usize..100)
            .prop_map(|(children, raw)| Structure::k_out_of_n(1 + raw % children.len(), children))
            .boxed(),
    ]
    .boxed()
}

/// Per-component boolean failure indicators.
fn indicators() -> BoxedStrategy<Vec<bool>> {
    vec((0u8..2).prop_map(|b| b == 1), COMPONENTS).boxed()
}

/// Per-component failure sets over the [`DEMANDS`]-demand universe.
fn failure_sets() -> BoxedStrategy<Vec<BitSet>> {
    vec(vec(0usize..DEMANDS, 0..DEMANDS), COMPONENTS)
        .prop_map(|sets| {
            sets.into_iter()
                .map(|bits| BitSet::from_iter_with_capacity(DEMANDS, bits))
                .collect()
        })
        .boxed()
}

/// The de-Morgan dual of a tree: AND↔OR, `k`-of-`n` ↔ `(n−k+1)`-of-`n`.
fn dual(structure: &Structure) -> Structure {
    let duals = |children: &[Structure]| children.iter().map(dual).collect();
    match structure {
        Structure::Component(i) => Structure::component(*i),
        Structure::And(children) => Structure::or(duals(children)),
        Structure::Or(children) => Structure::and(duals(children)),
        Structure::KOutOfN { k, children } => {
            Structure::k_out_of_n(children.len() - k + 1, duals(children))
        }
    }
}

fn complement(set: &BitSet) -> BitSet {
    let mut c = BitSet::full(set.capacity());
    c.difference_with(set);
    c
}

proptest! {
    /// Structure functions are monotone: breaking more components can
    /// never repair the system.
    #[test]
    fn failure_is_monotone_in_component_failures(
        s in tree(3),
        base in indicators(),
        extra in indicators(),
    ) {
        let worse: Vec<bool> = base.iter().zip(&extra).map(|(b, e)| *b || *e).collect();
        prop_assert!(
            !s.eval_bool(&base) || s.eval_bool(&worse),
            "a superset of failed components must keep the system failed"
        );
    }

    /// De-Morgan duality: the dual tree on complemented indicators is
    /// the complement of the tree — pointwise and as failure sets.
    #[test]
    fn and_or_duality_under_complement(
        s in tree(3),
        failed in indicators(),
        sets in failure_sets(),
    ) {
        let d = dual(&s);
        let flipped: Vec<bool> = failed.iter().map(|f| !f).collect();
        prop_assert_eq!(d.eval_bool(&flipped), !s.eval_bool(&failed));

        let complements: Vec<BitSet> = sets.iter().map(complement).collect();
        prop_assert_eq!(
            d.failure_set(&complements).unwrap(),
            complement(&s.failure_set(&sets).unwrap())
        );
    }

    /// `k = 1` and `k = n` collapse a k-of-n gate onto the flat
    /// AND (1-out-of-n) and OR (series) paths — bit-for-bit, both in
    /// set algebra and in the gate-wise probability recursion.
    #[test]
    fn k_of_n_extremes_match_the_flat_paths(
        n in 1usize..=COMPONENTS,
        sets in failure_sets(),
        probs in vec(0.0f64..=1.0, COMPONENTS),
    ) {
        let and_gate = Structure::k_of_n(1, n);
        let or_gate = Structure::k_of_n(n, n);
        let flat_and = Structure::one_out_of_n(n);
        let flat_or = Structure::series(n);

        prop_assert_eq!(
            and_gate.failure_set(&sets).unwrap(),
            flat_and.failure_set(&sets).unwrap()
        );
        prop_assert_eq!(
            or_gate.failure_set(&sets).unwrap(),
            flat_or.failure_set(&sets).unwrap()
        );
        prop_assert_eq!(
            and_gate.failure_probability(&probs).unwrap().to_bits(),
            flat_and.failure_probability(&probs).unwrap().to_bits(),
            "k=1 must replay the AND product bit-for-bit"
        );
        prop_assert_eq!(
            or_gate.failure_probability(&probs).unwrap().to_bits(),
            flat_or.failure_probability(&probs).unwrap().to_bits(),
            "k=n must replay the OR inclusion-exclusion bit-for-bit"
        );
    }

    /// Eq-20 generalised: a shared suite couples the children of every
    /// gate upwards — the mixed all-children-fail moment dominates its
    /// independent factorisation at every gate of every repeat-free
    /// tree, whatever the world's propensities.
    #[test]
    fn shared_coupling_dominates_at_every_gate(
        shape in 0usize..3,
        props in vec(0.01f64..=0.9, 3),
    ) {
        let s = match shape {
            0 => Structure::one_out_of_n(3),
            1 => Structure::k_of_n(2, 3),
            _ => Structure::or(vec![
                Structure::component(0),
                Structure::and(vec![Structure::component(1), Structure::component(2)]),
            ]),
        };
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        let pop = BernoulliPopulation::new(model, props).unwrap();
        let q = UsageProfile::uniform(pop.model().space());
        let measure = enumerate_iid_suites(&q, 2, 1 << 10).unwrap();
        let pops: Vec<&dyn TestedDifficulty> = (0..3).map(|_| &pop as _).collect();
        for gate in gate_moments(&s, &pops, &measure, &q).unwrap() {
            prop_assert!(
                gate.coupling() >= -1e-12,
                "negative coupling {} at {} ({})",
                gate.coupling(),
                gate.path,
                gate.kind
            );
        }
    }
}
