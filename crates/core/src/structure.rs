//! First-class **structure functions**: k-out-of-n and AND/OR fault trees
//! over component failure indicators.
//!
//! The paper states every result for a flat 1-out-of-2 pair (and the §5
//! 1-out-of-N in [`crate::nversion`]). This module generalises the system
//! model to an arbitrary boolean composition of component failures — a
//! [`Structure`] tree of [`Structure::And`], [`Structure::Or`] and
//! [`Structure::KOutOfN`] gates over [`Structure::Component`] leaves — and
//! evaluates it three ways that agree bit-for-bit:
//!
//! 1. **Concrete version tuples** ([`Structure::failure_set`]): failure-set
//!    algebra on the packed-bitset kernel — intersection per AND gate,
//!    union per OR gate, a ≥t bitset dynamic programme per k-of-n gate.
//!    [`crate::system`] is the version-facing wrapper.
//! 2. **Population expectations per demand**
//!    ([`fail_on_demand_independent`], [`fail_on_demand_shared`],
//!    [`structure_pfd`]): the per-gate mixed moments `E_Ξ[f(ξ_1..ξ_n)]`
//!    generalising eqs 15–21 — independent suites factorise per component,
//!    a shared suite re-introduces the eq-20 coupling at every gate
//!    ([`gate_moments`]). [`crate::nversion`] is the flat 1-out-of-N
//!    wrapper.
//! 3. **Brute-force enumeration** (`exact::brute::StructureEnsemble`,
//!    downstream): assumption-free cross-products over version supports.
//!
//! # Failure-indicator convention
//!
//! Gates operate on component **failure** indicators (a fault-tree view):
//!
//! * [`Structure::And`] — the subsystem fails iff *all* children fail.
//!   Parallel redundancy; `And` over N components is exactly the paper's
//!   1-out-of-N adjudicated system.
//! * [`Structure::Or`] — the subsystem fails iff *any* child fails.
//!   A series system (no redundancy).
//! * [`Structure::KOutOfN`] — the subsystem *works* iff at least `k` of
//!   its `n` children work, i.e. fails iff at least `n − k + 1` children
//!   fail. `k = 1` coincides with `And`, `k = n` with `Or`.
//!
//! # Repeated components
//!
//! A component index may appear in several leaves (the [`Structure::bridge`]
//! min-cut tree needs this). Failure-set algebra and boolean evaluation are
//! exact regardless. Probability evaluation distinguishes the two cases:
//! repeat-free trees use the fast gate-wise recursion (whose `And` product
//! is bit-for-bit the flat `Π ζ_i` path), while trees with repeats
//! enumerate the `2^d` joint states of the `d` distinct components — exact
//! in both testing regimes, because conditioned on the suite(s) the
//! distinct components' failure indicators are independent Bernoullis and
//! repeated leaves share one indicator.

use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::bitset::BitSet;
use diversim_universe::demand::DemandId;
use diversim_universe::profile::UsageProfile;

use crate::difficulty::TestedDifficulty;
use crate::error::CoreError;
use crate::testing_effect::TestingRegime;

/// Largest number of *distinct* components for which the repeated-component
/// probability path will enumerate joint states (`2^d` terms).
pub const MAX_ENUMERATED_COMPONENTS: usize = 24;

/// A system structure function over component failure indicators.
///
/// See the [module docs](self) for the failure-indicator convention and
/// the three evaluation paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Structure {
    /// A leaf: the component with this index fails.
    Component(usize),
    /// Fails iff **all** children fail (parallel redundancy / 1-out-of-N).
    And(Vec<Structure>),
    /// Fails iff **any** child fails (series).
    Or(Vec<Structure>),
    /// Works iff at least `k` of the children work — fails iff at least
    /// `n − k + 1` children fail.
    KOutOfN {
        /// Number of children that must *work* for the subsystem to work.
        k: usize,
        /// The child subsystems.
        children: Vec<Structure>,
    },
}

impl Structure {
    /// A component leaf.
    pub fn component(index: usize) -> Self {
        Structure::Component(index)
    }

    /// An AND gate (all children must fail).
    pub fn and(children: Vec<Structure>) -> Self {
        Structure::And(children)
    }

    /// An OR gate (any child failing fails the subsystem).
    pub fn or(children: Vec<Structure>) -> Self {
        Structure::Or(children)
    }

    /// A k-out-of-n gate over the given children.
    pub fn k_out_of_n(k: usize, children: Vec<Structure>) -> Self {
        Structure::KOutOfN { k, children }
    }

    /// The paper's 1-out-of-N adjudicated system over components `0..n`:
    /// an AND gate (the system fails only when every version fails).
    pub fn one_out_of_n(n: usize) -> Self {
        Structure::And((0..n).map(Structure::Component).collect())
    }

    /// A series system over components `0..n`: an OR gate (any component
    /// failure is a system failure).
    pub fn series(n: usize) -> Self {
        Structure::Or((0..n).map(Structure::Component).collect())
    }

    /// A flat k-out-of-n system over components `0..n`.
    pub fn k_of_n(k: usize, n: usize) -> Self {
        Structure::KOutOfN {
            k,
            children: (0..n).map(Structure::Component).collect(),
        }
    }

    /// The classic five-component bridge network, written as the min-cut
    /// fault tree: the bridge fails iff
    /// `(F₀∧F₁) ∨ (F₃∧F₄) ∨ (F₀∧F₂∧F₄) ∨ (F₁∧F₂∧F₃)`.
    ///
    /// Components 0/1 are the upper/lower input links, 3/4 the upper/lower
    /// output links and 2 the cross-link. Every component appears in two
    /// cuts, so this is the canonical *repeated-component* fixture.
    pub fn bridge() -> Self {
        let c = Structure::component;
        Structure::Or(vec![
            Structure::And(vec![c(0), c(1)]),
            Structure::And(vec![c(3), c(4)]),
            Structure::And(vec![c(0), c(2), c(4)]),
            Structure::And(vec![c(1), c(2), c(3)]),
        ])
    }

    /// One more than the largest component index referenced by the tree —
    /// the minimum number of components an evaluation slice must supply.
    pub fn component_count(&self) -> usize {
        match self {
            Structure::Component(i) => i + 1,
            Structure::And(cs) | Structure::Or(cs) | Structure::KOutOfN { children: cs, .. } => {
                cs.iter().map(Structure::component_count).max().unwrap_or(0)
            }
        }
    }

    /// The sorted, distinct component indices referenced by the tree.
    pub fn components(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_components(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_components(&self, out: &mut Vec<usize>) {
        match self {
            Structure::Component(i) => out.push(*i),
            Structure::And(cs) | Structure::Or(cs) | Structure::KOutOfN { children: cs, .. } => {
                for c in cs {
                    c.collect_components(out);
                }
            }
        }
    }

    /// Whether any component index appears in more than one leaf.
    pub fn has_repeated_components(&self) -> bool {
        let mut leaves = Vec::new();
        self.collect_components(&mut leaves);
        let total = leaves.len();
        leaves.sort_unstable();
        leaves.dedup();
        leaves.len() != total
    }

    /// Validate the tree against a component count: every gate must have at
    /// least one child, every `k` must satisfy `1 ≤ k ≤ n`, and every leaf
    /// index must be `< n_components`.
    pub fn validate(&self, n_components: usize) -> Result<(), CoreError> {
        if n_components == 0 {
            return Err(CoreError::EmptyInput {
                what: "structure components",
            });
        }
        self.validate_node(n_components)
    }

    fn validate_node(&self, n_components: usize) -> Result<(), CoreError> {
        match self {
            Structure::Component(i) => {
                if *i >= n_components {
                    return Err(CoreError::InvalidStructure {
                        reason: "component index out of range",
                    });
                }
            }
            Structure::And(cs) | Structure::Or(cs) => {
                if cs.is_empty() {
                    return Err(CoreError::InvalidStructure {
                        reason: "gate with no children",
                    });
                }
                for c in cs {
                    c.validate_node(n_components)?;
                }
            }
            Structure::KOutOfN { k, children } => {
                if children.is_empty() {
                    return Err(CoreError::InvalidStructure {
                        reason: "gate with no children",
                    });
                }
                if *k == 0 || *k > children.len() {
                    return Err(CoreError::InvalidStructure {
                        reason: "k out of range for k-out-of-n gate",
                    });
                }
                for c in children {
                    c.validate_node(n_components)?;
                }
            }
        }
        Ok(())
    }

    /// Evaluate the structure over boolean failure indicators: `true`
    /// means the component failed; the result is whether the system fails.
    pub fn eval_bool(&self, failed: &[bool]) -> bool {
        match self {
            Structure::Component(i) => failed[*i],
            Structure::And(cs) => cs.iter().all(|c| c.eval_bool(failed)),
            Structure::Or(cs) => cs.iter().any(|c| c.eval_bool(failed)),
            Structure::KOutOfN { k, children } => {
                let t = children.len() - k + 1;
                children.iter().filter(|c| c.eval_bool(failed)).count() >= t
            }
        }
    }

    /// Failure-set algebra over per-component failure sets: the demands on
    /// which the *system* fails, given the demands on which each component
    /// fails. AND intersects, OR unions, k-of-n runs a ≥t bitset dynamic
    /// programme. Exact under repeated components.
    ///
    /// All sets must share `component_sets[0]`'s capacity.
    pub fn failure_set(&self, component_sets: &[BitSet]) -> Result<BitSet, CoreError> {
        if component_sets.is_empty() {
            return Err(CoreError::EmptyInput {
                what: "component failure sets",
            });
        }
        self.validate(component_sets.len())?;
        let capacity = component_sets[0].capacity();
        if component_sets.iter().any(|s| s.capacity() != capacity) {
            return Err(CoreError::ModelMismatch {
                reason: "component failure sets must share a demand space",
            });
        }
        Ok(self.failure_set_node(component_sets, capacity))
    }

    fn failure_set_node(&self, sets: &[BitSet], capacity: usize) -> BitSet {
        match self {
            Structure::Component(i) => sets[*i].clone(),
            Structure::And(cs) => {
                let mut acc = cs[0].failure_set_node(sets, capacity);
                for c in &cs[1..] {
                    acc.intersect_with(&c.failure_set_node(sets, capacity));
                }
                acc
            }
            Structure::Or(cs) => {
                let mut acc = cs[0].failure_set_node(sets, capacity);
                for c in &cs[1..] {
                    acc.union_with(&c.failure_set_node(sets, capacity));
                }
                acc
            }
            Structure::KOutOfN { k, children } => {
                // ge[j] = demands on which at least j of the children
                // processed so far fail; the gate fails where ge[t] is set.
                let t = children.len() - k + 1;
                let mut ge: Vec<BitSet> = Vec::with_capacity(t + 1);
                ge.push(BitSet::full(capacity));
                for _ in 0..t {
                    ge.push(BitSet::new(capacity));
                }
                for c in children {
                    let child = c.failure_set_node(sets, capacity);
                    for j in (1..=t).rev() {
                        let mut step = ge[j - 1].clone();
                        step.intersect_with(&child);
                        ge[j].union_with(&step);
                    }
                }
                ge.pop().expect("ge has t+1 entries")
            }
        }
    }

    /// Probability that the system fails, given each component's
    /// (conditionally independent) failure probability.
    ///
    /// Repeat-free trees use the gate-wise recursion: AND multiplies in
    /// child order (bit-for-bit the flat `Π ζ_i` product), OR is
    /// `1 − Π(1−p)` (so AND↔OR duality under complement holds by
    /// construction), k-of-n runs the Poisson-binomial tail. Trees with
    /// repeated components enumerate the `2^d` joint component states,
    /// which is exact because repeated leaves share one indicator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidStructure`] if the tree is malformed or a
    /// repeated-component tree spans more than
    /// [`MAX_ENUMERATED_COMPONENTS`] distinct components;
    /// [`CoreError::EmptyInput`] if `probs` is empty.
    pub fn failure_probability(&self, probs: &[f64]) -> Result<f64, CoreError> {
        if probs.is_empty() {
            return Err(CoreError::EmptyInput {
                what: "component failure probabilities",
            });
        }
        self.validate(probs.len())?;
        if !self.has_repeated_components() {
            return Ok(self.gatewise_probability(probs));
        }
        let comps = self.components();
        if comps.len() > MAX_ENUMERATED_COMPONENTS {
            return Err(CoreError::InvalidStructure {
                reason: "too many distinct components for repeated-component enumeration",
            });
        }
        let mut failed = vec![false; probs.len()];
        let mut total = 0.0;
        for mask in 0u32..(1u32 << comps.len()) {
            let mut weight = 1.0;
            for (bit, &c) in comps.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    weight *= probs[c];
                    failed[c] = true;
                } else {
                    weight *= 1.0 - probs[c];
                    failed[c] = false;
                }
            }
            if self.eval_bool(&failed) {
                total += weight;
            }
        }
        Ok(total)
    }

    /// Gate-wise probability recursion; callers must have validated the
    /// tree and checked it is repeat-free.
    pub(crate) fn gatewise_probability(&self, probs: &[f64]) -> f64 {
        match self {
            Structure::Component(i) => probs[*i],
            Structure::And(cs) => cs.iter().map(|c| c.gatewise_probability(probs)).product(),
            Structure::Or(cs) => {
                1.0 - cs
                    .iter()
                    .map(|c| 1.0 - c.gatewise_probability(probs))
                    .product::<f64>()
            }
            Structure::KOutOfN { k, children } => {
                // Poisson-binomial over child failure counts: dp[m] is the
                // probability that exactly m of the processed children
                // fail. Descending update keeps dp[n] the bare left-fold
                // product q₁·q₂·… and dp[0] the left-fold (1−q₁)(1−q₂)·…,
                // so both extremes collapse onto the flat paths
                // bit-for-bit: k = 1 replays And, k = n replays Or.
                let t = children.len() - k + 1;
                let mut dp = vec![0.0f64; children.len() + 1];
                dp[0] = 1.0;
                for (j, c) in children.iter().enumerate() {
                    let q = c.gatewise_probability(probs);
                    for m in (0..=j).rev() {
                        dp[m + 1] += dp[m] * q;
                        dp[m] *= 1.0 - q;
                    }
                }
                if t == 1 {
                    1.0 - dp[0]
                } else {
                    dp[t..].iter().sum()
                }
            }
        }
    }
}

/// Joint probability that the system fails on demand `x` when every
/// component is debugged on its **own** independently drawn suite from
/// `measure`: per-component ζ values composed through the structure
/// (conditional independence per demand survives per the §3.1 argument).
///
/// For `Structure::one_out_of_n` this is bit-for-bit
/// [`crate::nversion::all_fail_on_demand_independent`].
pub fn fail_on_demand_independent(
    structure: &Structure,
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    x: DemandId,
) -> Result<f64, CoreError> {
    check_pops(structure, pops)?;
    let probs: Vec<f64> = pops
        .iter()
        .map(|p| crate::difficulty::zeta(*p, x, measure))
        .collect();
    structure.failure_probability(&probs)
}

/// Joint probability that the system fails on demand `x` when **all**
/// components are debugged on one shared suite: the structure-composed
/// mixed moment `E_Ξ[f(ξ_1(x,T), …, ξ_n(x,T))]`, which re-introduces the
/// eq-20 coupling at every gate.
///
/// For `Structure::one_out_of_n` this is bit-for-bit
/// [`crate::nversion::all_fail_on_demand_shared`].
pub fn fail_on_demand_shared(
    structure: &Structure,
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    x: DemandId,
) -> Result<f64, CoreError> {
    check_pops(structure, pops)?;
    let mut err = None;
    let value = measure.expect(|t| {
        let covered = t.demand_set();
        let probs: Vec<f64> = pops.iter().map(|p| p.xi(x, covered)).collect();
        match structure.failure_probability(&probs) {
            Ok(v) => v,
            Err(e) => {
                err = Some(e);
                0.0
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(value),
    }
}

/// Marginal probability that the structured system fails on a random
/// demand under the given testing regime:
/// `Σ_x Q(x)·P(system fails on x | regime)`.
///
/// Demands are accumulated in ascending order, so for
/// `Structure::one_out_of_n` this is bit-for-bit
/// [`crate::nversion::system_pfd_n`].
pub fn structure_pfd(
    structure: &Structure,
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    profile: &UsageProfile,
    regime: TestingRegime,
) -> Result<f64, CoreError> {
    check_pops(structure, pops)?;
    for p in pops {
        if p.model().space() != profile.space() {
            return Err(CoreError::ModelMismatch {
                reason: "population and profile must share a demand space",
            });
        }
    }
    let mut err = None;
    let value = profile.expect(|x| {
        let r = match regime {
            TestingRegime::IndependentSuites => {
                fail_on_demand_independent(structure, pops, measure, x)
            }
            TestingRegime::SharedSuite => fail_on_demand_shared(structure, pops, measure, x),
        };
        match r {
            Ok(v) => v,
            Err(e) => {
                err = Some(e);
                0.0
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(value),
    }
}

fn check_pops(structure: &Structure, pops: &[&dyn TestedDifficulty]) -> Result<(), CoreError> {
    if pops.is_empty() {
        return Err(CoreError::EmptyInput {
            what: "populations",
        });
    }
    structure.validate(pops.len())
}

/// The shared-suite mixed moment of one gate, against its independent
/// factorisation — where in the tree does testing-induced coupling live?
///
/// For a gate with children `c_1..c_m`,
///
/// * `mixed` = `Σ_x Q(x)·E_Ξ[Π_j P(c_j fails on x | T)]` — all children
///   fail, under one shared suite;
/// * `independent` = `Σ_x Q(x)·Π_j E_Ξ[P(c_j fails on x | T)]` — the same
///   product with the suite expectation pushed inside (independent
///   suites).
///
/// [`GateMoment::coupling`] = `mixed − independent` ≥ 0 at every gate (the
/// children's failure probabilities all co-move in `T`, generalising
/// eq 20). Note this is the *all-children-fail* moment inequality — the
/// shared-vs-independent difference of a gate's own failure probability
/// has gate-dependent sign (a shared suite *helps* at an OR gate).
#[derive(Debug, Clone, PartialEq)]
pub struct GateMoment {
    /// Preorder path of the gate, e.g. `"root"` or `"root.1"`.
    pub path: String,
    /// Gate kind: `"and"`, `"or"` or `"k-of-n"`.
    pub kind: &'static str,
    /// Independent-suite factorisation `Σ_x Q(x)·Π_j E_Ξ[…]`.
    pub independent: f64,
    /// Shared-suite mixed moment `Σ_x Q(x)·E_Ξ[Π_j …]`.
    pub mixed: f64,
}

impl GateMoment {
    /// Testing-induced coupling at this gate: `mixed − independent` (≥ 0).
    pub fn coupling(&self) -> f64 {
        self.mixed - self.independent
    }
}

/// Per-gate mixed moments for every gate of a **repeat-free** tree, in
/// preorder. See [`GateMoment`] for the definitions.
///
/// # Errors
///
/// [`CoreError::InvalidStructure`] for trees with repeated components (the
/// per-gate factorisation needs children with disjoint component sets);
/// the usual validation errors otherwise.
pub fn gate_moments(
    structure: &Structure,
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    profile: &UsageProfile,
) -> Result<Vec<GateMoment>, CoreError> {
    check_pops(structure, pops)?;
    if structure.has_repeated_components() {
        return Err(CoreError::InvalidStructure {
            reason: "gate moments require each component to appear in one leaf",
        });
    }
    for p in pops {
        if p.model().space() != profile.space() {
            return Err(CoreError::ModelMismatch {
                reason: "population and profile must share a demand space",
            });
        }
    }
    let mut out = Vec::new();
    collect_gate_moments(structure, "root", pops, measure, profile, &mut out);
    Ok(out)
}

fn collect_gate_moments(
    node: &Structure,
    path: &str,
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    profile: &UsageProfile,
    out: &mut Vec<GateMoment>,
) {
    let (kind, children) = match node {
        Structure::Component(_) => return,
        Structure::And(cs) => ("and", cs),
        Structure::Or(cs) => ("or", cs),
        Structure::KOutOfN { children, .. } => ("k-of-n", children),
    };
    let mixed = profile.expect(|x| {
        measure.expect(|t| {
            let covered = t.demand_set();
            children
                .iter()
                .map(|c| subtree_probability(c, pops, x, covered))
                .product()
        })
    });
    let independent = profile.expect(|x| {
        children
            .iter()
            .map(|c| measure.expect(|t| subtree_probability(c, pops, x, t.demand_set())))
            .product()
    });
    out.push(GateMoment {
        path: path.to_string(),
        kind,
        independent,
        mixed,
    });
    for (j, c) in children.iter().enumerate() {
        let child_path = format!("{path}.{j}");
        collect_gate_moments(c, &child_path, pops, measure, profile, out);
    }
}

/// Probability that a repeat-free subtree fails on `x` given the suite's
/// covered demand set (components are conditionally independent given the
/// suite).
fn subtree_probability(
    node: &Structure,
    pops: &[&dyn TestedDifficulty],
    x: DemandId,
    covered: &BitSet,
) -> f64 {
    match node {
        Structure::Component(i) => pops[*i].xi(x, covered),
        Structure::And(cs) => cs
            .iter()
            .map(|c| subtree_probability(c, pops, x, covered))
            .product(),
        Structure::Or(cs) => {
            1.0 - cs
                .iter()
                .map(|c| 1.0 - subtree_probability(c, pops, x, covered))
                .product::<f64>()
        }
        Structure::KOutOfN { k, children } => {
            let t = children.len() - k + 1;
            let mut dp = vec![0.0f64; children.len() + 1];
            dp[0] = 1.0;
            for (j, c) in children.iter().enumerate() {
                let q = subtree_probability(c, pops, x, covered);
                for m in (0..=j).rev() {
                    dp[m + 1] += dp[m] * q;
                    dp[m] *= 1.0 - q;
                }
            }
            dp[t..].iter().sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    fn set(capacity: usize, bits: &[usize]) -> BitSet {
        let mut s = BitSet::new(capacity);
        for &b in bits {
            s.insert(b);
        }
        s
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let err = |s: Structure, n: usize| s.validate(n).unwrap_err();
        assert!(matches!(
            err(Structure::and(vec![]), 2),
            CoreError::InvalidStructure { .. }
        ));
        assert!(matches!(
            err(Structure::k_of_n(0, 3), 3),
            CoreError::InvalidStructure { .. }
        ));
        assert!(matches!(
            err(Structure::k_of_n(4, 3), 3),
            CoreError::InvalidStructure { .. }
        ));
        assert!(matches!(
            err(Structure::component(5), 3),
            CoreError::InvalidStructure { .. }
        ));
        assert!(matches!(
            err(Structure::component(0), 0),
            CoreError::EmptyInput { .. }
        ));
        assert!(Structure::bridge().validate(5).is_ok());
    }

    #[test]
    fn eval_bool_matches_gate_semantics() {
        let two_of_three = Structure::k_of_n(2, 3);
        // 2-of-3 works iff ≥2 work, i.e. fails iff ≥2 fail.
        assert!(!two_of_three.eval_bool(&[true, false, false]));
        assert!(two_of_three.eval_bool(&[true, true, false]));
        assert!(two_of_three.eval_bool(&[true, true, true]));
        let series = Structure::series(3);
        assert!(series.eval_bool(&[false, true, false]));
        assert!(!series.eval_bool(&[false, false, false]));
        let par = Structure::one_out_of_n(3);
        assert!(!par.eval_bool(&[true, true, false]));
        assert!(par.eval_bool(&[true, true, true]));
    }

    #[test]
    fn bridge_eval_matches_path_semantics() {
        // The bridge works iff a working input→output path exists.
        let b = Structure::bridge();
        for mask in 0u32..32 {
            let failed: Vec<bool> = (0..5).map(|i| mask & (1 << i) != 0).collect();
            let works = |i: usize| !failed[i];
            // Paths: 0→3, 1→4, 0→2→4, 1→2→3.
            let path = (works(0) && works(3))
                || (works(1) && works(4))
                || (works(0) && works(2) && works(4))
                || (works(1) && works(2) && works(3));
            assert_eq!(b.eval_bool(&failed), !path, "mask {mask:#07b}");
        }
    }

    #[test]
    fn failure_set_algebra_matches_eval_bool() {
        // One demand per joint component state: exhaustively compare the
        // bitset algebra against boolean evaluation.
        for structure in [
            Structure::one_out_of_n(3),
            Structure::series(3),
            Structure::k_of_n(2, 3),
            Structure::bridge(),
        ] {
            let n = structure.component_count();
            let capacity = 1usize << n;
            let sets: Vec<BitSet> = (0..n)
                .map(|i| {
                    let bits: Vec<usize> = (0..capacity).filter(|x| x & (1 << i) != 0).collect();
                    set(capacity, &bits)
                })
                .collect();
            let got = structure.failure_set(&sets).unwrap();
            for x in 0..capacity {
                let failed: Vec<bool> = (0..n).map(|i| x & (1 << i) != 0).collect();
                assert_eq!(
                    got.contains(x),
                    structure.eval_bool(&failed),
                    "{structure:?} at state {x:#b}"
                );
            }
        }
    }

    #[test]
    fn failure_probability_matches_enumeration() {
        // Gate-wise recursion (repeat-free) and 2^d enumeration (bridge)
        // against a direct weighted enumeration over joint states.
        let probs = [0.1, 0.37, 0.62, 0.05, 0.9];
        for structure in [
            Structure::one_out_of_n(4),
            Structure::series(4),
            Structure::k_of_n(2, 3),
            Structure::k_of_n(3, 5),
            Structure::bridge(),
        ] {
            let n = structure.component_count();
            let p = &probs[..n];
            let mut want = 0.0;
            for mask in 0u32..(1 << n) {
                let failed: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                if structure.eval_bool(&failed) {
                    let w: f64 = (0..n)
                        .map(|i| if failed[i] { p[i] } else { 1.0 - p[i] })
                        .product();
                    want += w;
                }
            }
            let got = structure.failure_probability(p).unwrap();
            assert!(
                (got - want).abs() < 1e-12,
                "{structure:?}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn k_equals_one_is_and_bit_for_bit() {
        let probs = [0.123456789, 0.87654321, 0.42];
        let and = Structure::one_out_of_n(3);
        let k1 = Structure::k_of_n(1, 3);
        let flat: f64 = probs.iter().product();
        assert_eq!(
            and.failure_probability(&probs).unwrap().to_bits(),
            flat.to_bits()
        );
        assert_eq!(
            k1.failure_probability(&probs).unwrap().to_bits(),
            flat.to_bits()
        );
    }

    #[test]
    fn k_equals_n_matches_or() {
        let probs = [0.2, 0.5, 0.7];
        let or = Structure::series(3);
        let kn = Structure::k_of_n(3, 3);
        let a = or.failure_probability(&probs).unwrap();
        let b = kn.failure_probability(&probs).unwrap();
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn structure_pfd_regimes_and_errors() {
        let pop = singleton_pop(vec![0.3, 0.6, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let pops: Vec<&dyn TestedDifficulty> = vec![&pop, &pop, &pop];
        let s = Structure::k_of_n(2, 3);
        let ind = structure_pfd(&s, &pops, &m, &q, TestingRegime::IndependentSuites).unwrap();
        let sh = structure_pfd(&s, &pops, &m, &q, TestingRegime::SharedSuite).unwrap();
        assert!(ind > 0.0 && ind < 1.0);
        assert!(sh > 0.0 && sh < 1.0);
        // Empty populations are a typed error, not a panic.
        assert!(matches!(
            structure_pfd(&s, &[], &m, &q, TestingRegime::SharedSuite),
            Err(CoreError::EmptyInput { .. })
        ));
        // Structure referencing a missing component is typed too.
        let wide = Structure::one_out_of_n(4);
        assert!(matches!(
            structure_pfd(&wide, &pops, &m, &q, TestingRegime::SharedSuite),
            Err(CoreError::InvalidStructure { .. })
        ));
    }

    #[test]
    fn gate_moments_coupling_nonnegative_everywhere() {
        let pop = singleton_pop(vec![0.2, 0.5, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let pops: Vec<&dyn TestedDifficulty> = vec![&pop, &pop, &pop];
        let nested = Structure::or(vec![
            Structure::and(vec![Structure::component(0), Structure::component(1)]),
            Structure::component(2),
        ]);
        for s in [
            Structure::one_out_of_n(3),
            Structure::series(3),
            Structure::k_of_n(2, 3),
            nested,
        ] {
            let moments = gate_moments(&s, &pops, &m, &q).unwrap();
            assert!(!moments.is_empty());
            for g in &moments {
                assert!(
                    g.coupling() >= -1e-15,
                    "gate {} ({}) coupling {} < 0",
                    g.path,
                    g.kind,
                    g.coupling()
                );
            }
        }
        // Repeated components are rejected with a typed error.
        let pops5: Vec<&dyn TestedDifficulty> = vec![&pop; 5];
        assert!(matches!(
            gate_moments(&Structure::bridge(), &pops5, &m, &q),
            Err(CoreError::InvalidStructure { .. })
        ));
    }

    #[test]
    fn bridge_shared_vs_independent_total() {
        // The bridge exercises the repeated-component enumeration path in
        // both regimes; sanity-check the values are proper probabilities.
        let pop = singleton_pop(vec![0.3, 0.5, 0.2, 0.7, 0.4]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let pops: Vec<&dyn TestedDifficulty> = vec![&pop; 5];
        let b = Structure::bridge();
        let ind = structure_pfd(&b, &pops, &m, &q, TestingRegime::IndependentSuites).unwrap();
        let sh = structure_pfd(&b, &pops, &m, &q, TestingRegime::SharedSuite).unwrap();
        assert!(ind > 0.0 && ind < 1.0, "independent {ind}");
        assert!(sh > 0.0 && sh < 1.0, "shared {sh}");
    }
}
