//! The Littlewood–Miller forced-diversity model (equations (8)–(10)).
//!
//! With two *different* methodologies `A` and `B` (two measures over the
//! program population), the joint probability of failure on a random
//! demand is
//!
//! ```text
//! P(both fail on X) = E[Θ_A Θ_B] = E[Θ_A]E[Θ_B] + Cov(Θ_A, Θ_B)   (eq 9)
//! ```
//!
//! and "since it is possible that Cov(Θ_A, Θ_B) < 0, it follows that using
//! different design methodologies it is possible in this model to do even
//! better than the (unattainable) goal of independent performance of
//! versions in the single methodology case" — the paper's main recalled
//! result from \[2\].

use diversim_stats::weighted;
use diversim_universe::demand::DemandId;
use diversim_universe::population::Population;
use diversim_universe::profile::UsageProfile;

/// The quantities of the Littlewood–Miller analysis for a methodology
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmAnalysis {
    /// `E[Θ_A]`: pfd of a random version from methodology A.
    pub mean_theta_a: f64,
    /// `E[Θ_B]`: pfd of a random version from methodology B.
    pub mean_theta_b: f64,
    /// `Cov(Θ_A, Θ_B)` over the random demand `X`.
    pub covariance: f64,
    /// `E[Θ_A Θ_B]`: joint pfd of the pair on a random demand (eq 9).
    pub joint_pfd: f64,
    /// `E[Θ_A]·E[Θ_B]`: the joint pfd if the versions failed
    /// independently.
    pub independent_pfd: f64,
}

impl LmAnalysis {
    /// Computes the analysis from two populations over the same demand
    /// space and one usage profile.
    ///
    /// # Panics
    ///
    /// Panics if the populations are defined over different demand spaces.
    pub fn compute(pop_a: &dyn Population, pop_b: &dyn Population, profile: &UsageProfile) -> Self {
        assert_eq!(
            pop_a.model().space(),
            pop_b.model().space(),
            "populations must share a demand space"
        );
        let triples: Vec<((f64, f64), f64)> = profile
            .iter()
            .map(|(x, q)| ((pop_a.theta(x), pop_b.theta(x)), q))
            .collect();
        let cov =
            weighted::covariance(triples.iter().copied()).expect("profile is a valid measure");
        let mean_a = weighted::mean(triples.iter().map(|&((a, _), q)| (a, q)))
            .expect("profile is a valid measure");
        let mean_b = weighted::mean(triples.iter().map(|&((_, b), q)| (b, q)))
            .expect("profile is a valid measure");
        LmAnalysis {
            mean_theta_a: mean_a,
            mean_theta_b: mean_b,
            covariance: cov,
            joint_pfd: mean_a * mean_b + cov,
            independent_pfd: mean_a * mean_b,
        }
    }

    /// The conditional probability (eq 10): `P(Π_A fails | Π_B failed) =
    /// Cov(Θ_A,Θ_B)/E[Θ_B] + E[Θ_A]`. Returns `None` when `E[Θ_B] = 0`.
    pub fn conditional_a_given_b(&self) -> Option<f64> {
        if self.mean_theta_b == 0.0 {
            None
        } else {
            Some(self.covariance / self.mean_theta_b + self.mean_theta_a)
        }
    }

    /// `true` if forced diversity beats independence here — i.e. the
    /// covariance is negative (the paper's headline possibility).
    pub fn beats_independence(&self) -> bool {
        self.covariance < 0.0
    }
}

/// Per-demand joint probability for a forced-diversity pair on a *fixed*
/// demand (the conditional-independence identity behind eq 8):
/// `θ_A(x)·θ_B(x)`.
pub fn joint_on_demand(pop_a: &dyn Population, pop_b: &dyn Population, x: DemandId) -> f64 {
    pop_a.theta(x) * pop_b.theta(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::generator::mirrored_pair;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn singleton_model(n: usize) -> Arc<diversim_universe::fault::FaultModel> {
        let space = DemandSpace::new(n).unwrap();
        Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn hand_computed_negative_covariance() {
        // θ_A = (0.4, 0.1), θ_B = (0.1, 0.4), uniform Q.
        // E[A] = E[B] = 0.25; E[AB] = (0.04 + 0.04)/2 = 0.04;
        // Cov = 0.04 − 0.0625 = −0.0225.
        let m = singleton_model(2);
        let a = BernoulliPopulation::new(m.clone(), vec![0.4, 0.1]).unwrap();
        let b = BernoulliPopulation::new(m.clone(), vec![0.1, 0.4]).unwrap();
        let q = UsageProfile::uniform(m.space());
        let lm = LmAnalysis::compute(&a, &b, &q);
        assert!((lm.mean_theta_a - 0.25).abs() < 1e-12);
        assert!((lm.mean_theta_b - 0.25).abs() < 1e-12);
        assert!((lm.covariance + 0.0225).abs() < 1e-12);
        assert!((lm.joint_pfd - 0.04).abs() < 1e-12);
        assert!(lm.beats_independence());
        // Conditional (eq 10): −0.0225/0.25 + 0.25 = 0.16.
        assert!((lm.conditional_a_given_b().unwrap() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn identical_methodologies_reduce_to_el() {
        // A = B: Cov(Θ_A, Θ_B) = Var(Θ) and eq 9 reduces to eq 6.
        let m = singleton_model(3);
        let pop = BernoulliPopulation::new(m.clone(), vec![0.1, 0.3, 0.5]).unwrap();
        let q = UsageProfile::uniform(m.space());
        let lm = LmAnalysis::compute(&pop, &pop, &q);
        let el = crate::el::ElAnalysis::compute(&pop, &q);
        assert!((lm.joint_pfd - el.joint_pfd).abs() < 1e-12);
        assert!((lm.covariance - el.var_theta).abs() < 1e-12);
        assert!(
            !lm.beats_independence(),
            "self-covariance is a variance ≥ 0"
        );
    }

    #[test]
    fn mirrored_pair_generator_produces_negative_covariance() {
        let m = singleton_model(10);
        let (a, b) = mirrored_pair(&m, 0.6, 0.05).unwrap();
        let q = UsageProfile::uniform(m.space());
        let lm = LmAnalysis::compute(&a, &b, &q);
        assert!(
            lm.covariance < 0.0,
            "mirrored propensities must anti-correlate"
        );
        assert!(lm.joint_pfd < lm.independent_pfd);
    }

    #[test]
    fn positive_covariance_when_methodologies_agree_on_difficulty() {
        // Both methodologies find the same demands hard.
        let m = singleton_model(2);
        let a = BernoulliPopulation::new(m.clone(), vec![0.5, 0.05]).unwrap();
        let b = BernoulliPopulation::new(m.clone(), vec![0.4, 0.04]).unwrap();
        let q = UsageProfile::uniform(m.space());
        let lm = LmAnalysis::compute(&a, &b, &q);
        assert!(lm.covariance > 0.0);
        assert!(lm.joint_pfd > lm.independent_pfd);
    }

    #[test]
    fn joint_on_demand_is_product_of_thetas() {
        let m = singleton_model(2);
        let a = BernoulliPopulation::new(m.clone(), vec![0.4, 0.1]).unwrap();
        let b = BernoulliPopulation::new(m.clone(), vec![0.1, 0.4]).unwrap();
        assert!((joint_on_demand(&a, &b, DemandId::new(0)) - 0.04).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a demand space")]
    fn mismatched_spaces_panic() {
        let a = BernoulliPopulation::new(singleton_model(2), vec![0.1, 0.2]).unwrap();
        let b = BernoulliPopulation::new(singleton_model(3), vec![0.1, 0.2, 0.3]).unwrap();
        let q = UsageProfile::uniform(a.model().space());
        let _ = LmAnalysis::compute(&a, &b, &q);
    }
}
