//! System-level reliability of *concrete* version tuples.
//!
//! > **Which path is this?** This module is the **concrete-version** path:
//! > it evaluates actual [`Version`]s (as produced by a simulated debugging
//! > campaign) through failure-set algebra on the packed bitset kernel.
//! > The **population-expectation** path — marginal pfds of version
//! > *distributions* under the testing regimes — lives in
//! > [`crate::nversion`] (flat 1-out-of-N) and [`crate::structure`]
//! > (arbitrary trees). The two paths agree in expectation and are checked
//! > against each other by `exact::brute` downstream.
//!
//! The flat entry points ([`system_failure_set`], [`system_pfd`]) are the
//! paper's 1-out-of-N adjudicated system — a system failure needs *every*
//! version to fail (perfect adjudication, as assumed throughout the
//! paper) — and are thin wrappers over [`Structure::one_out_of_n`].
//! Arbitrary fault trees go through [`structure_failure_set`] /
//! [`structure_system_pfd`].

use diversim_universe::bitset::BitSet;
use diversim_universe::demand::DemandId;
use diversim_universe::fault::FaultModel;
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

use crate::error::CoreError;
use crate::structure::Structure;

/// The demands on which a structured system of the given versions fails:
/// the structure's failure-set algebra (intersection per AND gate, union
/// per OR gate, ≥t dynamic programme per k-of-n gate) applied to each
/// version's failure set. `versions[i]` plays component `i`.
///
/// # Errors
///
/// [`CoreError::EmptyInput`] if `versions` is empty;
/// [`CoreError::InvalidStructure`] if the tree references a component
/// index `≥ versions.len()` or is malformed.
pub fn structure_failure_set(
    structure: &Structure,
    versions: &[&Version],
    model: &FaultModel,
) -> Result<BitSet, CoreError> {
    if versions.is_empty() {
        return Err(CoreError::EmptyInput { what: "versions" });
    }
    let sets: Vec<BitSet> = versions.iter().map(|v| v.failure_set(model)).collect();
    structure.failure_set(&sets)
}

/// Probability that a structured system of concrete versions fails on a
/// random demand: the usage-profile mass of
/// [`structure_failure_set`], accumulated in ascending demand order.
pub fn structure_system_pfd(
    structure: &Structure,
    versions: &[&Version],
    model: &FaultModel,
    profile: &UsageProfile,
) -> Result<f64, CoreError> {
    Ok(structure_failure_set(structure, versions, model)?
        .iter()
        .map(|i| profile.probability(DemandId::new(i as u32)))
        .sum())
}

/// The demands on which a 1-out-of-N system of the given versions fails:
/// the intersection of the versions' failure sets
/// ([`Structure::one_out_of_n`] as failure-set algebra).
///
/// # Errors
///
/// [`CoreError::EmptyInput`] if `versions` is empty.
pub fn system_failure_set(versions: &[&Version], model: &FaultModel) -> Result<BitSet, CoreError> {
    structure_failure_set(&Structure::one_out_of_n(versions.len()), versions, model)
}

/// Probability that a 1-out-of-2 system of two concrete versions fails on
/// a random demand: `Σ_x υ(π₁,x)·υ(π₂,x)·Q(x)`.
pub fn pair_pfd(v1: &Version, v2: &Version, model: &FaultModel, profile: &UsageProfile) -> f64 {
    system_pfd(&[v1, v2], model, profile).expect("a pair always has two versions")
}

/// Probability that a 1-out-of-N system of concrete versions fails on a
/// random demand (all versions fail simultaneously).
///
/// # Errors
///
/// [`CoreError::EmptyInput`] if `versions` is empty.
pub fn system_pfd(
    versions: &[&Version],
    model: &FaultModel,
    profile: &UsageProfile,
) -> Result<f64, CoreError> {
    structure_system_pfd(
        &Structure::one_out_of_n(versions.len()),
        versions,
        model,
        profile,
    )
}

/// Reliability improvement factor of the pair over its better version:
/// `min(pfd₁, pfd₂) / pair_pfd`. Returns `None` when the pair never fails
/// (infinite improvement).
pub fn diversity_gain(
    v1: &Version,
    v2: &Version,
    model: &FaultModel,
    profile: &UsageProfile,
) -> Option<f64> {
    let pair = pair_pfd(v1, v2, model, profile);
    if pair == 0.0 {
        return None;
    }
    let best = v1.pfd(model, profile).min(v2.pfd(model, profile));
    Some(best / pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::{FaultId, FaultModelBuilder};

    fn f(i: u32) -> FaultId {
        FaultId::new(i)
    }

    /// Singleton model over 4 demands.
    fn model() -> FaultModel {
        FaultModelBuilder::new(DemandSpace::new(4).unwrap())
            .singleton_faults()
            .build()
            .unwrap()
    }

    #[test]
    fn pair_fails_only_on_shared_demands() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0), f(1)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        // Intersection = {x1} → pair pfd = 0.25.
        assert!((pair_pfd(&v1, &v2, &m, &q) - 0.25).abs() < 1e-12);
        let fs = system_failure_set(&[&v1, &v2], &m).unwrap();
        assert_eq!(fs.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn disjoint_versions_never_fail_together() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0)]);
        let v2 = Version::from_faults(&m, [f(3)]);
        assert_eq!(pair_pfd(&v1, &v2, &m, &q), 0.0);
        assert!(diversity_gain(&v1, &v2, &m, &q).is_none());
    }

    #[test]
    fn identical_versions_give_no_diversity() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v = Version::from_faults(&m, [f(0), f(2)]);
        let pair = pair_pfd(&v, &v, &m, &q);
        assert!((pair - v.pfd(&m, &q)).abs() < 1e-12);
        assert!((diversity_gain(&v, &v, &m, &q).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_out_of_three_needs_all_to_fail() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0), f(1)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        let v3 = Version::from_faults(&m, [f(1), f(3)]);
        // All three share only x1.
        assert!((system_pfd(&[&v1, &v2, &v3], &m, &q).unwrap() - 0.25).abs() < 1e-12);
        // Adding a version can only help (intersection shrinks).
        let v4 = Version::correct(&m);
        assert_eq!(system_pfd(&[&v1, &v2, &v3, &v4], &m, &q).unwrap(), 0.0);
    }

    #[test]
    fn single_version_system_is_the_version() {
        let m = model();
        let q = UsageProfile::from_weights(m.space(), vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let v = Version::from_faults(&m, [f(1), f(3)]);
        assert!((system_pfd(&[&v], &m, &q).unwrap() - v.pfd(&m, &q)).abs() < 1e-12);
    }

    #[test]
    fn diversity_gain_quantifies_improvement() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0), f(1)]); // pfd 0.5
        let v2 = Version::from_faults(&m, [f(1), f(2)]); // pfd 0.5
                                                         // Pair pfd 0.25; gain = 0.5 / 0.25 = 2.
        assert!((diversity_gain(&v1, &v2, &m, &q).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_system_is_a_typed_error() {
        let m = model();
        assert!(matches!(
            system_failure_set(&[], &m),
            Err(CoreError::EmptyInput { .. })
        ));
        let q = UsageProfile::uniform(m.space());
        assert!(matches!(
            system_pfd(&[], &m, &q),
            Err(CoreError::EmptyInput { .. })
        ));
    }

    #[test]
    fn series_system_fails_when_any_version_fails() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0)]);
        let v2 = Version::from_faults(&m, [f(2)]);
        let s = Structure::series(2);
        let fs = structure_failure_set(&s, &[&v1, &v2], &m).unwrap();
        assert_eq!(fs.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!((structure_system_pfd(&s, &[&v1, &v2], &m, &q).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_of_three_failure_set() {
        let m = model();
        let v1 = Version::from_faults(&m, [f(0), f(1)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        let v3 = Version::from_faults(&m, [f(1), f(3)]);
        // 2-of-3 fails where ≥2 versions fail: x1 (all three), plus none
        // of x0/x2/x3 (single failures each).
        let s = Structure::k_of_n(2, 3);
        let fs = structure_failure_set(&s, &[&v1, &v2, &v3], &m).unwrap();
        assert_eq!(fs.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn structure_wrapper_matches_flat_path_bit_for_bit() {
        let m = model();
        let q = UsageProfile::from_weights(m.space(), vec![0.4, 0.1, 0.3, 0.2]).unwrap();
        let v1 = Version::from_faults(&m, [f(0), f(1)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        let flat = system_pfd(&[&v1, &v2], &m, &q).unwrap();
        let tree = structure_system_pfd(&Structure::one_out_of_n(2), &[&v1, &v2], &m, &q).unwrap();
        assert_eq!(flat.to_bits(), tree.to_bits());
    }
}
