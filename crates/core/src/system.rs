//! System-level reliability of *concrete* version tuples.
//!
//! [`crate::marginal`] works with population expectations; this module
//! evaluates actual versions (as produced by a simulated debugging
//! campaign): the pfd of a single version and of 1-out-of-N systems built
//! from specific versions, where the system fails on a demand only if
//! *every* version fails on it (perfect adjudication, as assumed
//! throughout the paper).

use diversim_universe::bitset::BitSet;
use diversim_universe::demand::DemandId;
use diversim_universe::fault::FaultModel;
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

/// The demands on which a 1-out-of-N system of the given versions fails:
/// the intersection of the versions' failure sets.
///
/// # Panics
///
/// Panics if `versions` is empty.
pub fn system_failure_set(versions: &[&Version], model: &FaultModel) -> BitSet {
    assert!(!versions.is_empty(), "a system needs at least one version");
    let mut acc = versions[0].failure_set(model);
    for v in &versions[1..] {
        acc.intersect_with(&v.failure_set(model));
    }
    acc
}

/// Probability that a 1-out-of-2 system of two concrete versions fails on
/// a random demand: `Σ_x υ(π₁,x)·υ(π₂,x)·Q(x)`.
pub fn pair_pfd(v1: &Version, v2: &Version, model: &FaultModel, profile: &UsageProfile) -> f64 {
    system_pfd(&[v1, v2], model, profile)
}

/// Probability that a 1-out-of-N system of concrete versions fails on a
/// random demand (all versions fail simultaneously).
///
/// # Panics
///
/// Panics if `versions` is empty.
pub fn system_pfd(versions: &[&Version], model: &FaultModel, profile: &UsageProfile) -> f64 {
    system_failure_set(versions, model)
        .iter()
        .map(|i| profile.probability(DemandId::new(i as u32)))
        .sum()
}

/// Reliability improvement factor of the pair over its better version:
/// `min(pfd₁, pfd₂) / pair_pfd`. Returns `None` when the pair never fails
/// (infinite improvement).
pub fn diversity_gain(
    v1: &Version,
    v2: &Version,
    model: &FaultModel,
    profile: &UsageProfile,
) -> Option<f64> {
    let pair = pair_pfd(v1, v2, model, profile);
    if pair == 0.0 {
        return None;
    }
    let best = v1.pfd(model, profile).min(v2.pfd(model, profile));
    Some(best / pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::{FaultId, FaultModelBuilder};

    fn f(i: u32) -> FaultId {
        FaultId::new(i)
    }

    /// Singleton model over 4 demands.
    fn model() -> FaultModel {
        FaultModelBuilder::new(DemandSpace::new(4).unwrap())
            .singleton_faults()
            .build()
            .unwrap()
    }

    #[test]
    fn pair_fails_only_on_shared_demands() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0), f(1)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        // Intersection = {x1} → pair pfd = 0.25.
        assert!((pair_pfd(&v1, &v2, &m, &q) - 0.25).abs() < 1e-12);
        let fs = system_failure_set(&[&v1, &v2], &m);
        assert_eq!(fs.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn disjoint_versions_never_fail_together() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0)]);
        let v2 = Version::from_faults(&m, [f(3)]);
        assert_eq!(pair_pfd(&v1, &v2, &m, &q), 0.0);
        assert!(diversity_gain(&v1, &v2, &m, &q).is_none());
    }

    #[test]
    fn identical_versions_give_no_diversity() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v = Version::from_faults(&m, [f(0), f(2)]);
        let pair = pair_pfd(&v, &v, &m, &q);
        assert!((pair - v.pfd(&m, &q)).abs() < 1e-12);
        assert!((diversity_gain(&v, &v, &m, &q).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_out_of_three_needs_all_to_fail() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0), f(1)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        let v3 = Version::from_faults(&m, [f(1), f(3)]);
        // All three share only x1.
        assert!((system_pfd(&[&v1, &v2, &v3], &m, &q) - 0.25).abs() < 1e-12);
        // Adding a version can only help (intersection shrinks).
        let v4 = Version::correct(&m);
        assert_eq!(system_pfd(&[&v1, &v2, &v3, &v4], &m, &q), 0.0);
    }

    #[test]
    fn single_version_system_is_the_version() {
        let m = model();
        let q = UsageProfile::from_weights(m.space(), vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let v = Version::from_faults(&m, [f(1), f(3)]);
        assert!((system_pfd(&[&v], &m, &q) - v.pfd(&m, &q)).abs() < 1e-12);
    }

    #[test]
    fn diversity_gain_quantifies_improvement() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v1 = Version::from_faults(&m, [f(0), f(1)]); // pfd 0.5
        let v2 = Version::from_faults(&m, [f(1), f(2)]); // pfd 0.5
                                                         // Pair pfd 0.25; gain = 0.5 / 0.25 = 2.
        assert!((diversity_gain(&v1, &v2, &m, &q).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one version")]
    fn empty_system_panics() {
        let m = model();
        let _ = system_failure_set(&[], &m);
    }
}
