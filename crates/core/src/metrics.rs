//! Diversity metrics for concrete version pairs.
//!
//! The paper works with population expectations; when *simulating*
//! campaigns it is useful to quantify the diversity of the actual pair in
//! hand. These metrics all derive from the versions' failure sets over
//! the demand space, weighted by the operational profile:
//!
//! * [`failure_correlation`] — the Q-weighted Pearson correlation of the
//!   two failure indicators (0 under independence given the marginals);
//! * [`jaccard_overlap`] — usage-weighted Jaccard index of the failure
//!   sets (1 = identical failure behaviour, 0 = disjoint);
//! * [`dependence_ratio`] — `P(both fail)/ (pfd_A·pfd_B)`, the concrete
//!   counterpart of the paper's `E[Θ²]/E[Θ]²`;
//! * [`DiversityReport`] — all of the above in one pass.

use diversim_universe::fault::FaultModel;
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

/// All pairwise diversity metrics of a version pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityReport {
    /// pfd of the first version.
    pub pfd_a: f64,
    /// pfd of the second version.
    pub pfd_b: f64,
    /// Probability both fail on the same random demand (system pfd).
    pub joint_pfd: f64,
    /// Usage-weighted Pearson correlation of the failure indicators;
    /// `0.0` when either version never fails or always fails.
    pub correlation: f64,
    /// Usage-weighted Jaccard overlap of the failure sets; `0.0` when
    /// neither fails anywhere.
    pub jaccard: f64,
}

impl DiversityReport {
    /// Computes all metrics in one pass over the demand space.
    pub fn compute(a: &Version, b: &Version, model: &FaultModel, profile: &UsageProfile) -> Self {
        let fa = a.failure_set(model);
        let fb = b.failure_set(model);
        let mut pfd_a = 0.0;
        let mut pfd_b = 0.0;
        let mut joint = 0.0;
        let mut union = 0.0;
        for (x, q) in profile.iter() {
            let ia = fa.contains(x.index());
            let ib = fb.contains(x.index());
            if ia {
                pfd_a += q;
            }
            if ib {
                pfd_b += q;
            }
            if ia && ib {
                joint += q;
            }
            if ia || ib {
                union += q;
            }
        }
        let var_a = pfd_a * (1.0 - pfd_a);
        let var_b = pfd_b * (1.0 - pfd_b);
        let correlation = if var_a > 0.0 && var_b > 0.0 {
            (joint - pfd_a * pfd_b) / (var_a * var_b).sqrt()
        } else {
            0.0
        };
        let jaccard = if union > 0.0 { joint / union } else { 0.0 };
        DiversityReport {
            pfd_a,
            pfd_b,
            joint_pfd: joint,
            correlation,
            jaccard,
        }
    }

    /// `P(both fail) / (pfd_A·pfd_B)`: 1 under independence, > 1 for
    /// positively dependent pairs. `None` when either version is correct.
    pub fn dependence_ratio(&self) -> Option<f64> {
        let denom = self.pfd_a * self.pfd_b;
        if denom == 0.0 {
            None
        } else {
            Some(self.joint_pfd / denom)
        }
    }
}

/// Usage-weighted Pearson correlation of the failure indicators of two
/// versions (see [`DiversityReport::correlation`]).
pub fn failure_correlation(
    a: &Version,
    b: &Version,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    DiversityReport::compute(a, b, model, profile).correlation
}

/// Usage-weighted Jaccard overlap of the failure sets (see
/// [`DiversityReport::jaccard`]).
pub fn jaccard_overlap(
    a: &Version,
    b: &Version,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    DiversityReport::compute(a, b, model, profile).jaccard
}

/// `P(both fail) / (pfd_A·pfd_B)` for a concrete pair; `None` if either
/// version never fails.
pub fn dependence_ratio(
    a: &Version,
    b: &Version,
    model: &FaultModel,
    profile: &UsageProfile,
) -> Option<f64> {
    DiversityReport::compute(a, b, model, profile).dependence_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::pair_pfd;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::{FaultId, FaultModelBuilder};

    fn f(i: u32) -> FaultId {
        FaultId::new(i)
    }

    fn model() -> FaultModel {
        FaultModelBuilder::new(DemandSpace::new(4).unwrap())
            .singleton_faults()
            .build()
            .unwrap()
    }

    #[test]
    fn identical_versions_have_full_overlap() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let v = Version::from_faults(&m, [f(0), f(2)]);
        let r = DiversityReport::compute(&v, &v, &m, &q);
        assert!((r.jaccard - 1.0).abs() < 1e-12);
        assert!((r.correlation - 1.0).abs() < 1e-12);
        assert!((r.joint_pfd - r.pfd_a).abs() < 1e-12);
        assert!((r.dependence_ratio().unwrap() - 1.0 / r.pfd_a).abs() < 1e-9);
    }

    #[test]
    fn disjoint_versions_have_zero_overlap_and_negative_correlation() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let a = Version::from_faults(&m, [f(0), f(1)]);
        let b = Version::from_faults(&m, [f(2), f(3)]);
        let r = DiversityReport::compute(&a, &b, &m, &q);
        assert_eq!(r.jaccard, 0.0);
        assert_eq!(r.joint_pfd, 0.0);
        assert!(r.correlation < 0.0, "disjoint failure sets anti-correlate");
        assert_eq!(r.dependence_ratio(), Some(0.0));
    }

    #[test]
    fn correct_version_gives_neutral_metrics() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let a = Version::correct(&m);
        let b = Version::from_faults(&m, [f(1)]);
        let r = DiversityReport::compute(&a, &b, &m, &q);
        assert_eq!(r.correlation, 0.0);
        assert_eq!(r.jaccard, 0.0);
        assert!(r.dependence_ratio().is_none());
    }

    #[test]
    fn partial_overlap_hand_computed() {
        // a fails on {0,1}, b fails on {1,2}, uniform Q over 4 demands.
        // joint = 1/4, union = 3/4 → jaccard = 1/3.
        // pfd_a = pfd_b = 1/2; corr = (1/4 − 1/4)/(1/2·1/2) = 0.
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let a = Version::from_faults(&m, [f(0), f(1)]);
        let b = Version::from_faults(&m, [f(1), f(2)]);
        let r = DiversityReport::compute(&a, &b, &m, &q);
        assert!((r.jaccard - 1.0 / 3.0).abs() < 1e-12);
        assert!(r.correlation.abs() < 1e-12);
        assert!((r.dependence_ratio().unwrap() - 1.0).abs() < 1e-12);
        assert!((r.joint_pfd - pair_pfd(&a, &b, &m, &q)).abs() < 1e-15);
    }

    #[test]
    fn skewed_profile_reweights_overlap() {
        let m = model();
        let q = UsageProfile::from_weights(m.space(), vec![0.7, 0.1, 0.1, 0.1]).unwrap();
        let a = Version::from_faults(&m, [f(0), f(1)]);
        let b = Version::from_faults(&m, [f(0), f(2)]);
        let r = DiversityReport::compute(&a, &b, &m, &q);
        // Shared failure demand 0 carries 0.7 of the usage.
        assert!((r.joint_pfd - 0.7).abs() < 1e-12);
        assert!((r.jaccard - 0.7 / 0.9).abs() < 1e-12);
        // pfd_a = pfd_b = 0.8; corr = (0.7 − 0.64) / 0.16 = 0.375.
        assert!((r.correlation - 0.375).abs() < 1e-12);
    }

    #[test]
    fn free_function_wrappers_agree_with_report() {
        let m = model();
        let q = UsageProfile::uniform(m.space());
        let a = Version::from_faults(&m, [f(0), f(1)]);
        let b = Version::from_faults(&m, [f(1)]);
        let r = DiversityReport::compute(&a, &b, &m, &q);
        assert_eq!(failure_correlation(&a, &b, &m, &q), r.correlation);
        assert_eq!(jaccard_overlap(&a, &b, &m, &q), r.jaccard);
        assert_eq!(dependence_ratio(&a, &b, &m, &q), r.dependence_ratio());
    }
}
