//! Error type for the core model computations.

use std::error::Error;
use std::fmt;

use diversim_testing::TestingError;
use diversim_universe::UniverseError;

/// Errors raised by the core model computations.
///
/// `Display` messages are stable (downstream layers forward them as
/// user- and wire-facing error strings); `#[non_exhaustive]` so new
/// validations can add variants without a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The two populations (or a population and a profile/suite) are
    /// defined over different demand spaces or fault models.
    ModelMismatch {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An analysis needed at least one population/suite and got none.
    EmptyInput {
        /// What was missing.
        what: &'static str,
    },
    /// A [`crate::structure::Structure`] tree is malformed: an empty gate,
    /// a `k` outside `1..=n`, a component index out of range, or a
    /// repeated-component tree too wide to enumerate.
    InvalidStructure {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Underlying universe error.
    Universe(UniverseError),
    /// Underlying testing error.
    Testing(TestingError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ModelMismatch { reason } => write!(f, "model mismatch: {reason}"),
            CoreError::EmptyInput { what } => write!(f, "empty input: {what}"),
            CoreError::InvalidStructure { reason } => {
                write!(f, "invalid structure: {reason}")
            }
            CoreError::Universe(e) => write!(f, "universe error: {e}"),
            CoreError::Testing(e) => write!(f, "testing error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Universe(e) => Some(e),
            CoreError::Testing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UniverseError> for CoreError {
    fn from(e: UniverseError) -> Self {
        CoreError::Universe(e)
    }
}

impl From<TestingError> for CoreError {
    fn from(e: TestingError) -> Self {
        CoreError::Testing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::ModelMismatch {
            reason: "spaces differ",
        };
        assert!(e.to_string().contains("spaces differ"));
        let u: CoreError = UniverseError::EmptyDemandSpace.into();
        assert!(Error::source(&u).is_some());
        let t: CoreError = TestingError::InvalidPartition { reason: "x" }.into();
        assert!(Error::source(&t).is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
