//! The Eckhardt–Lee model (the paper's equations (1)–(7)).
//!
//! Two versions drawn independently from the *same* population fail
//! independently on any fixed demand (eq 5), but on a random demand the
//! joint probability picks up the variance of the difficulty function:
//!
//! ```text
//! P(both fail on X) = E[Θ²] = (E[Θ])² + Var(Θ)          (eq 6)
//! P(Π₁ fails | Π₂ failed) = E[Θ] + Var(Θ)/E[Θ]          (eq 7)
//! ```
//!
//! with equality to the independence value iff `θ(x)` is constant — "it
//! seems likely that this will never be the case".

use diversim_stats::weighted;
use diversim_universe::demand::DemandId;
use diversim_universe::population::Population;
use diversim_universe::profile::UsageProfile;

/// The quantities of the Eckhardt–Lee analysis for one population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElAnalysis {
    /// `E[Θ]`: the pfd of a single randomly chosen version (eq 2).
    pub mean_theta: f64,
    /// `Var(Θ)`: the variance of difficulty across demands.
    pub var_theta: f64,
    /// `E[Θ²]`: the probability both versions of an independently selected
    /// pair fail on a random demand (eq 6).
    pub joint_pfd: f64,
    /// `(E[Θ])²`: what the joint pfd would be under (incorrect) assumption
    /// of unconditional independence.
    pub independent_pfd: f64,
}

impl ElAnalysis {
    /// Computes the analysis from a population and usage profile.
    pub fn compute(pop: &dyn Population, profile: &UsageProfile) -> Self {
        let pairs: Vec<(f64, f64)> = profile.iter().map(|(x, q)| (pop.theta(x), q)).collect();
        let m = weighted::moments(pairs.iter().copied()).expect("profile is a valid measure");
        ElAnalysis {
            mean_theta: m.mean,
            var_theta: m.variance,
            joint_pfd: m.mean * m.mean + m.variance,
            independent_pfd: m.mean * m.mean,
        }
    }

    /// The conditional probability (eq 7): `P(Π₁ fails on X | Π₂ failed on
    /// X) = E[Θ] + Var(Θ)/E[Θ]`. Returns `None` when `E[Θ] = 0` (a
    /// population that never fails).
    pub fn conditional_pfd(&self) -> Option<f64> {
        if self.mean_theta == 0.0 {
            None
        } else {
            Some(self.mean_theta + self.var_theta / self.mean_theta)
        }
    }

    /// The reliability penalty relative to independence:
    /// `E[Θ²] / (E[Θ])²`, i.e. how many times likelier a coincident
    /// failure is than independence predicts. Returns `None` when
    /// `E[Θ] = 0`.
    pub fn dependence_ratio(&self) -> Option<f64> {
        if self.independent_pfd == 0.0 {
            None
        } else {
            Some(self.joint_pfd / self.independent_pfd)
        }
    }
}

/// The per-demand joint probability (eq 4): two independently selected
/// versions fail *conditionally independently* on any given demand, so the
/// joint probability on `x` is `θ(x)²`.
pub fn joint_on_demand(pop: &dyn Population, x: DemandId) -> f64 {
    let t = pop.theta(x);
    t * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn hand_computed_two_demand_case() {
        // θ = (0.2, 0.4), uniform Q.
        // E[Θ] = 0.3; E[Θ²] = (0.04 + 0.16)/2 = 0.1; Var = 0.01.
        let pop = singleton_pop(vec![0.2, 0.4]);
        let q = UsageProfile::uniform(pop.model().space());
        let a = ElAnalysis::compute(&pop, &q);
        assert!((a.mean_theta - 0.3).abs() < 1e-12);
        assert!((a.var_theta - 0.01).abs() < 1e-12);
        assert!((a.joint_pfd - 0.1).abs() < 1e-12);
        assert!((a.independent_pfd - 0.09).abs() < 1e-12);
        assert!((a.conditional_pfd().unwrap() - (0.3 + 0.01 / 0.3)).abs() < 1e-12);
        assert!((a.dependence_ratio().unwrap() - 0.1 / 0.09).abs() < 1e-12);
    }

    #[test]
    fn constant_difficulty_gives_exact_independence() {
        // θ(x) ≡ 0.25 → Var = 0 → joint = independent (the eq-7 equality
        // case).
        let pop = singleton_pop(vec![0.25; 8]);
        let q = UsageProfile::uniform(pop.model().space());
        let a = ElAnalysis::compute(&pop, &q);
        assert!(a.var_theta.abs() < 1e-15);
        assert!((a.joint_pfd - a.independent_pfd).abs() < 1e-15);
        assert!((a.dependence_ratio().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn varying_difficulty_is_always_worse_than_independence() {
        // The EL headline result: E[Θ²] ≥ (E[Θ])², strict when θ varies.
        let pop = singleton_pop(vec![0.05, 0.1, 0.6, 0.01]);
        let q = UsageProfile::from_weights(pop.model().space(), vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let a = ElAnalysis::compute(&pop, &q);
        assert!(a.joint_pfd > a.independent_pfd);
        assert!(a.dependence_ratio().unwrap() > 1.0);
    }

    #[test]
    fn perfect_population_has_no_conditional() {
        let pop = singleton_pop(vec![0.0, 0.0]);
        let q = UsageProfile::uniform(pop.model().space());
        let a = ElAnalysis::compute(&pop, &q);
        assert_eq!(a.mean_theta, 0.0);
        assert!(a.conditional_pfd().is_none());
        assert!(a.dependence_ratio().is_none());
    }

    #[test]
    fn joint_on_demand_is_theta_squared() {
        let pop = singleton_pop(vec![0.3, 0.6]);
        assert!((joint_on_demand(&pop, DemandId::new(0)) - 0.09).abs() < 1e-12);
        assert!((joint_on_demand(&pop, DemandId::new(1)) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn usage_profile_weights_matter() {
        // Same θ values, different Q: concentrating usage on the hard
        // demand raises everything.
        let pop = singleton_pop(vec![0.1, 0.5]);
        let uniform = UsageProfile::uniform(pop.model().space());
        let skewed = UsageProfile::from_weights(pop.model().space(), vec![0.1, 0.9]).unwrap();
        let a_u = ElAnalysis::compute(&pop, &uniform);
        let a_s = ElAnalysis::compute(&pop, &skewed);
        assert!(a_s.mean_theta > a_u.mean_theta);
        assert!(a_s.joint_pfd > a_u.joint_pfd);
    }
}
