//! Marginal (system-level) probabilities of coincident failure —
//! equations (22)–(25) of §3.4.
//!
//! These integrate the per-demand results of [`crate::testing_effect`]
//! over the operational profile `Q(·)`, giving the probability that a
//! 1-out-of-2 system built from the tested pair fails on a random demand:
//!
//! ```text
//! (22) independent suites, same population:
//!        Σ_x ζ(x)² Q(x)                   = E[Θ_T]² + Var(Θ_T)
//! (23) shared suite, same population:
//!        (22) + Σ_x Var_Ξ(ξ(x,T)) Q(x)    ≥ (22)
//! (24) independent suites, forced diversity:
//!        Σ_x ζ_A(x)ζ_B(x) Q(x)            = E[Θ_TA]E[Θ_TB] + Cov(Θ_TA, Θ_TB)
//! (25) shared suite, forced diversity:
//!        (24) + Σ_x Cov_Ξ(ξ_A(x,T), ξ_B(x,T)) Q(x)
//! ```
//!
//! The (23)−(22) gap is always non-negative — "the use of a common test
//! suite increases the marginal probability of system failure" — while
//! the (25)−(24) gap can take either sign, so with forced diversity a
//! shared suite *can* beat independent suites ("counterintuitive because
//! it means that by testing more cheaply … a more reliable system can be
//! delivered").

use diversim_stats::weighted;
use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::profile::UsageProfile;

use crate::difficulty::TestedDifficulty;
use crate::testing_effect::{joint_independent_suites, joint_shared_suite, TestingRegime};

/// How suites are assigned to the two versions for a marginal analysis.
#[derive(Debug, Clone, Copy)]
pub enum SuiteAssignment<'a> {
    /// Each version debugged on its own independently drawn suite;
    /// the two procedures may differ (forced testing diversity).
    Independent {
        /// Measure generating version A's suites.
        measure_a: &'a ExplicitSuitePopulation,
        /// Measure generating version B's suites.
        measure_b: &'a ExplicitSuitePopulation,
    },
    /// One suite drawn from the measure and applied to both versions.
    Shared(&'a ExplicitSuitePopulation),
}

impl<'a> SuiteAssignment<'a> {
    /// Both versions' suites drawn independently from one procedure.
    pub fn independent(measure: &'a ExplicitSuitePopulation) -> Self {
        SuiteAssignment::Independent {
            measure_a: measure,
            measure_b: measure,
        }
    }

    /// The corresponding [`TestingRegime`].
    pub fn regime(&self) -> TestingRegime {
        match self {
            SuiteAssignment::Independent { .. } => TestingRegime::IndependentSuites,
            SuiteAssignment::Shared(_) => TestingRegime::SharedSuite,
        }
    }
}

/// The decomposed marginal probability of coincident failure of a tested
/// pair (eqs 22–25).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginalAnalysis {
    /// `E[Θ_TA]·E[Θ_TB]` — the value if the tested versions failed
    /// independently across both development and demand selection.
    pub mean_product: f64,
    /// `Cov_Q(Θ_TA, Θ_TB)` (for one population: `Var_Q(Θ_T)`) — the
    /// Eckhardt–Lee-style penalty from difficulty variation, surviving
    /// after testing.
    pub difficulty_covariance: f64,
    /// `Σ_x Cov_Ξ(ξ_A(x,T), ξ_B(x,T)) Q(x)` (for one population:
    /// `Σ_x Var_Ξ(ξ(x,T)) Q(x)`) — the extra coupling induced by sharing
    /// one suite. Zero under independent suites.
    pub suite_coupling: f64,
    /// `E[Θ_TA]`: mean post-testing pfd of version A.
    pub mean_pfd_a: f64,
    /// `E[Θ_TB]`: mean post-testing pfd of version B.
    pub mean_pfd_b: f64,
}

impl MarginalAnalysis {
    /// The marginal probability that both tested versions fail on a random
    /// demand — the 1-out-of-2 system pfd. Clamped at zero to absorb
    /// negative rounding residue from the decomposition.
    pub fn system_pfd(&self) -> f64 {
        (self.mean_product + self.difficulty_covariance + self.suite_coupling).max(0.0)
    }

    /// The system pfd a (wrong, post-testing) independence assumption
    /// would predict.
    pub fn independence_prediction(&self) -> f64 {
        self.mean_product
    }

    /// Computes the marginal analysis for a tested pair.
    ///
    /// Pass the same population twice for the unforced (single-population)
    /// case; then `difficulty_covariance = Var(Θ_T)` and `suite_coupling =
    /// Σ Var_Ξ(ξ)Q` as in eqs (22)–(23).
    ///
    /// # Panics
    ///
    /// Panics if the populations are over different demand spaces.
    pub fn compute(
        pop_a: &dyn TestedDifficulty,
        pop_b: &dyn TestedDifficulty,
        assignment: SuiteAssignment<'_>,
        profile: &UsageProfile,
    ) -> Self {
        assert_eq!(
            pop_a.model().space(),
            pop_b.model().space(),
            "populations must share a demand space"
        );
        // Per-demand ζ values and joint probabilities.
        let mut zeta_triples: Vec<((f64, f64), f64)> = Vec::with_capacity(profile.space().len());
        let mut coupling = 0.0;
        for (x, q) in profile.iter() {
            let joint = match assignment {
                SuiteAssignment::Independent {
                    measure_a,
                    measure_b,
                } => joint_independent_suites(pop_a, pop_b, measure_a, measure_b, x),
                SuiteAssignment::Shared(measure) => joint_shared_suite(pop_a, pop_b, measure, x),
            };
            coupling += joint.coupling * q;
            let (za, zb) = match assignment {
                SuiteAssignment::Independent {
                    measure_a,
                    measure_b,
                } => (
                    crate::difficulty::zeta(pop_a, x, measure_a),
                    crate::difficulty::zeta(pop_b, x, measure_b),
                ),
                SuiteAssignment::Shared(measure) => (
                    crate::difficulty::zeta(pop_a, x, measure),
                    crate::difficulty::zeta(pop_b, x, measure),
                ),
            };
            zeta_triples.push(((za, zb), q));
        }
        let cov =
            weighted::covariance(zeta_triples.iter().copied()).expect("profile is a valid measure");
        let mean_a = weighted::mean(zeta_triples.iter().map(|&((a, _), q)| (a, q)))
            .expect("profile is a valid measure");
        let mean_b = weighted::mean(zeta_triples.iter().map(|&((_, b), q)| (b, q)))
            .expect("profile is a valid measure");
        MarginalAnalysis {
            mean_product: mean_a * mean_b,
            difficulty_covariance: cov,
            suite_coupling: coupling,
            mean_pfd_a: mean_a,
            mean_pfd_b: mean_b,
        }
    }
}

/// The shared-vs-independent penalty of §3.4.1: the difference between
/// eq (23) and eq (22) (or (25) and (24) under forced diversity), i.e. the
/// usage-weighted suite coupling. Non-negative for a single population;
/// either sign under forced diversity.
pub fn shared_suite_penalty(
    pop_a: &dyn TestedDifficulty,
    pop_b: &dyn TestedDifficulty,
    measure: &ExplicitSuitePopulation,
    profile: &UsageProfile,
) -> f64 {
    let shared = MarginalAnalysis::compute(pop_a, pop_b, SuiteAssignment::Shared(measure), profile);
    shared.suite_coupling
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn eq22_hand_computed() {
        // p = (0.4, 0.8), uniform Q, one i.i.d. draw:
        // ζ = (0.2, 0.4); Σ ζ² Q = (0.04 + 0.16)/2 = 0.10.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let a = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::independent(&m), &q);
        assert!((a.system_pfd() - 0.10).abs() < 1e-12);
        // Decomposition: E[Θ_T] = 0.3, Var = 0.01.
        assert!((a.mean_pfd_a - 0.3).abs() < 1e-12);
        assert!((a.mean_product - 0.09).abs() < 1e-12);
        assert!((a.difficulty_covariance - 0.01).abs() < 1e-12);
        assert_eq!(a.suite_coupling, 0.0);
    }

    #[test]
    fn eq23_hand_computed() {
        // Same setting, shared suite:
        // E[ξ(x0,T)²] = 0.08, E[ξ(x1,T)²] = 0.32 → Σ Q = 0.20.
        // Coupling = 0.20 − 0.10 = Σ Var_Ξ Q = (0.04 + 0.16)/2 = 0.10.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let a = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::Shared(&m), &q);
        assert!((a.system_pfd() - 0.20).abs() < 1e-12);
        assert!((a.suite_coupling - 0.10).abs() < 1e-12);
        assert!((shared_suite_penalty(&pop, &pop, &m, &q) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn eq23_dominates_eq22_across_universes() {
        // The §3.4.1 headline: shared ≥ independent, for every suite size.
        let pop = singleton_pop(vec![0.1, 0.35, 0.6, 0.85]);
        let q = UsageProfile::from_weights(pop.model().space(), vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        for n in 0..5 {
            let m = enumerate_iid_suites(&q, n, 1 << 10).unwrap();
            let ind = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::independent(&m), &q);
            let sh = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::Shared(&m), &q);
            assert!(
                sh.system_pfd() + 1e-15 >= ind.system_pfd(),
                "shared < independent at n={n}"
            );
            assert!(sh.suite_coupling >= -1e-15);
        }
    }

    #[test]
    fn zero_testing_recovers_el_joint() {
        let pop = singleton_pop(vec![0.25, 0.5, 0.75]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 0, 4).unwrap();
        let el = crate::el::ElAnalysis::compute(&pop, &q);
        for assignment in [
            SuiteAssignment::independent(&m),
            SuiteAssignment::Shared(&m),
        ] {
            let a = MarginalAnalysis::compute(&pop, &pop, assignment, &q);
            assert!((a.system_pfd() - el.joint_pfd).abs() < 1e-12);
        }
    }

    #[test]
    fn eq24_forced_diversity_mirrored_pair() {
        // A = (0.4, 0.1), B = (0.1, 0.4); one uniform draw:
        // ζ_A = (0.2, 0.05), ζ_B = (0.05, 0.2);
        // (24) = Σ ζ_Aζ_B Q = (0.01 + 0.01)/2 = 0.01.
        let space = DemandSpace::new(2).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        let a = BernoulliPopulation::new(model.clone(), vec![0.4, 0.1]).unwrap();
        let b = BernoulliPopulation::new(model.clone(), vec![0.1, 0.4]).unwrap();
        let q = UsageProfile::uniform(space);
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let ind = MarginalAnalysis::compute(&a, &b, SuiteAssignment::independent(&m), &q);
        assert!((ind.system_pfd() - 0.01).abs() < 1e-12);
        // Negative difficulty covariance survives testing here.
        assert!(ind.difficulty_covariance < 0.0);
    }

    #[test]
    fn eq25_coupling_can_be_positive_for_forced_diversity() {
        // With singleton faults and mirrored propensities the suite
        // coupling Σ Cov_Ξ Q is positive (same suites kill both versions'
        // faults on the same demands).
        let space = DemandSpace::new(2).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        let a = BernoulliPopulation::new(model.clone(), vec![0.8, 0.1]).unwrap();
        let b = BernoulliPopulation::new(model.clone(), vec![0.1, 0.8]).unwrap();
        let q = UsageProfile::uniform(space);
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let sh = MarginalAnalysis::compute(&a, &b, SuiteAssignment::Shared(&m), &q);
        assert!(sh.suite_coupling > 0.0);
    }

    #[test]
    fn eq25_coupling_can_be_negative_for_forced_diversity() {
        // Engineered sign flip: faults with *overlapping* regions make a
        // suite that kills A's fault on x also kill B's fault on a
        // *different* demand, letting ξ_A(x,T) and ξ_B(x,T) move in
        // opposite directions across suites.
        //
        // 2 demands; fault 0 covers {x0} (A-prone), fault 1 covers
        // {x0, x1} (B-prone). On demand x1:
        //   suites covering x0 kill fault 1 → ξ_B(x1) = 0, while ξ_A is 0
        //   anyway; suites covering only x1 also kill fault 1.
        // Use demand x0 instead:
        //   T = {x0}: kills both faults → ξ_A = 0, ξ_B = 0
        //   T = {x1}: kills fault 1 only → ξ_A = 0.9, ξ_B = 0
        // Still co-moving. To get a true negative we need ≥ 3 demands:
        //   fault a covers {x0, x1} (A-prone), fault b covers {x0, x2}
        //   (B-prone). On x0:
        //     T={x1}: kills a → ξ_A=0,  ξ_B=pb
        //     T={x2}: kills b → ξ_A=pa, ξ_B=0
        //     T={x0}: kills both → 0, 0
        //   ξ_A and ξ_B anti-move across suites ⇒ Cov < 0.
        let space = DemandSpace::new(3).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .fault([
                    diversim_universe::DemandId::new(0),
                    diversim_universe::DemandId::new(1),
                ])
                .fault([
                    diversim_universe::DemandId::new(0),
                    diversim_universe::DemandId::new(2),
                ])
                .build()
                .unwrap(),
        );
        let a = BernoulliPopulation::new(model.clone(), vec![0.9, 0.0]).unwrap();
        let b = BernoulliPopulation::new(model.clone(), vec![0.0, 0.9]).unwrap();
        let q = UsageProfile::uniform(space);
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let sh = MarginalAnalysis::compute(&a, &b, SuiteAssignment::Shared(&m), &q);
        assert!(
            sh.suite_coupling < 0.0,
            "expected negative coupling, got {}",
            sh.suite_coupling
        );
        // And therefore the counterintuitive ordering: shared beats
        // independent here.
        let ind = MarginalAnalysis::compute(&a, &b, SuiteAssignment::independent(&m), &q);
        assert!(sh.system_pfd() < ind.system_pfd());
    }

    #[test]
    fn independence_prediction_is_mean_product() {
        let pop = singleton_pop(vec![0.3, 0.5]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let a = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::Shared(&m), &q);
        assert!((a.independence_prediction() - a.mean_pfd_a * a.mean_pfd_b).abs() < 1e-15);
    }

    #[test]
    fn assignment_regime_mapping() {
        let pop = singleton_pop(vec![0.5]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 8).unwrap();
        assert_eq!(
            SuiteAssignment::independent(&m).regime(),
            TestingRegime::IndependentSuites
        );
        assert_eq!(
            SuiteAssignment::Shared(&m).regime(),
            TestingRegime::SharedSuite
        );
    }
}
