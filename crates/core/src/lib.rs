//! `diversim-core` — the models of Popov & Littlewood, *"The Effect of
//! Testing on Reliability of Fault-Tolerant Software"* (DSN 2004).
//!
//! The paper extends the Eckhardt–Lee ([`el`]) and Littlewood–Miller
//! ([`lm`]) probabilistic models of multi-version software to versions
//! that *evolve through debugging*. This crate implements every numbered
//! result:
//!
//! | Result | Module |
//! |---|---|
//! | difficulty functions θ, ξ, ς, η, ζ (eqs 1, 11–14) | [`difficulty`] |
//! | EL: joint pfd = E\[Θ²\] = E\[Θ\]² + Var(Θ) (eqs 4–7) | [`el`] |
//! | LM: joint pfd = E\[Θ_A\]E\[Θ_B\] + Cov (eqs 8–10) | [`lm`] |
//! | per-demand joint pfd of tested pairs (eqs 15–21) | [`testing_effect`] |
//! | marginal system pfd under four regimes (eqs 22–25) | [`marginal`] |
//! | §4.1 imperfect-testing bounds, §4.2 back-to-back bounds | [`bounds`] |
//! | concrete-version system pfd (simulation support) | [`system`] |
//! | 1-out-of-N generalisation (§5 extension) | [`nversion`] |
//! | structure functions: k-of-n and AND/OR fault trees | [`structure`] |
//!
//! The headline result reproduced here: testing two versions on a
//! **shared** test suite couples their failures — the marginal system pfd
//! picks up the non-negative term `Σ_x Var_Ξ(ξ(x,T))Q(x)` relative to
//! testing them on independently generated suites (eqs 22 vs 23) — while
//! under forced diversity the corresponding covariance term can take
//! either sign (eqs 24 vs 25).
//!
//! # Examples
//!
//! ```
//! use diversim_core::marginal::{MarginalAnalysis, SuiteAssignment};
//! use diversim_testing::suite_population::enumerate_iid_suites;
//! use diversim_universe::demand::DemandSpace;
//! use diversim_universe::fault::FaultModelBuilder;
//! use diversim_universe::population::BernoulliPopulation;
//! use diversim_universe::profile::UsageProfile;
//! use std::sync::Arc;
//!
//! // A small Eckhardt–Lee universe with varying difficulty.
//! let space = DemandSpace::new(4)?;
//! let model = Arc::new(FaultModelBuilder::new(space).singleton_faults().build()?);
//! let pop = BernoulliPopulation::new(model, vec![0.1, 0.3, 0.5, 0.7])?;
//! let q = UsageProfile::uniform(space);
//!
//! // Debug each version on 2 i.i.d. operational demands.
//! let m = enumerate_iid_suites(&q, 2, 1 << 10)?;
//! let independent =
//!     MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::independent(&m), &q);
//! let shared = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::Shared(&m), &q);
//!
//! // The paper's main theorem: the shared suite can only hurt.
//! assert!(shared.system_pfd() >= independent.system_pfd());
//! assert!(shared.suite_coupling >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bounds;
pub mod difficulty;
pub mod el;
pub mod error;
pub mod imperfect;
pub mod lm;
pub mod marginal;
pub mod metrics;
pub mod nversion;
pub mod structure;
pub mod system;
pub mod testing_effect;

pub use bounds::{BackToBackBounds, ImperfectTestingBounds};
pub use difficulty::{
    eta, tested_score, varsigma, zeta, zeta_vector, DifficultyShift, TestedDifficulty,
};
pub use el::ElAnalysis;
pub use error::CoreError;
pub use imperfect::{marginal_imperfect_iid, xi_imperfect, zeta_imperfect_iid};
pub use lm::LmAnalysis;
pub use marginal::{shared_suite_penalty, MarginalAnalysis, SuiteAssignment};
pub use metrics::{dependence_ratio, failure_correlation, jaccard_overlap, DiversityReport};
pub use nversion::system_pfd_n;
pub use structure::{
    fail_on_demand_independent, fail_on_demand_shared, gate_moments, structure_pfd, GateMoment,
    Structure,
};
pub use system::{
    diversity_gain, pair_pfd, structure_failure_set, structure_system_pfd, system_failure_set,
    system_pfd,
};
pub use testing_effect::{
    joint_independent_suites, joint_on_demand, joint_shared_suite, JointOnDemand, TestingRegime,
};
