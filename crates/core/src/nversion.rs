//! 1-out-of-N generalisation of the pair results — an extension in the
//! spirit of the paper's §5 ("applying more than one activity to the
//! diverse channels").
//!
//! > **Which path is this?** This module is the **population-expectation**
//! > path: it computes marginal failure probabilities of version
//! > *distributions* under the testing regimes, per demand and averaged
//! > over the usage profile. The **concrete-version** path — failure sets
//! > of actual sampled versions — lives in [`crate::system`]. Arbitrary
//! > fault trees generalising both flat entry points live in
//! > [`crate::structure`].
//!
//! A 1-out-of-N system fails on a demand only if *all* N versions fail.
//! For versions drawn independently and tested on **independent** suites,
//! conditional independence per demand survives (the §3.1 argument
//! iterates over any number of channels), so
//!
//! ```text
//! P(all fail on x) = Π_i ζ_i(x)
//! ```
//!
//! For a **shared** suite the coupling generalises eq (20)/(21) to the
//! N-fold mixed moment `E_Ξ[Π_i ξ_i(x, T)]`.
//!
//! These entry points are thin wrappers over
//! [`Structure::one_out_of_n`] — the AND gate's product runs in the same
//! order as the historical flat implementation, so the wrappers are
//! bit-for-bit identical to it.

use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::demand::DemandId;
use diversim_universe::profile::UsageProfile;

use crate::difficulty::TestedDifficulty;
use crate::error::CoreError;
use crate::structure::{self, Structure};
use crate::testing_effect::TestingRegime;

/// Joint probability that all `pops` versions fail on demand `x`, each
/// version tested on its own independently drawn suite from `measure`.
///
/// # Errors
///
/// [`CoreError::EmptyInput`] if `pops` is empty.
pub fn all_fail_on_demand_independent(
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    x: DemandId,
) -> Result<f64, CoreError> {
    structure::fail_on_demand_independent(&Structure::one_out_of_n(pops.len()), pops, measure, x)
}

/// Joint probability that all `pops` versions fail on demand `x` when all
/// are debugged on **one** shared suite: `E_Ξ[Π_i ξ_i(x, T)]`.
///
/// # Errors
///
/// [`CoreError::EmptyInput`] if `pops` is empty.
pub fn all_fail_on_demand_shared(
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    x: DemandId,
) -> Result<f64, CoreError> {
    structure::fail_on_demand_shared(&Structure::one_out_of_n(pops.len()), pops, measure, x)
}

/// Marginal probability that a 1-out-of-N system fails on a random demand,
/// under the given testing regime.
///
/// # Errors
///
/// [`CoreError::EmptyInput`] if `pops` is empty;
/// [`CoreError::ModelMismatch`] if a population and the profile disagree
/// on the demand space.
pub fn system_pfd_n(
    pops: &[&dyn TestedDifficulty],
    measure: &ExplicitSuitePopulation,
    profile: &UsageProfile,
    regime: TestingRegime,
) -> Result<f64, CoreError> {
    structure::structure_pfd(
        &Structure::one_out_of_n(pops.len()),
        pops,
        measure,
        profile,
        regime,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marginal::{MarginalAnalysis, SuiteAssignment};
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn n_equals_two_matches_pair_analysis() {
        let pop = singleton_pop(vec![0.3, 0.6]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let pair_ind = MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::independent(&m), &q)
            .system_pfd();
        let n_ind = system_pfd_n(&[&pop, &pop], &m, &q, TestingRegime::IndependentSuites).unwrap();
        assert!((pair_ind - n_ind).abs() < 1e-12);
        let pair_sh =
            MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::Shared(&m), &q).system_pfd();
        let n_sh = system_pfd_n(&[&pop, &pop], &m, &q, TestingRegime::SharedSuite).unwrap();
        assert!((pair_sh - n_sh).abs() < 1e-12);
    }

    #[test]
    fn more_channels_never_hurt() {
        let pop = singleton_pop(vec![0.4, 0.7]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        for regime in [TestingRegime::IndependentSuites, TestingRegime::SharedSuite] {
            let two = system_pfd_n(&[&pop, &pop], &m, &q, regime).unwrap();
            let three = system_pfd_n(&[&pop, &pop, &pop], &m, &q, regime).unwrap();
            let four = system_pfd_n(&[&pop, &pop, &pop, &pop], &m, &q, regime).unwrap();
            assert!(three <= two + 1e-15, "third channel hurt under {regime}");
            assert!(four <= three + 1e-15, "fourth channel hurt under {regime}");
        }
    }

    #[test]
    fn shared_suite_dominates_independent_for_n_channels() {
        // The eq-20 domination generalises: the N-fold mixed moment over a
        // common T exceeds the product of means (all ξ_i co-move in T).
        let pop = singleton_pop(vec![0.2, 0.5, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        for n_channels in 2..=4 {
            let pops: Vec<&dyn TestedDifficulty> = (0..n_channels)
                .map(|_| &pop as &dyn TestedDifficulty)
                .collect();
            let ind = system_pfd_n(&pops, &m, &q, TestingRegime::IndependentSuites).unwrap();
            let sh = system_pfd_n(&pops, &m, &q, TestingRegime::SharedSuite).unwrap();
            assert!(sh + 1e-15 >= ind, "shared < independent for N={n_channels}");
        }
    }

    #[test]
    fn single_channel_equals_mean_tested_pfd() {
        let pop = singleton_pop(vec![0.25, 0.75]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let one_ind = system_pfd_n(&[&pop], &m, &q, TestingRegime::IndependentSuites).unwrap();
        let one_sh = system_pfd_n(&[&pop], &m, &q, TestingRegime::SharedSuite).unwrap();
        // With one channel the regimes coincide: E over T of ξ.
        assert!((one_ind - one_sh).abs() < 1e-12);
        // ζ = (0.125, 0.375) → mean tested pfd = 0.25.
        assert!((one_ind - 0.25).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_channels() {
        // Mixed methodologies: a strong channel added to two weak ones.
        let weak = singleton_pop(vec![0.5, 0.5]);
        let strong = BernoulliPopulation::new(weak.model().clone(), vec![0.01, 0.01]).unwrap();
        let q = UsageProfile::uniform(weak.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let without =
            system_pfd_n(&[&weak, &weak], &m, &q, TestingRegime::IndependentSuites).unwrap();
        let with = system_pfd_n(
            &[&weak, &weak, &strong],
            &m,
            &q,
            TestingRegime::IndependentSuites,
        )
        .unwrap();
        assert!(with < without * 0.1, "strong channel should slash the pfd");
    }

    #[test]
    fn empty_system_is_a_typed_error() {
        let pop = singleton_pop(vec![0.5]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 8).unwrap();
        for regime in [TestingRegime::IndependentSuites, TestingRegime::SharedSuite] {
            assert!(matches!(
                system_pfd_n(&[], &m, &q, regime),
                Err(CoreError::EmptyInput { .. })
            ));
        }
        assert!(matches!(
            all_fail_on_demand_independent(&[], &m, DemandId::new(0)),
            Err(CoreError::EmptyInput { .. })
        ));
        assert!(matches!(
            all_fail_on_demand_shared(&[], &m, DemandId::new(0)),
            Err(CoreError::EmptyInput { .. })
        ));
    }

    #[test]
    fn space_mismatch_is_a_typed_error() {
        let pop = singleton_pop(vec![0.5, 0.5]);
        let other = UsageProfile::uniform(DemandSpace::new(3).unwrap());
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 8).unwrap();
        assert!(matches!(
            system_pfd_n(&[&pop], &m, &other, TestingRegime::SharedSuite),
            Err(CoreError::ModelMismatch { .. })
        ));
    }
}
