//! The paper's primary contribution: how testing regimes shape the joint
//! failure probability of a version pair **on a particular demand**
//! (equations (15)–(21)).
//!
//! Four independent-suite regimes (§3.1–3.2) all preserve conditional
//! independence:
//!
//! ```text
//! (16) same population,  same suite procedure:   ζ(x)²
//! (17) forced diversity, same suite procedure:   ζ_A(x)·ζ_B(x)
//! (18) same population,  forced suite diversity: ζ_TA(x)·ζ_TB(x)
//! (19) forced diversity, forced suite diversity: ζ_{A,TA}(x)·ζ_{B,TB}(x)
//! ```
//!
//! Testing both versions on the **same** suite destroys it:
//!
//! ```text
//! (20) same population:  E_Ξ[ξ(x,T)²]    = ζ(x)² + Var_Ξ(ξ(x,T)) ≥ ζ(x)²
//! (21) forced diversity: E_Ξ[ξ_A·ξ_B]    = ζ_A(x)ζ_B(x) + Cov_Ξ(ξ_A(x,T), ξ_B(x,T))
//! ```
//!
//! "(20) and (21) are important because they preclude using the EL and LM
//! models … once a two channel system is expected to be tested with the
//! same test suite, which appears to be a common practice."

use diversim_stats::weighted;
use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::demand::DemandId;

use crate::difficulty::{zeta, TestedDifficulty};

/// Whether the two versions are debugged on the same realised test suite
/// or on independently drawn ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestingRegime {
    /// Each version gets its own independently generated suite (§3.1–3.2).
    IndependentSuites,
    /// Both versions are debugged on one shared suite (§3.3) — the
    /// acceptance-testing / back-to-back situation.
    SharedSuite,
}

impl std::fmt::Display for TestingRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestingRegime::IndependentSuites => write!(f, "independent suites"),
            TestingRegime::SharedSuite => write!(f, "shared suite"),
        }
    }
}

/// Decomposition of the joint failure probability of a tested pair on one
/// demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointOnDemand {
    /// The conditional-independence part `ζ_A(x)·ζ_B(x)`.
    pub independent: f64,
    /// The coupling induced by suite sharing: `Var_Ξ(ξ(x,T))` for a single
    /// population (eq 20) or `Cov_Ξ(ξ_A, ξ_B)` for forced diversity
    /// (eq 21). Zero under independent suites (eqs 16–19).
    pub coupling: f64,
}

impl JointOnDemand {
    /// The joint probability that both tested versions fail on the demand.
    pub fn total(&self) -> f64 {
        self.independent + self.coupling
    }
}

/// Joint failure probability on demand `x` for versions tested on
/// **independently drawn** suites (eqs 16–19). Pass the same population
/// twice for the unforced case, and the same measure twice when both
/// procedures are identical; the formula is the product of the two
/// post-testing difficulties either way.
pub fn joint_independent_suites(
    pop_a: &dyn TestedDifficulty,
    pop_b: &dyn TestedDifficulty,
    measure_a: &ExplicitSuitePopulation,
    measure_b: &ExplicitSuitePopulation,
    x: DemandId,
) -> JointOnDemand {
    JointOnDemand {
        independent: zeta(pop_a, x, measure_a) * zeta(pop_b, x, measure_b),
        coupling: 0.0,
    }
}

/// Joint failure probability on demand `x` for versions tested on the
/// **same** suite `T ~ M(·)` (eqs 20–21): `E_Ξ[ξ_A(x,T)·ξ_B(x,T)]`,
/// decomposed into the product of means plus the suite
/// variance/covariance.
pub fn joint_shared_suite(
    pop_a: &dyn TestedDifficulty,
    pop_b: &dyn TestedDifficulty,
    measure: &ExplicitSuitePopulation,
    x: DemandId,
) -> JointOnDemand {
    let triples: Vec<((f64, f64), f64)> = measure
        .iter()
        .map(|(t, p)| {
            let covered = t.demand_set();
            ((pop_a.xi(x, covered), pop_b.xi(x, covered)), p)
        })
        .collect();
    let cov =
        weighted::covariance(triples.iter().copied()).expect("measure is a valid distribution");
    let mean_a = weighted::mean(triples.iter().map(|&((a, _), p)| (a, p)))
        .expect("measure is a valid distribution");
    let mean_b = weighted::mean(triples.iter().map(|&((_, b), p)| (b, p)))
        .expect("measure is a valid distribution");
    JointOnDemand {
        independent: mean_a * mean_b,
        coupling: cov,
    }
}

/// Joint failure probability on demand `x` for an **adaptive allocation
/// profile**: both versions are debugged on one shared suite `T_S ~ M_S`
/// *plus* a private suite each (`T_A ~ M_A`, `T_B ~ M_B`, drawn
/// independently of everything else) — the post-testing joint
/// distribution a policy-driven campaign induces once its realised
/// allocation counts are fixed (shared demands vs private demands per
/// version; see `diversim-sim`'s `policy` module).
///
/// Conditioned on the shared suite, the two versions are independent, so
///
/// ```text
/// E[ξ_A·ξ_B] = E_{T_S}[ g_A(T_S)·g_B(T_S) ],
///     g_V(t) = E_{T_V}[ ξ_V(x, t ∪ T_V) ]
/// ```
///
/// decomposed — exactly as eqs (20)–(21) — into the product of means
/// plus the covariance over the shared suite. With an empty shared
/// measure this reduces bit-for-bit to [`joint_independent_suites`]
/// (coupling 0); with empty private measures it reduces to
/// [`joint_shared_suite`]. The coupling term is how much shared-suite
/// penalty the allocation re-introduces.
pub fn joint_adaptive(
    pop_a: &dyn TestedDifficulty,
    pop_b: &dyn TestedDifficulty,
    shared: &ExplicitSuitePopulation,
    private_a: &ExplicitSuitePopulation,
    private_b: &ExplicitSuitePopulation,
    x: DemandId,
) -> JointOnDemand {
    let triples: Vec<((f64, f64), f64)> = shared
        .iter()
        .map(|(ts, ps)| {
            let ga = private_a.expect(|ta| {
                let mut covered = ts.demand_set().clone();
                covered.union_with(ta.demand_set());
                pop_a.xi(x, &covered)
            });
            let gb = private_b.expect(|tb| {
                let mut covered = ts.demand_set().clone();
                covered.union_with(tb.demand_set());
                pop_b.xi(x, &covered)
            });
            ((ga, gb), ps)
        })
        .collect();
    let cov =
        weighted::covariance(triples.iter().copied()).expect("measure is a valid distribution");
    let mean_a = weighted::mean(triples.iter().map(|&((a, _), p)| (a, p)))
        .expect("measure is a valid distribution");
    let mean_b = weighted::mean(triples.iter().map(|&((_, b), p)| (b, p)))
        .expect("measure is a valid distribution");
    JointOnDemand {
        independent: mean_a * mean_b,
        coupling: cov,
    }
}

/// Joint failure probability on demand `x` under either regime (dispatch
/// over [`TestingRegime`]; under `IndependentSuites` the single measure is
/// used for both versions, i.e. the eq-16/17 setting).
pub fn joint_on_demand(
    pop_a: &dyn TestedDifficulty,
    pop_b: &dyn TestedDifficulty,
    measure: &ExplicitSuitePopulation,
    x: DemandId,
    regime: TestingRegime,
) -> JointOnDemand {
    match regime {
        TestingRegime::IndependentSuites => {
            joint_independent_suites(pop_a, pop_b, measure, measure, x)
        }
        TestingRegime::SharedSuite => joint_shared_suite(pop_a, pop_b, measure, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use diversim_universe::profile::UsageProfile;
    use std::sync::Arc;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn eq16_hand_computed() {
        // Singleton universe, 2 demands, p = (0.4, 0.8); one uniform
        // i.i.d. draw: ζ(x0) = p0/2 = 0.2 → joint = 0.04.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let j = joint_independent_suites(&pop, &pop, &m, &m, d(0));
        assert!((j.independent - 0.04).abs() < 1e-12);
        assert_eq!(j.coupling, 0.0);
        assert!((j.total() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn eq20_hand_computed() {
        // Same setting, shared suite:
        // E[ξ(x0,T)²] = ½·0² + ½·p0² = 0.08; ζ(x0)² = 0.04; Var = 0.04.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let j = joint_shared_suite(&pop, &pop, &m, d(0));
        assert!((j.independent - 0.04).abs() < 1e-12);
        assert!((j.coupling - 0.04).abs() < 1e-12);
        assert!((j.total() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn eq20_shared_never_below_independent() {
        // Var_Ξ(ξ(x,T)) ≥ 0: the shared-suite joint dominates demand-wise.
        let pop = singleton_pop(vec![0.15, 0.45, 0.75, 0.3]);
        let q = UsageProfile::from_weights(pop.model().space(), vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        for n in 0..4 {
            let m = enumerate_iid_suites(&q, n, 1 << 10).unwrap();
            for x in pop.model().space().iter() {
                let shared = joint_shared_suite(&pop, &pop, &m, x);
                let indep = joint_independent_suites(&pop, &pop, &m, &m, x);
                assert!(
                    shared.total() + 1e-15 >= indep.total(),
                    "shared < independent at {x} with n={n}"
                );
                assert!(shared.coupling >= -1e-15, "variance must be non-negative");
            }
        }
    }

    #[test]
    fn empty_suite_measure_recovers_el() {
        // Testing with the empty suite: ζ = θ and the shared-suite
        // coupling vanishes (ξ is deterministic in T).
        let pop = singleton_pop(vec![0.25, 0.5]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 0, 4).unwrap();
        for x in pop.model().space().iter() {
            let shared = joint_shared_suite(&pop, &pop, &m, x);
            let t = pop.theta(x);
            assert!((shared.total() - t * t).abs() < 1e-12);
            assert!(shared.coupling.abs() < 1e-15);
        }
    }

    #[test]
    fn eq21_forced_diversity_covariance_sign() {
        // Mirrored methodologies on 2 demands: A = (0.8, 0.1),
        // B = (0.1, 0.8). One uniform draw; on x0:
        //   ξ_A(x0, {x0}) = 0, ξ_A(x0, {x1}) = 0.8
        //   ξ_B(x0, {x0}) = 0, ξ_B(x0, {x1}) = 0.1
        // → ξ_A and ξ_B move *together* in T ⇒ positive covariance
        //   (both are killed by the same suites).
        let space = DemandSpace::new(2).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        let a = BernoulliPopulation::new(model.clone(), vec![0.8, 0.1]).unwrap();
        let b = BernoulliPopulation::new(model.clone(), vec![0.1, 0.8]).unwrap();
        let q = UsageProfile::uniform(space);
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let j = joint_shared_suite(&a, &b, &m, d(0));
        // Exact: E[ξ_Aξ_B] = ½(0·0) + ½(0.8·0.1) = 0.04;
        // ζ_A = 0.4, ζ_B = 0.05 → product 0.02; Cov = 0.02.
        assert!((j.total() - 0.04).abs() < 1e-12);
        assert!((j.independent - 0.02).abs() < 1e-12);
        assert!((j.coupling - 0.02).abs() < 1e-12);
    }

    #[test]
    fn regime_dispatch_matches_direct_calls() {
        let pop = singleton_pop(vec![0.3, 0.6]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 64).unwrap();
        for x in pop.model().space().iter() {
            let a = joint_on_demand(&pop, &pop, &m, x, TestingRegime::IndependentSuites);
            let b = joint_independent_suites(&pop, &pop, &m, &m, x);
            assert_eq!(a, b);
            let c = joint_on_demand(&pop, &pop, &m, x, TestingRegime::SharedSuite);
            let e = joint_shared_suite(&pop, &pop, &m, x);
            assert_eq!(c, e);
        }
    }

    #[test]
    fn forced_testing_diversity_eq18() {
        // Two different suite procedures (operational vs. debug-skewed):
        // the joint is the product of the respective ζ's.
        let pop = singleton_pop(vec![0.5, 0.5]);
        let space = pop.model().space();
        let q_op = UsageProfile::uniform(space);
        let q_debug = UsageProfile::from_weights(space, vec![0.9, 0.1]).unwrap();
        let ma = enumerate_iid_suites(&q_op, 1, 64).unwrap();
        let mb = enumerate_iid_suites(&q_debug, 1, 64).unwrap();
        let j = joint_independent_suites(&pop, &pop, &ma, &mb, d(0));
        let za = zeta(&pop, d(0), &ma);
        let zb = zeta(&pop, d(0), &mb);
        assert!((j.total() - za * zb).abs() < 1e-12);
        // ζ under the debug profile (hits x0 with 0.9) is lower on x0.
        assert!(zb < za);
    }

    #[test]
    fn adaptive_with_empty_shared_measure_is_independent() {
        // No shared demands → the conditional-independence factorisation
        // of eqs (16)–(19) holds exactly, coupling included.
        let pop = singleton_pop(vec![0.2, 0.5, 0.7]);
        let q = UsageProfile::uniform(pop.model().space());
        let none = enumerate_iid_suites(&q, 0, 4).unwrap();
        let ma = enumerate_iid_suites(&q, 2, 64).unwrap();
        let mb = enumerate_iid_suites(&q, 3, 64).unwrap();
        for x in pop.model().space().iter() {
            let adaptive = joint_adaptive(&pop, &pop, &none, &ma, &mb, x);
            let indep = joint_independent_suites(&pop, &pop, &ma, &mb, x);
            assert!((adaptive.total() - indep.total()).abs() < 1e-12);
            assert!(adaptive.coupling.abs() < 1e-15);
        }
    }

    #[test]
    fn adaptive_with_empty_private_measures_is_shared() {
        // Everything shared → eqs (20)–(21) bit-for-bit: the expectation
        // over a single empty private suite is ξ itself.
        let pop = singleton_pop(vec![0.3, 0.6, 0.9]);
        let q = UsageProfile::uniform(pop.model().space());
        let none = enumerate_iid_suites(&q, 0, 4).unwrap();
        let shared = enumerate_iid_suites(&q, 2, 64).unwrap();
        for x in pop.model().space().iter() {
            let adaptive = joint_adaptive(&pop, &pop, &shared, &none, &none, x);
            let direct = joint_shared_suite(&pop, &pop, &shared, x);
            assert_eq!(adaptive, direct);
        }
    }

    #[test]
    fn adaptive_coupling_grows_with_shared_allocation() {
        // Fixed total effort (2 suite draws per version); moving draws
        // from private to shared monotonically raises the coupling.
        let pop = singleton_pop(vec![0.25, 0.5, 0.75]);
        let q = UsageProfile::uniform(pop.model().space());
        let x = d(0);
        let mut last = -1.0;
        for s in 0..=2usize {
            let shared = enumerate_iid_suites(&q, s, 1 << 10).unwrap();
            let private = enumerate_iid_suites(&q, 2 - s, 1 << 10).unwrap();
            let j = joint_adaptive(&pop, &pop, &shared, &private, &private, x);
            assert!(j.coupling >= -1e-15, "coupling negative at s={s}");
            assert!(
                j.coupling >= last - 1e-12,
                "coupling not monotone at s={s}: {} < {last}",
                j.coupling
            );
            last = j.coupling;
        }
        assert!(last > 0.0, "fully shared allocation must couple");
    }

    #[test]
    fn display_of_regimes() {
        assert_eq!(TestingRegime::SharedSuite.to_string(), "shared suite");
        assert_eq!(
            TestingRegime::IndependentSuites.to_string(),
            "independent suites"
        );
    }
}
