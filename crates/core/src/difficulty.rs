//! The difficulty functions of the paper, before and after testing.
//!
//! | Paper | Here | Meaning |
//! |---|---|---|
//! | `θ(x)` (eq 1) | [`diversim_universe::Population::theta`] | P(random program fails on `x`) |
//! | `υ(π,x,t)` (eq 11) | [`tested_score`] | score of `π` tested on `t`, perfect oracle/fixing |
//! | `ς(π,x)` (eq 12) | [`varsigma`] | P over random suites that tested `π` fails on `x` |
//! | `ξ(x,t)` (eq 13) | [`TestedDifficulty::xi`] | P(random program tested on `t` fails on `x`) |
//! | `η(π,t)` | [`eta`] | pfd of `π` tested on `t` under `Q(·)` |
//! | `ζ(x)` (eq 14) | [`zeta`] | post-testing difficulty: `E_{S,M}[υ(Π,x,T)]` |
//!
//! Everything here assumes the §3 setting — perfect failure detection and
//! perfect fault fixing — under which a fault survives testing if and only
//! if its failure region is disjoint from the suite's covered demands.
//! Imperfect regimes are handled by simulation (`diversim-sim`) and
//! bounded analytically in [`crate::bounds`].

use diversim_testing::suite::TestSuite;
use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::bitset::BitSet;
use diversim_universe::demand::DemandId;
use diversim_universe::fault::FaultModel;
use diversim_universe::population::{BernoulliPopulation, ExplicitPopulation, Population};
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

/// The paper's score-after-testing `υ(π, x, t)` (eq 11) under perfect
/// detection and fixing: `1.0` iff the tested version still fails on `x`,
/// i.e. iff `π` contains a fault of `O_x` whose region is disjoint from
/// the covered demands.
///
/// # Examples
///
/// ```
/// use diversim_core::difficulty::tested_score;
/// use diversim_universe::bitset::BitSet;
/// use diversim_universe::demand::{DemandId, DemandSpace};
/// use diversim_universe::fault::{FaultId, FaultModelBuilder};
/// use diversim_universe::version::Version;
///
/// let space = DemandSpace::new(2).unwrap();
/// let model = FaultModelBuilder::new(space).singleton_faults().build().unwrap();
/// let v = Version::from_faults(&model, [FaultId::new(0)]);
/// let untested = BitSet::new(2);
/// assert_eq!(tested_score(&v, &model, DemandId::new(0), &untested), 1.0);
/// let mut covered = BitSet::new(2);
/// covered.insert(0);
/// assert_eq!(tested_score(&v, &model, DemandId::new(0), &covered), 0.0);
/// ```
pub fn tested_score(version: &Version, model: &FaultModel, x: DemandId, covered: &BitSet) -> f64 {
    let fails = model
        .faults_at(x)
        .iter()
        .any(|&f| version.has_fault(f) && !model.triggered_by(f, covered));
    if fails {
        1.0
    } else {
        0.0
    }
}

/// The kernel form of the tested score: the set of demands on which the
/// tested version still fails — the union of the failure regions of its
/// *surviving* faults (those not triggered by `covered`).
///
/// `x ∈ tested_failure_set(π, t)` iff [`tested_score`]`(π, x, t) == 1`,
/// so demand-space-wide quantities become masses of this set instead of
/// per-demand loops: each fault is checked against the suite once rather
/// than once per demand of its region.
pub fn tested_failure_set(version: &Version, model: &FaultModel, covered: &BitSet) -> BitSet {
    let mut out = BitSet::new(model.space().len());
    for f in version.faults() {
        if !model.triggered_by(f, covered) {
            model.region_set(f).union_into(&mut out);
        }
    }
    out
}

/// Populations for which the post-testing difficulty `ξ(x, t)` (eq 13) is
/// computable exactly.
///
/// Implemented for [`BernoulliPopulation`] (closed form over surviving
/// faults) and [`ExplicitPopulation`] (weighted average of
/// [`tested_score`] over the support). Both override
/// [`xi_vector`](Self::xi_vector) with a kernel form that visits each
/// surviving fault once instead of once per demand; the per-demand
/// arithmetic order is preserved, so the vector agrees with per-demand
/// [`xi`](Self::xi) calls bit-for-bit.
pub trait TestedDifficulty: Population {
    /// `ξ(x, t)`: the probability that a randomly chosen program, tested
    /// with a suite covering `covered`, fails on `x`.
    fn xi(&self, x: DemandId, covered: &BitSet) -> f64;

    /// `ξ(x, t)` evaluated on every demand, indexed by demand.
    fn xi_vector(&self, covered: &BitSet) -> Vec<f64> {
        self.model()
            .space()
            .iter()
            .map(|x| self.xi(x, covered))
            .collect()
    }
}

impl TestedDifficulty for BernoulliPopulation {
    fn xi(&self, x: DemandId, covered: &BitSet) -> f64 {
        BernoulliPopulation::xi(self, x, covered)
    }

    /// Kernel form of the closed-form ξ: scatter each surviving fault's
    /// survival factor `1 − p_f` over its region (one suite check per
    /// fault), then complement. Per demand, the factors multiply in
    /// ascending fault order — exactly the order of the per-demand `O_x`
    /// product — so this equals [`BernoulliPopulation::xi`] bit-for-bit.
    fn xi_vector(&self, covered: &BitSet) -> Vec<f64> {
        let model = self.model();
        let mut survive = vec![1.0; model.space().len()];
        for f in model.fault_ids() {
            if model.triggered_by(f, covered) {
                continue;
            }
            let keep = 1.0 - self.propensity(f);
            for x in model.region_set(f).iter() {
                survive[x] *= keep;
            }
        }
        survive.iter().map(|s| 1.0 - s).collect()
    }
}

impl TestedDifficulty for ExplicitPopulation {
    fn xi(&self, x: DemandId, covered: &BitSet) -> f64 {
        let model = self.model().clone();
        self.iter()
            .map(|(v, p)| tested_score(v, &model, x, covered) * p)
            .sum()
    }

    /// Kernel form of the support average: scatter each version's weight
    /// over its [`tested_failure_set`]. Per demand, the weights add in
    /// support order — the order of the per-demand score sum — so this
    /// equals per-demand [`xi`](TestedDifficulty::xi) calls bit-for-bit.
    fn xi_vector(&self, covered: &BitSet) -> Vec<f64> {
        let model = self.model().clone();
        let mut out = vec![0.0; model.space().len()];
        for (v, p) in self.iter() {
            for x in tested_failure_set(v, &model, covered).iter() {
                out[x] += p;
            }
        }
        out
    }
}

/// The paper's `ς(π, x)` (eq 12): the probability that a *particular*
/// version `π`, tested with a random suite `T ~ M(·)`, fails on `x`.
pub fn varsigma(
    version: &Version,
    model: &FaultModel,
    x: DemandId,
    measure: &ExplicitSuitePopulation,
) -> f64 {
    measure.expect(|t| tested_score(version, model, x, t.demand_set()))
}

/// The paper's `η(π, t)`: the probability that version `π`, tested on `t`,
/// fails on a randomly selected demand `X ~ Q(·)` — the tested version's
/// pfd.
///
/// Kernel form: the usage mass of [`tested_failure_set`] via
/// [`BitSet::weighted_mass`] — `O(surviving regions)` instead of a score
/// evaluation per demand of the space, and bit-identical to the
/// per-demand expectation it replaces (same ascending summation order;
/// the skipped demands contributed exact zeros).
pub fn eta(
    version: &Version,
    model: &FaultModel,
    suite: &TestSuite,
    profile: &UsageProfile,
) -> f64 {
    tested_failure_set(version, model, suite.demand_set()).weighted_mass(profile.probabilities())
}

/// The paper's `ζ(x)` (eq 14): the post-testing difficulty function
/// `E_{S,M}[υ(Π, x, T)] = E_M[ξ(x, T)]`.
///
/// Satisfies `θ(x) ≥ ζ(x)` for every `x` and any measure `M(·)` — testing
/// can only help (§3).
pub fn zeta(pop: &dyn TestedDifficulty, x: DemandId, measure: &ExplicitSuitePopulation) -> f64 {
    measure.expect(|t| pop.xi(x, t.demand_set()))
}

/// `ζ(x)` evaluated on every demand, indexed by demand.
///
/// Kernel form: one [`TestedDifficulty::xi_vector`] per suite of the
/// measure, accumulated suite-by-suite — `O(suites · kernel)` instead of
/// `O(demands · suites · per-demand ξ)`. Per demand, the `ξ·M(t)` terms
/// add in suite order, the same order as the per-demand expectation in
/// [`zeta`], so the vector agrees with per-demand calls bit-for-bit.
pub fn zeta_vector(pop: &dyn TestedDifficulty, measure: &ExplicitSuitePopulation) -> Vec<f64> {
    let mut out = vec![0.0; pop.model().space().len()];
    for (t, p) in measure.iter() {
        let xs = pop.xi_vector(t.demand_set());
        for (acc, x) in out.iter_mut().zip(&xs) {
            *acc += x * p;
        }
    }
    out
}

/// Summary of how testing reshapes the difficulty function: the paper's §3
/// discussion of whether "variability of the difficulty changes as a
/// result of the testing".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifficultyShift {
    /// `E_Q[Θ]`: mean difficulty before testing.
    pub mean_before: f64,
    /// `Var_Q(Θ)`: difficulty variance before testing.
    pub var_before: f64,
    /// `E_Q[Θ_T]`: mean difficulty after testing.
    pub mean_after: f64,
    /// `Var_Q(Θ_T)`: difficulty variance after testing.
    pub var_after: f64,
}

impl DifficultyShift {
    /// Computes the before/after difficulty moments under the usage
    /// profile.
    pub fn compute(
        pop: &dyn TestedDifficulty,
        measure: &ExplicitSuitePopulation,
        profile: &UsageProfile,
    ) -> Self {
        let theta: Vec<(f64, f64)> = profile.iter().map(|(x, q)| (pop.theta(x), q)).collect();
        let zv = zeta_vector(pop, measure);
        let zeta: Vec<(f64, f64)> = profile.iter().map(|(x, q)| (zv[x.index()], q)).collect();
        let before = diversim_stats::weighted::moments(theta.iter().copied())
            .expect("profile is a valid measure");
        let after = diversim_stats::weighted::moments(zeta.iter().copied())
            .expect("profile is a valid measure");
        DifficultyShift {
            mean_before: before.mean,
            var_before: before.variance,
            mean_after: after.mean,
            var_after: after.variance,
        }
    }

    /// `true` if testing reduced the variability of difficulty — the
    /// benign case discussed in §3 ("at the very least it seems desirable
    /// to reduce the variability of ζ(x)").
    pub fn variance_reduced(&self) -> bool {
        self.var_after <= self.var_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::{FaultId, FaultModelBuilder};
    use std::sync::Arc;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn f(i: u32) -> FaultId {
        FaultId::new(i)
    }

    /// Singleton universe with 2 demands, Bernoulli propensities [p0, p1].
    fn singleton_pop(p0: f64, p1: f64) -> BernoulliPopulation {
        let space = DemandSpace::new(2).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, vec![p0, p1]).unwrap()
    }

    #[test]
    fn tested_score_is_monotone_in_coverage() {
        // υ(π,x,∅) ≥ υ(π,x,t): testing can only flip 1 → 0.
        let pop = singleton_pop(0.5, 0.5);
        let model = pop.model().clone();
        let v = Version::from_faults(&model, [f(0), f(1)]);
        let empty = BitSet::new(2);
        let mut covered = BitSet::new(2);
        covered.insert(0);
        for x in model.space().iter() {
            assert!(tested_score(&v, &model, x, &empty) >= tested_score(&v, &model, x, &covered));
        }
    }

    #[test]
    fn xi_explicit_matches_bernoulli() {
        let pop = singleton_pop(0.3, 0.7);
        let support = pop.enumerate(16).unwrap();
        let explicit = ExplicitPopulation::new(pop.model().clone(), support).unwrap();
        let mut covered = BitSet::new(2);
        covered.insert(1);
        for x in pop.model().space().iter() {
            assert!(
                (TestedDifficulty::xi(&pop, x, &covered) - explicit.xi(x, &covered)).abs() < 1e-12,
                "xi mismatch at {x}"
            );
        }
    }

    #[test]
    fn zeta_hand_computed_single_draw() {
        // One uniform i.i.d. draw over 2 demands:
        // ζ(x0) = ½·ξ(x0,{x0}) + ½·ξ(x0,{x1}) = ½·0 + ½·p0 = p0/2.
        let pop = singleton_pop(0.4, 0.8);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        assert!((zeta(&pop, d(0), &m) - 0.2).abs() < 1e-12);
        assert!((zeta(&pop, d(1), &m) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zeta_never_exceeds_theta() {
        let pop = singleton_pop(0.35, 0.65);
        let q = UsageProfile::from_weights(pop.model().space(), vec![0.7, 0.3]).unwrap();
        for n in 0..4 {
            let m = enumerate_iid_suites(&q, n, 64).unwrap();
            for x in pop.model().space().iter() {
                assert!(pop.theta(x) + 1e-15 >= zeta(&pop, x, &m));
            }
        }
    }

    #[test]
    fn zeta_decreases_with_suite_size() {
        let pop = singleton_pop(0.5, 0.5);
        let q = UsageProfile::uniform(pop.model().space());
        let mut prev = vec![pop.theta(d(0)), pop.theta(d(1))];
        for n in 1..5 {
            let m = enumerate_iid_suites(&q, n, 64).unwrap();
            let cur = zeta_vector(&pop, &m);
            for (p, c) in prev.iter().zip(&cur) {
                assert!(c <= p, "zeta increased with more testing");
            }
            prev = cur;
        }
    }

    #[test]
    fn varsigma_averages_over_suites() {
        // π = {f0}; suites {x0} and {x1} each w.p. ½.
        // ς(π, x0) = ½·0 + ½·1 = ½.
        let pop = singleton_pop(0.5, 0.5);
        let model = pop.model().clone();
        let v = Version::from_faults(&model, [f(0)]);
        let q = UsageProfile::uniform(model.space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        assert!((varsigma(&v, &model, d(0), &m) - 0.5).abs() < 1e-12);
        assert!((varsigma(&v, &model, d(1), &m) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn eta_is_tested_pfd() {
        let pop = singleton_pop(0.5, 0.5);
        let model = pop.model().clone();
        let v = Version::from_faults(&model, [f(0), f(1)]);
        let q = UsageProfile::from_weights(model.space(), vec![0.25, 0.75]).unwrap();
        let suite = TestSuite::from_demands(model.space(), vec![d(0)]).unwrap();
        // After testing on {x0}, the version fails only on x1.
        assert!((eta(&v, &model, &suite, &q) - 0.75).abs() < 1e-12);
        // Untested: fails everywhere → pfd 1.
        let untested = TestSuite::empty(model.space());
        assert!((eta(&v, &model, &untested, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn region_cascade_lowers_xi_on_untested_demands() {
        // Fault 0 covers {x0, x1}: testing x0 fixes x1 too (the D_X
        // cascade), so ξ(x1, {x0}) = 0 even though x1 was never run.
        let space = DemandSpace::new(2).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .fault([d(0), d(1)])
                .build()
                .unwrap(),
        );
        let pop = BernoulliPopulation::new(model, vec![0.9]).unwrap();
        let mut covered = BitSet::new(2);
        covered.insert(0);
        assert_eq!(TestedDifficulty::xi(&pop, d(1), &covered), 0.0);
        assert!((pop.theta(d(1)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn kernel_forms_match_per_demand_paths_bitwise() {
        // Overlapping regions + skewed profile: exercise every kernel
        // (tested_failure_set/eta, both xi_vector overrides, zeta_vector)
        // against the per-demand definitions with exact equality — the
        // kernels must preserve the scalar summation order.
        let space = DemandSpace::new(5).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .fault([d(0), d(1)])
                .fault([d(1), d(2)])
                .fault([d(3), d(4)])
                .build()
                .unwrap(),
        );
        let pop = BernoulliPopulation::new(model.clone(), vec![0.3, 0.6, 0.9]).unwrap();
        let support = pop.enumerate(16).unwrap();
        let explicit = ExplicitPopulation::new(model.clone(), support).unwrap();
        let q = UsageProfile::zipf(space, 0.9).unwrap();
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();

        let mut covered = BitSet::new(5);
        covered.insert(1);
        covered.insert(4);

        let v = Version::from_faults(&model, [f(0), f(2)]);
        let fs = tested_failure_set(&v, &model, &covered);
        for x in model.space().iter() {
            let member = if fs.contains(x.index()) { 1.0 } else { 0.0 };
            assert_eq!(member, tested_score(&v, &model, x, &covered));
        }
        let suite = TestSuite::from_demands(space, vec![d(1), d(4)]).unwrap();
        let eta_per_demand = q.expect(|x| tested_score(&v, &model, x, suite.demand_set()));
        assert_eq!(eta(&v, &model, &suite, &q), eta_per_demand);

        for pop in [&pop as &dyn TestedDifficulty, &explicit] {
            let xs = pop.xi_vector(&covered);
            for x in model.space().iter() {
                assert_eq!(xs[x.index()], pop.xi(x, &covered));
            }
            let zs = zeta_vector(pop, &m);
            for x in model.space().iter() {
                assert_eq!(zs[x.index()], zeta(pop, x, &m));
            }
        }
    }

    #[test]
    fn difficulty_shift_reports_moments() {
        let pop = singleton_pop(0.2, 0.8);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 64).unwrap();
        let shift = DifficultyShift::compute(&pop, &m, &q);
        assert!((shift.mean_before - 0.5).abs() < 1e-12);
        assert!((shift.var_before - 0.09).abs() < 1e-12);
        assert!(shift.mean_after < shift.mean_before);
        // Mean difficulty always drops; variance may move either way.
        assert!(shift.mean_after >= 0.0 && shift.var_after >= 0.0);
    }
}
