//! Bounds for imperfect testing regimes — §4 of the paper.
//!
//! When the oracle or the fault fixing is fallible the exact machinery of
//! §3 no longer applies; "the best we can do is find some bounds for the
//! system probabilities of failure" (§4.1):
//!
//! * **lower bound** — a tested version's scores are "no better than if
//!   tested with perfect oracle/fixing", so the perfect-testing system pfd
//!   from [`crate::marginal`] bounds the imperfect one from below;
//! * **upper bound** — scores are "no worse than the scores of the
//!   untested version", so the untested (EL/LM) joint pfd bounds it from
//!   above.
//!
//! Back-to-back testing (§4.2) is a special case of the shared-suite
//! regime: the optimistic assumption (coincident failures never identical)
//! reproduces the §3 perfect-oracle results; the pessimistic assumption
//! (all coincident failures identical, hence undetectable) leaves the
//! system pfd exactly where it started — "the version reliability
//! improvements are exactly matched by worsening diversity". The
//! pessimistic equality is exact in the paper's per-demand score model
//! (singleton failure regions); with larger regions a fix triggered by a
//! single failure may also repair coincident demands, so mechanistically
//! the pessimistic value is a conservative upper bound.

use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::profile::UsageProfile;

use crate::difficulty::TestedDifficulty;
use crate::lm::LmAnalysis;
use crate::marginal::{MarginalAnalysis, SuiteAssignment};

/// Bounds on the system pfd of a pair debugged with an imperfect oracle
/// and/or imperfect fixing (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImperfectTestingBounds {
    /// The perfect-testing system pfd (everything detected and fixed).
    pub lower: f64,
    /// The untested system pfd (nothing fixed).
    pub upper: f64,
}

impl ImperfectTestingBounds {
    /// Computes the §4.1 bounds for the given pair and suite assignment.
    ///
    /// # Panics
    ///
    /// Panics if the populations are over different demand spaces.
    pub fn compute(
        pop_a: &dyn TestedDifficulty,
        pop_b: &dyn TestedDifficulty,
        assignment: SuiteAssignment<'_>,
        profile: &UsageProfile,
    ) -> Self {
        let tested = MarginalAnalysis::compute(pop_a, pop_b, assignment, profile);
        let untested = LmAnalysis::compute(pop_a, pop_b, profile);
        ImperfectTestingBounds {
            lower: tested.system_pfd(),
            upper: untested.joint_pfd,
        }
    }

    /// Returns `true` if `value` lies within the bounds (inclusive, with a
    /// small tolerance for floating-point noise).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower - 1e-12 && value <= self.upper + 1e-12
    }

    /// Width of the bound interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Bounds on the system pfd after a back-to-back campaign on a shared
/// suite (§4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackToBackBounds {
    /// Optimistic: coincident failures always mismatch, so back-to-back
    /// equals perfect-oracle shared-suite testing (eq 23/25 value).
    pub optimistic: f64,
    /// Pessimistic: coincident failures are never detected; the system pfd
    /// does not improve at all and remains the untested joint pfd.
    pub pessimistic: f64,
}

impl BackToBackBounds {
    /// Computes the §4.2 bounds for a pair debugged back-to-back on suites
    /// from `measure`.
    ///
    /// # Panics
    ///
    /// Panics if the populations are over different demand spaces.
    pub fn compute(
        pop_a: &dyn TestedDifficulty,
        pop_b: &dyn TestedDifficulty,
        measure: &ExplicitSuitePopulation,
        profile: &UsageProfile,
    ) -> Self {
        let optimistic =
            MarginalAnalysis::compute(pop_a, pop_b, SuiteAssignment::Shared(measure), profile)
                .system_pfd();
        let pessimistic = LmAnalysis::compute(pop_a, pop_b, profile).joint_pfd;
        BackToBackBounds {
            optimistic,
            pessimistic,
        }
    }

    /// Returns `true` if `value` lies between the optimistic and
    /// pessimistic system pfds (inclusive, with tolerance).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.optimistic - 1e-12 && value <= self.pessimistic + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn imperfect_bounds_are_ordered() {
        let pop = singleton_pop(vec![0.2, 0.5, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        for n in 0..4 {
            let m = enumerate_iid_suites(&q, n, 1 << 8).unwrap();
            for assignment in [
                SuiteAssignment::independent(&m),
                SuiteAssignment::Shared(&m),
            ] {
                let b = ImperfectTestingBounds::compute(&pop, &pop, assignment, &q);
                assert!(b.lower <= b.upper + 1e-15, "bounds inverted at n={n}");
                assert!(b.width() >= -1e-15);
            }
        }
    }

    #[test]
    fn zero_testing_collapses_the_bounds() {
        let pop = singleton_pop(vec![0.3, 0.6]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 0, 4).unwrap();
        let b = ImperfectTestingBounds::compute(&pop, &pop, SuiteAssignment::Shared(&m), &q);
        assert!((b.lower - b.upper).abs() < 1e-12, "no testing → no gap");
    }

    #[test]
    fn bounds_contain_the_perfect_value_and_untested_value() {
        let pop = singleton_pop(vec![0.4, 0.7]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 64).unwrap();
        let b = ImperfectTestingBounds::compute(&pop, &pop, SuiteAssignment::independent(&m), &q);
        assert!(b.contains(b.lower));
        assert!(b.contains(b.upper));
        assert!(!b.contains(b.upper + 0.1));
        assert!(!b.contains(b.lower - 0.1));
    }

    #[test]
    fn b2b_bounds_hand_computed() {
        // p = (0.4, 0.8), uniform Q, one-draw suites.
        // Optimistic = eq-23 value = 0.20 (see marginal tests).
        // Pessimistic = untested E[Θ²] = (0.16 + 0.64)/2 = 0.40.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let b = BackToBackBounds::compute(&pop, &pop, &m, &q);
        assert!((b.optimistic - 0.20).abs() < 1e-12);
        assert!((b.pessimistic - 0.40).abs() < 1e-12);
        assert!(b.optimistic <= b.pessimistic);
    }

    #[test]
    fn b2b_bounds_bracket_intermediate_gamma() {
        // Any partially-identical regime must land between the bounds; we
        // spot-check the midpoint value is bracketed.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let b = BackToBackBounds::compute(&pop, &pop, &m, &q);
        let mid = 0.5 * (b.optimistic + b.pessimistic);
        assert!(b.contains(mid));
        assert!(!b.contains(b.pessimistic + 0.05));
    }

    #[test]
    fn more_testing_widens_the_b2b_gap() {
        // Optimistic improves with suite size; pessimistic stays at the
        // untested value.
        let pop = singleton_pop(vec![0.3, 0.5, 0.7]);
        let q = UsageProfile::uniform(pop.model().space());
        let mut last_gap = -1.0;
        for n in [0usize, 1, 2, 4] {
            let m = enumerate_iid_suites(&q, n, 1 << 8).unwrap();
            let b = BackToBackBounds::compute(&pop, &pop, &m, &q);
            let gap = b.pessimistic - b.optimistic;
            assert!(gap + 1e-15 >= last_gap, "gap shrank with more testing");
            last_gap = gap;
        }
    }
}
