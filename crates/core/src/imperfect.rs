//! Exact analysis of *imperfect* testing on one-fault-per-demand models —
//! an analytical extension beyond the paper's §4.1 bounds.
//!
//! §4.1 of the paper only bounds the imperfect-testing system pfd between
//! the perfect-testing value and the untested value. In the regime the
//! paper itself uses for its pure score model — at most one fault per
//! demand, singleton failure regions — the imperfect process is exactly
//! solvable:
//!
//! Let `ρ` be the per-execution *repair probability* (the probability
//! that one failing execution leads to the fault's removal; with an
//! imperfect oracle detecting with probability `d` and an imperfect fixer
//! removing with probability `r`, `ρ = d·r`). A fault at demand `x`
//! survives a suite executing `x` `m` times with probability `(1 − ρ)^m`,
//! independently of everything else. Hence for i.i.d. suites of size `n`
//! drawn from a test profile `Q_t(·)` (so `M ~ Binomial(n, Q_t(x))`):
//!
//! ```text
//! ζ_ρ(x)                    = p_x · (1 − ρ·Q_t(x))ⁿ
//! joint, independent suites = p_x² · (1 − ρ·Q_t(x))²ⁿ
//! joint, shared suite       = p_x² · (1 − ρ(2 − ρ)·Q_t(x))ⁿ
//! ```
//!
//! The per-demand gap between the regimes is
//! `p_x²·[(1−ρ(2−ρ)q)ⁿ − (1−ρq)²ⁿ] ≥ 0` (it expands to a sum of
//! `q²ρ²(1−…)` terms), recovering equation (23) ≥ (22) in closed form and
//! showing the shared-suite penalty *shrinks* as testing gets sloppier —
//! at `ρ → 0` the regimes coincide because no fixing happens at all.

use diversim_testing::suite::TestSuite;
use diversim_universe::demand::DemandId;
use diversim_universe::population::{BernoulliPopulation, Population};
use diversim_universe::profile::UsageProfile;

use crate::error::CoreError;
use crate::testing_effect::TestingRegime;

/// Validates the one-fault-per-demand precondition and the repair
/// probability.
fn check_preconditions(pop: &BernoulliPopulation, repair_prob: f64) -> Result<(), CoreError> {
    let model = pop.model();
    if !model.is_singleton() {
        return Err(CoreError::ModelMismatch {
            reason: "imperfect closed forms need singleton failure regions",
        });
    }
    for x in model.space().iter() {
        if model.faults_at(x).len() > 1 {
            return Err(CoreError::ModelMismatch {
                reason: "imperfect closed forms need at most one fault per demand \
                         (shared detection events correlate co-located faults)",
            });
        }
    }
    if !repair_prob.is_finite() || !(0.0..=1.0).contains(&repair_prob) {
        return Err(CoreError::ModelMismatch {
            reason: "repair probability must lie in [0, 1]",
        });
    }
    Ok(())
}

/// Propensity of the unique fault covering `x` (0 if none).
fn fault_propensity(pop: &BernoulliPopulation, x: DemandId) -> f64 {
    pop.model()
        .faults_at(x)
        .first()
        .map(|&f| pop.propensity(f))
        .unwrap_or(0.0)
}

/// `ξ_ρ(x, t)`: the probability that a random version, debugged on the
/// *concrete* suite `t` with per-execution repair probability
/// `repair_prob`, still fails on `x`. Uses the suite's execution
/// multiplicities: `p_x·(1−ρ)^{m_x(t)}`.
///
/// # Errors
///
/// Returns [`CoreError::ModelMismatch`] unless the model has singleton
/// regions with at most one fault per demand and `repair_prob ∈ [0, 1]`.
pub fn xi_imperfect(
    pop: &BernoulliPopulation,
    x: DemandId,
    suite: &TestSuite,
    repair_prob: f64,
) -> Result<f64, CoreError> {
    check_preconditions(pop, repair_prob)?;
    let m = suite.demands().iter().filter(|&&y| y == x).count() as i32;
    Ok(fault_propensity(pop, x) * (1.0 - repair_prob).powi(m))
}

/// `ζ_ρ(x)` for i.i.d. `n`-demand suites from `test_profile`:
/// `p_x·(1 − ρ·Q_t(x))ⁿ`.
///
/// # Errors
///
/// Same preconditions as [`xi_imperfect`].
pub fn zeta_imperfect_iid(
    pop: &BernoulliPopulation,
    x: DemandId,
    test_profile: &UsageProfile,
    suite_size: usize,
    repair_prob: f64,
) -> Result<f64, CoreError> {
    check_preconditions(pop, repair_prob)?;
    let q = test_profile.probability(x);
    Ok(fault_propensity(pop, x)
        * (1.0 - repair_prob * q).powi(suite_size.min(i32::MAX as usize) as i32))
}

/// Joint probability that both versions of a (possibly forced-diversity)
/// pair fail on `x` after imperfect debugging on i.i.d. `n`-demand suites.
///
/// # Errors
///
/// Same preconditions as [`xi_imperfect`], applied to both populations.
pub fn joint_imperfect_iid(
    pop_a: &BernoulliPopulation,
    pop_b: &BernoulliPopulation,
    x: DemandId,
    test_profile: &UsageProfile,
    suite_size: usize,
    repair_prob: f64,
    regime: TestingRegime,
) -> Result<f64, CoreError> {
    check_preconditions(pop_a, repair_prob)?;
    check_preconditions(pop_b, repair_prob)?;
    let q = test_profile.probability(x);
    let n = suite_size.min(i32::MAX as usize) as i32;
    let pa = fault_propensity(pop_a, x);
    let pb = fault_propensity(pop_b, x);
    let joint_survival = match regime {
        // Two independent Binomial(n, q) exposure counts.
        TestingRegime::IndependentSuites => (1.0 - repair_prob * q).powi(2 * n),
        // One shared count; both versions' repairs are independent given
        // the count: E[(1−ρ)^{2M}] = (1 − q(1 − (1−ρ)²))ⁿ.
        TestingRegime::SharedSuite => {
            (1.0 - q * (1.0 - (1.0 - repair_prob) * (1.0 - repair_prob))).powi(n)
        }
    };
    Ok(pa * pb * joint_survival)
}

/// The marginal system pfd of an imperfectly tested pair under either
/// regime: `Σ_x joint_ρ(x)·Q(x)` with operational profile `Q` and test
/// profile `Q_t`.
///
/// # Errors
///
/// Same preconditions as [`xi_imperfect`].
#[allow(clippy::too_many_arguments)]
pub fn marginal_imperfect_iid(
    pop_a: &BernoulliPopulation,
    pop_b: &BernoulliPopulation,
    profile: &UsageProfile,
    test_profile: &UsageProfile,
    suite_size: usize,
    repair_prob: f64,
    regime: TestingRegime,
) -> Result<f64, CoreError> {
    check_preconditions(pop_a, repair_prob)?;
    check_preconditions(pop_b, repair_prob)?;
    let mut total = 0.0;
    for (x, q) in profile.iter() {
        total += joint_imperfect_iid(
            pop_a,
            pop_b,
            x,
            test_profile,
            suite_size,
            repair_prob,
            regime,
        )? * q;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marginal::{MarginalAnalysis, SuiteAssignment};
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use std::sync::Arc;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn rejects_non_singleton_models() {
        let space = DemandSpace::new(2).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .fault([d(0), d(1)])
                .build()
                .unwrap(),
        );
        let pop = BernoulliPopulation::new(model, vec![0.5]).unwrap();
        let q = UsageProfile::uniform(space);
        assert!(zeta_imperfect_iid(&pop, d(0), &q, 1, 0.5).is_err());
    }

    #[test]
    fn rejects_multiple_faults_per_demand() {
        let space = DemandSpace::new(2).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .fault([d(0)])
                .fault([d(0)])
                .build()
                .unwrap(),
        );
        let pop = BernoulliPopulation::new(model, vec![0.5, 0.5]).unwrap();
        let q = UsageProfile::uniform(space);
        assert!(zeta_imperfect_iid(&pop, d(0), &q, 1, 0.5).is_err());
    }

    #[test]
    fn rejects_bad_repair_probability() {
        let pop = singleton_pop(vec![0.5, 0.5]);
        let q = UsageProfile::uniform(pop.model().space());
        assert!(zeta_imperfect_iid(&pop, d(0), &q, 1, 1.5).is_err());
        assert!(zeta_imperfect_iid(&pop, d(0), &q, 1, f64::NAN).is_err());
    }

    #[test]
    fn xi_counts_multiplicities() {
        // Suite [x0, x0, x1]: fault at x0 survives two repair attempts.
        let pop = singleton_pop(vec![0.8, 0.8]);
        let suite = TestSuite::from_demands(pop.model().space(), vec![d(0), d(0), d(1)]).unwrap();
        let xi0 = xi_imperfect(&pop, d(0), &suite, 0.5).unwrap();
        assert!((xi0 - 0.8 * 0.25).abs() < 1e-12);
        let xi1 = xi_imperfect(&pop, d(1), &suite, 0.5).unwrap();
        assert!((xi1 - 0.8 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn rho_one_recovers_perfect_testing() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let n = 2;
        let m = enumerate_iid_suites(&q, n, 64).unwrap();
        for regime in [TestingRegime::IndependentSuites, TestingRegime::SharedSuite] {
            let exact = match regime {
                TestingRegime::IndependentSuites => {
                    MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::independent(&m), &q)
                        .system_pfd()
                }
                TestingRegime::SharedSuite => {
                    MarginalAnalysis::compute(&pop, &pop, SuiteAssignment::Shared(&m), &q)
                        .system_pfd()
                }
            };
            let closed = marginal_imperfect_iid(&pop, &pop, &q, &q, n, 1.0, regime).unwrap();
            assert!(
                (exact - closed).abs() < 1e-12,
                "ρ=1 mismatch under {regime}: {exact} vs {closed}"
            );
        }
    }

    #[test]
    fn rho_zero_recovers_untested_el() {
        let pop = singleton_pop(vec![0.3, 0.6, 0.9]);
        let q = UsageProfile::uniform(pop.model().space());
        let el = crate::el::ElAnalysis::compute(&pop, &q);
        for regime in [TestingRegime::IndependentSuites, TestingRegime::SharedSuite] {
            let closed = marginal_imperfect_iid(&pop, &pop, &q, &q, 10, 0.0, regime).unwrap();
            assert!((closed - el.joint_pfd).abs() < 1e-12);
        }
    }

    #[test]
    fn shared_dominates_independent_for_all_rho() {
        let pop = singleton_pop(vec![0.2, 0.5, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        for &rho in &[0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            for n in [1usize, 4, 16] {
                let ind = marginal_imperfect_iid(
                    &pop,
                    &pop,
                    &q,
                    &q,
                    n,
                    rho,
                    TestingRegime::IndependentSuites,
                )
                .unwrap();
                let sh =
                    marginal_imperfect_iid(&pop, &pop, &q, &q, n, rho, TestingRegime::SharedSuite)
                        .unwrap();
                assert!(
                    sh + 1e-15 >= ind,
                    "shared < independent at rho={rho}, n={n}"
                );
            }
        }
    }

    #[test]
    fn penalty_shrinks_as_testing_gets_sloppier() {
        // The shared-suite penalty at fixed n is increasing in ρ.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let mut last_penalty = 0.0;
        for &rho in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let ind = marginal_imperfect_iid(
                &pop,
                &pop,
                &q,
                &q,
                4,
                rho,
                TestingRegime::IndependentSuites,
            )
            .unwrap();
            let sh = marginal_imperfect_iid(&pop, &pop, &q, &q, 4, rho, TestingRegime::SharedSuite)
                .unwrap();
            let penalty = sh - ind;
            assert!(
                penalty + 1e-15 >= last_penalty,
                "penalty fell as ρ grew to {rho}"
            );
            last_penalty = penalty;
        }
    }

    #[test]
    fn closed_form_matches_monte_carlo() {
        use diversim_sim_free::check_against_mc;
        check_against_mc();
    }

    /// Minimal in-module Monte Carlo cross-check (the full pipeline check
    /// lives in the integration tests; this keeps the module self-auditing
    /// without depending on `diversim-sim`).
    mod diversim_sim_free {
        use super::super::*;
        use diversim_universe::demand::DemandSpace;
        use diversim_universe::fault::FaultModelBuilder;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::sync::Arc;

        pub fn check_against_mc() {
            let space = DemandSpace::new(3).unwrap();
            let model = Arc::new(
                FaultModelBuilder::new(space)
                    .singleton_faults()
                    .build()
                    .unwrap(),
            );
            let pop = BernoulliPopulation::new(Arc::clone(&model), vec![0.5, 0.7, 0.9]).unwrap();
            let q = UsageProfile::from_weights(space, vec![0.5, 0.3, 0.2]).unwrap();
            let rho = 0.6;
            let n = 4usize;
            let reps = 200_000;
            let mut rng = StdRng::seed_from_u64(9);
            let mut fails = [0u64; 3];
            for _ in 0..reps {
                // Sample version, sample suite, apply per-execution repair.
                let mut present: Vec<bool> = pop
                    .propensities()
                    .iter()
                    .map(|&p| rng.gen::<f64>() < p)
                    .collect();
                for _ in 0..n {
                    let y = q.sample(&mut rng);
                    if present[y.index()] && rng.gen::<f64>() < rho {
                        present[y.index()] = false;
                    }
                }
                for (i, &alive) in present.iter().enumerate() {
                    if alive {
                        fails[i] += 1;
                    }
                }
            }
            for x in space.iter() {
                let mc = fails[x.index()] as f64 / reps as f64;
                let closed = zeta_imperfect_iid(&pop, x, &q, n, rho).unwrap();
                assert!(
                    (mc - closed).abs() < 0.005,
                    "MC {mc} vs closed form {closed} at {x}"
                );
            }
        }
    }
}
