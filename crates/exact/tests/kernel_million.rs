//! Exactness of the packed-kernel brute-force paths on a million-demand
//! space.
//!
//! The retired per-demand enumeration re-ran the debugging process once
//! per demand, which made 10⁶-demand spaces unreachable. The
//! [`diversim_exact::TestedEnsemble`] kernels debug each `(version,
//! suite)` combination once and scatter its weight over the packed
//! failure set, so the same assumption-free sums stay exact — and fast
//! enough for a debug-mode test — at 10⁶ demands. This test pins both
//! properties: agreement with the closed forms of `diversim-core` and
//! bit-identical agreement with the per-demand definitions on spot
//! demands (including the final partial block of the space).

use std::sync::Arc;

use diversim_core::difficulty::zeta;
use diversim_exact::{
    joint_on_demand_shared, joint_vector_shared, marginal_independent, zeta_brute,
    zeta_brute_vector, TestedEnsemble,
};
use diversim_testing::suite::TestSuite;
use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::demand::{DemandId, DemandSpace};
use diversim_universe::fault::FaultModelBuilder;
use diversim_universe::population::{BernoulliPopulation, Population};
use diversim_universe::profile::UsageProfile;

const N: usize = 1_000_000;

fn d(i: usize) -> DemandId {
    DemandId::new(i as u32)
}

/// 10⁶ demands, three faults: two overlapping small regions near the
/// front, one straddling the space's final (partial-block) demands.
fn world() -> (
    Arc<diversim_universe::fault::FaultModel>,
    BernoulliPopulation,
    UsageProfile,
) {
    let space = DemandSpace::new(N).unwrap();
    let model = Arc::new(
        FaultModelBuilder::new(space)
            .fault((100..105).map(d))
            .fault((103..110).map(d))
            .fault((N - 5..N).map(d))
            .build()
            .unwrap(),
    );
    let pop = BernoulliPopulation::new(Arc::clone(&model), vec![0.4, 0.25, 0.6]).unwrap();
    // Graded weights so no two demands carry the same probability mass.
    let weights: Vec<f64> = (0..N).map(|i| 1.0 + (i % 997) as f64 / 997.0).collect();
    let q = UsageProfile::from_weights(space, weights).unwrap();
    (model, pop, q)
}

/// A three-suite measure: no testing, a front-region hit, and a suite
/// covering both ends of the space.
fn measure(space: DemandSpace) -> ExplicitSuitePopulation {
    let empty = TestSuite::from_demands(space, vec![]).unwrap();
    let front = TestSuite::from_demands(space, vec![d(104)]).unwrap();
    let both = TestSuite::from_demands(space, vec![d(107), d(N - 1)]).unwrap();
    ExplicitSuitePopulation::new(vec![(empty, 0.5), (front, 0.3), (both, 0.2)]).unwrap()
}

#[test]
fn zeta_kernel_is_exact_at_a_million_demands() {
    let (model, pop, q) = world();
    let m = measure(model.space());
    let support = pop.enumerate(16).unwrap();

    let zv = zeta_brute_vector(&support, &m, &model);
    assert_eq!(zv.len(), N);

    // Spot demands: inside each region, on the overlap, in the final
    // partial block, and far outside any region.
    let spots = [100, 103, 104, 109, N - 5, N - 1, 110, N / 2];
    for i in spots {
        // Bit-identical to the retired per-demand definition.
        assert_eq!(zv[i], zeta_brute(&support, &m, &model, d(i)));
        // And equal to the closed form within rounding.
        let closed = zeta(&pop, d(i), &m);
        assert!(
            (zv[i] - closed).abs() < 1e-12,
            "zeta mismatch at {i}: kernel {} vs closed {closed}",
            zv[i]
        );
    }
    // Outside every region the post-testing difficulty is exactly zero.
    assert_eq!(zv[N / 2], 0.0);
    assert_eq!(zv[99], 0.0);

    // The usage-weighted total matches the closed-form expectation.
    let total: f64 = zv.iter().zip(q.probabilities()).map(|(z, p)| z * p).sum();
    let closed_total = q.expect(|x| zeta(&pop, x, &m));
    assert!((total - closed_total).abs() < 1e-12);
}

#[test]
fn joint_kernels_are_exact_at_a_million_demands() {
    let (model, pop, q) = world();
    let m = measure(model.space());
    let support = pop.enumerate(16).unwrap();

    let ens = TestedEnsemble::new(&support, &m, &model);
    let jv_ind = ens.joint_vector_independent(&ens);
    let jv_sh = joint_vector_shared(&support, &support, &m, &model);

    let zv = zeta_brute_vector(&support, &m, &model);
    for i in [100, 104, 107, N - 5, N - 1, N / 2] {
        // Independent suites factorise: joint(x) = ζ(x)² (equation 16).
        assert!(
            (jv_ind[i] - zv[i] * zv[i]).abs() < 1e-15,
            "eq16 violated at {i}"
        );
        // Shared-suite joint matches its per-demand definition bit for bit.
        assert_eq!(
            jv_sh[i],
            joint_on_demand_shared(&support, &support, &m, &model, d(i))
        );
        // Shared testing can only increase the joint failure probability.
        assert!(jv_sh[i] + 1e-15 >= jv_ind[i]);
    }

    // Marginal entry point stays exact: equals the manual usage-weighted
    // sum of the joint vector.
    let mi = marginal_independent(&support, &support, &m, &m, &model, &q);
    let manual: f64 = jv_ind
        .iter()
        .zip(q.probabilities())
        .map(|(j, p)| j * p)
        .sum();
    assert_eq!(mi, manual);
}
