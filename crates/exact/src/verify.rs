//! Theorem checker: asserts every §3 identity of the paper on a concrete
//! universe by comparing `diversim-core`'s formula path against the
//! brute-force process path of [`crate::brute`].

use diversim_core::difficulty::{zeta, TestedDifficulty};
use diversim_core::error::CoreError;
use diversim_core::marginal::{MarginalAnalysis, SuiteAssignment};
use diversim_core::structure::{self, Structure};
use diversim_core::testing_effect::TestingRegime;
use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

use crate::brute;

/// One verified identity: a named left/right-hand-side comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentityCheck {
    /// Which paper result this checks (e.g. `"eq16"`).
    pub name: &'static str,
    /// Value from the core formula path.
    pub formula: f64,
    /// Value from the brute-force process path.
    pub brute: f64,
}

impl IdentityCheck {
    /// Absolute discrepancy between the two computation paths.
    pub fn abs_error(&self) -> f64 {
        (self.formula - self.brute).abs()
    }

    /// Whether the identity holds within `tol`.
    pub fn holds(&self, tol: f64) -> bool {
        self.abs_error() <= tol
    }
}

/// The result of verifying a universe: every identity with both values.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoremReport {
    /// All performed checks.
    pub checks: Vec<IdentityCheck>,
}

impl TheoremReport {
    /// Largest discrepancy across all checks.
    pub fn max_error(&self) -> f64 {
        self.checks
            .iter()
            .map(IdentityCheck::abs_error)
            .fold(0.0, f64::max)
    }

    /// Whether every identity holds within `tol`.
    pub fn all_hold(&self, tol: f64) -> bool {
        self.checks.iter().all(|c| c.holds(tol))
    }

    /// The check with the given name, if present.
    pub fn check(&self, name: &str) -> Option<&IdentityCheck> {
        self.checks.iter().find(|c| c.name == name)
    }
}

impl std::fmt::Display for TheoremReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.checks {
            writeln!(
                f,
                "{:<22} formula={:.12} brute={:.12} err={:.3e}",
                c.name,
                c.formula,
                c.brute,
                c.abs_error()
            )?;
        }
        Ok(())
    }
}

/// Verifies the §3 identities for a (possibly forced-diversity) pair of
/// populations against one suite measure and a usage profile:
///
/// * `eq14` — `ζ(x)` from the closed form vs. the brute process, summed
///   over demands;
/// * `eq16/17` — independent suites: joint = `ζ_A(x)·ζ_B(x)` per demand;
/// * `eq20/21` — shared suite: joint = product + variance/covariance
///   decomposition per demand;
/// * `eq22/24` — marginal, independent suites;
/// * `eq23/25` — marginal, shared suite;
/// * `theta_ge_zeta` — `θ(x) ≥ ζ(x)` (reported as the most negative
///   margin, expected ≥ 0 up to rounding: `formula` holds the minimum
///   of `θ − ζ`, `brute` holds `0.0`).
///
/// `support_a`/`support_b` must enumerate the same measures the
/// populations represent (typically via
/// [`diversim_universe::Population::enumerate`]).
pub fn verify_pair(
    pop_a: &dyn TestedDifficulty,
    pop_b: &dyn TestedDifficulty,
    support_a: &[(Version, f64)],
    support_b: &[(Version, f64)],
    measure: &ExplicitSuitePopulation,
    profile: &UsageProfile,
) -> TheoremReport {
    let model = pop_a.model();
    let mut checks = Vec::new();

    // The brute sides below all run through the packed [`TestedEnsemble`]
    // vector kernels: each `(version, suite)` combination is debugged
    // once and its weight scattered over its failure set, instead of
    // re-running the debugging process per demand. The scatter order is
    // arranged so every usage-weighted sum is bit-identical to the
    // retired per-demand enumeration (zero terms are IEEE no-ops on
    // these non-negative accumulations).
    let ens_a = brute::TestedEnsemble::new(support_a, measure, model);
    let ens_b = brute::TestedEnsemble::new(support_b, measure, model);

    // eq14: ζ per demand, aggregated as a usage-weighted sum.
    let zeta_formula = profile.expect(|x| zeta(pop_a, x, measure));
    let zeta_brute = brute::weighted_total(&ens_a.zeta_vector(), profile);
    checks.push(IdentityCheck {
        name: "eq14",
        formula: zeta_formula,
        brute: zeta_brute,
    });

    // eq16/17: independent suites, per-demand, aggregated as the max
    // pointwise error folded into one summed comparison.
    let indep_formula = profile.expect(|x| zeta(pop_a, x, measure) * zeta(pop_b, x, measure));
    let indep_brute = brute::weighted_total(&ens_a.joint_vector_independent(&ens_b), profile);
    checks.push(IdentityCheck {
        name: "eq16/17-per-demand",
        formula: indep_formula,
        brute: indep_brute,
    });

    // eq20/21: shared suite, per-demand decomposition.
    let shared_formula = profile.expect(|x| {
        diversim_core::testing_effect::joint_shared_suite(pop_a, pop_b, measure, x).total()
    });
    let shared_brute = brute::weighted_total(
        &brute::joint_vector_shared(support_a, support_b, measure, model),
        profile,
    );
    checks.push(IdentityCheck {
        name: "eq20/21-per-demand",
        formula: shared_formula,
        brute: shared_brute,
    });

    // eq22/24: marginal under independent suites.
    let m_ind =
        MarginalAnalysis::compute(pop_a, pop_b, SuiteAssignment::independent(measure), profile);
    let m_ind_brute =
        brute::marginal_independent(support_a, support_b, measure, measure, model, profile);
    checks.push(IdentityCheck {
        name: "eq22/24-marginal",
        formula: m_ind.system_pfd(),
        brute: m_ind_brute,
    });

    // eq23/25: marginal under a shared suite.
    let m_sh = MarginalAnalysis::compute(pop_a, pop_b, SuiteAssignment::Shared(measure), profile);
    let m_sh_brute = brute::marginal_shared(support_a, support_b, measure, model, profile);
    checks.push(IdentityCheck {
        name: "eq23/25-marginal",
        formula: m_sh.system_pfd(),
        brute: m_sh_brute,
    });

    // θ(x) ≥ ζ(x): report the minimum margin (should be ≥ -ε).
    let min_margin = model
        .space()
        .iter()
        .map(|x| pop_a.theta(x) - zeta(pop_a, x, measure))
        .fold(f64::INFINITY, f64::min);
    checks.push(IdentityCheck {
        name: "theta_ge_zeta(min-margin)",
        formula: min_margin.min(0.0),
        brute: 0.0,
    });

    TheoremReport { checks }
}

/// Verifies the structure-function generalisation for an arbitrary fault
/// tree over N component populations, against one suite measure and a
/// usage profile:
///
/// * `structure-independent-marginal` — the gate-composed formula path
///   ([`structure::structure_pfd`] under independent suites) vs. the
///   assumption-free cross-product enumeration
///   ([`brute::StructureEnsemble`]);
/// * `structure-shared-marginal` — the shared-suite mixed-moment path vs.
///   [`brute::structure_joint_vector_shared`];
/// * `gate-coupling(min-margin)` — for **repeat-free** trees only: the
///   most negative per-gate coupling `E_Ξ[Π…] − Π E_Ξ[…]` across all
///   gates (clamped at 0; expected ≥ 0 up to rounding, the eq-20
///   generalisation). Omitted for trees with repeated components.
///
/// `supports[i]` must enumerate the same measure `pops[i]` represents.
///
/// # Errors
///
/// Propagates the structure validation errors of the core and brute
/// paths ([`CoreError::InvalidStructure`], [`CoreError::EmptyInput`],
/// [`CoreError::ModelMismatch`]).
pub fn verify_structure(
    structure: &Structure,
    pops: &[&dyn TestedDifficulty],
    supports: &[&brute::Support],
    measure: &ExplicitSuitePopulation,
    profile: &UsageProfile,
) -> Result<TheoremReport, CoreError> {
    if pops.len() != supports.len() {
        return Err(CoreError::ModelMismatch {
            reason: "one support per population is required",
        });
    }
    let model = pops
        .first()
        .ok_or(CoreError::EmptyInput {
            what: "populations",
        })?
        .model();
    let mut checks = Vec::new();

    let ind_formula = structure::structure_pfd(
        structure,
        pops,
        measure,
        profile,
        TestingRegime::IndependentSuites,
    )?;
    let ens = brute::StructureEnsemble::new(structure.clone(), supports, measure, model)?;
    checks.push(IdentityCheck {
        name: "structure-independent-marginal",
        formula: ind_formula,
        brute: ens.marginal_independent(profile),
    });

    let sh_formula = structure::structure_pfd(
        structure,
        pops,
        measure,
        profile,
        TestingRegime::SharedSuite,
    )?;
    let sh_brute = brute::structure_marginal_shared(structure, supports, measure, model, profile)?;
    checks.push(IdentityCheck {
        name: "structure-shared-marginal",
        formula: sh_formula,
        brute: sh_brute,
    });

    if !structure.has_repeated_components() {
        let moments = structure::gate_moments(structure, pops, measure, profile)?;
        let min_margin = moments
            .iter()
            .map(structure::GateMoment::coupling)
            .fold(f64::INFINITY, f64::min);
        checks.push(IdentityCheck {
            name: "gate-coupling(min-margin)",
            formula: min_margin.min(0.0),
            brute: 0.0,
        });
    }

    Ok(TheoremReport { checks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn identities_hold_on_singleton_universe() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 2, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let report = verify_pair(&pop, &pop, &support, &support, &m, &q);
        assert!(report.all_hold(1e-12), "violations:\n{report}");
        assert!(report.check("eq14").is_some());
        assert_eq!(report.checks.len(), 6);
    }

    #[test]
    fn identities_hold_with_overlapping_regions() {
        // General fault regions (cascades active): formulas must still
        // agree with the mechanistic process.
        use diversim_universe::demand::DemandId;
        let space = DemandSpace::new(4).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .fault([DemandId::new(0), DemandId::new(1)])
                .fault([DemandId::new(1), DemandId::new(2)])
                .fault([DemandId::new(3)])
                .build()
                .unwrap(),
        );
        let pop = BernoulliPopulation::new(model.clone(), vec![0.5, 0.3, 0.7]).unwrap();
        let q = UsageProfile::from_weights(space, vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        let report = verify_pair(&pop, &pop, &support, &support, &m, &q);
        assert!(report.all_hold(1e-12), "violations:\n{report}");
    }

    #[test]
    fn identities_hold_for_forced_diversity() {
        let space = DemandSpace::new(3).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        let a = BernoulliPopulation::new(model.clone(), vec![0.6, 0.1, 0.3]).unwrap();
        let b = BernoulliPopulation::new(model.clone(), vec![0.1, 0.6, 0.2]).unwrap();
        let q = UsageProfile::uniform(space);
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let sa = a.enumerate(16).unwrap();
        let sb = b.enumerate(16).unwrap();
        let report = verify_pair(&a, &b, &sa, &sb, &m, &q);
        assert!(report.all_hold(1e-12), "violations:\n{report}");
    }

    #[test]
    fn adaptive_joint_matches_brute_force() {
        // core::testing_effect::joint_adaptive (covariance decomposition
        // over the shared suite) vs the assumption-free merged-suite
        // enumeration, for every demand and every shared/private split of
        // a 3-draw budget — forced diversity included.
        let space = DemandSpace::new(3).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        let a = BernoulliPopulation::new(model.clone(), vec![0.6, 0.2, 0.4]).unwrap();
        let b = BernoulliPopulation::new(model.clone(), vec![0.1, 0.7, 0.3]).unwrap();
        let q = UsageProfile::from_weights(space, vec![0.5, 0.3, 0.2]).unwrap();
        let sa = a.enumerate(16).unwrap();
        let sb = b.enumerate(16).unwrap();
        for s in 0..=3usize {
            let shared = enumerate_iid_suites(&q, s, 1 << 8).unwrap();
            let private = enumerate_iid_suites(&q, 3 - s, 1 << 8).unwrap();
            for x in space.iter() {
                let formula = diversim_core::testing_effect::joint_adaptive(
                    &a, &b, &shared, &private, &private, x,
                )
                .total();
                let brute_val = brute::joint_on_demand_adaptive(
                    &sa, &sb, &shared, &private, &private, &model, x,
                );
                assert!(
                    (formula - brute_val).abs() < 1e-12,
                    "adaptive joint mismatch at {x} with {s} shared draws: \
                     formula={formula} brute={brute_val}"
                );
            }
            let marginal_formula = q.expect(|x| {
                diversim_core::testing_effect::joint_adaptive(
                    &a, &b, &shared, &private, &private, x,
                )
                .total()
            });
            let marginal_brute =
                brute::marginal_adaptive(&sa, &sb, &shared, &private, &private, &model, &q);
            assert!((marginal_formula - marginal_brute).abs() < 1e-12);
        }
    }

    #[test]
    fn structure_identities_hold_for_canonical_trees() {
        // The acceptance fixtures: series, parallel, 2-of-3 and the
        // bridge, each verified formula-vs-brute in both regimes. The
        // brute side is a full cross-product over component ensembles, so
        // the worlds are kept tiny (the bridge visits |ensemble|⁵ tuples).
        let pop = singleton_pop(vec![0.3, 0.7]);
        let q = UsageProfile::from_weights(pop.model().space(), vec![0.6, 0.4]).unwrap();
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        for (n, s) in [
            (3, Structure::series(3)),
            (3, Structure::one_out_of_n(3)),
            (3, Structure::k_of_n(2, 3)),
            (5, Structure::bridge()),
        ] {
            let pops: Vec<&dyn TestedDifficulty> = vec![&pop; n];
            let supports: Vec<&brute::Support> = vec![&support; n];
            let report = verify_structure(&s, &pops, &supports, &m, &q).unwrap();
            assert!(report.all_hold(1e-12), "violations for {s:?}:\n{report}");
            let expected_checks = if s.has_repeated_components() { 2 } else { 3 };
            assert_eq!(report.checks.len(), expected_checks);
        }
    }

    #[test]
    fn structure_identities_hold_for_heterogeneous_components() {
        // Different populations per component exercise the non-exchangeable
        // case (LM-style) through a nested tree.
        let space = DemandSpace::new(3).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        let a = BernoulliPopulation::new(model.clone(), vec![0.6, 0.1, 0.3]).unwrap();
        let b = BernoulliPopulation::new(model.clone(), vec![0.1, 0.6, 0.2]).unwrap();
        let c = BernoulliPopulation::new(model.clone(), vec![0.4, 0.4, 0.4]).unwrap();
        let q = UsageProfile::from_weights(space, vec![0.5, 0.3, 0.2]).unwrap();
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let sa = a.enumerate(16).unwrap();
        let sb = b.enumerate(16).unwrap();
        let sc = c.enumerate(16).unwrap();
        let tree = Structure::or(vec![
            Structure::and(vec![Structure::component(0), Structure::component(1)]),
            Structure::component(2),
        ]);
        let pops: Vec<&dyn TestedDifficulty> = vec![&a, &b, &c];
        let supports: Vec<&brute::Support> = vec![&sa, &sb, &sc];
        let report = verify_structure(&tree, &pops, &supports, &m, &q).unwrap();
        assert!(report.all_hold(1e-12), "violations:\n{report}");
        assert!(report.check("gate-coupling(min-margin)").is_some());
    }

    #[test]
    fn verify_structure_rejects_mismatched_inputs() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let pops: Vec<&dyn TestedDifficulty> = vec![&pop, &pop];
        let supports: Vec<&brute::Support> = vec![&support];
        assert!(matches!(
            verify_structure(&Structure::one_out_of_n(2), &pops, &supports, &m, &q),
            Err(CoreError::ModelMismatch { .. })
        ));
        assert!(matches!(
            verify_structure(&Structure::one_out_of_n(2), &[], &[], &m, &q),
            Err(CoreError::EmptyInput { .. })
        ));
    }

    #[test]
    fn report_display_lists_all_checks() {
        let pop = singleton_pop(vec![0.5]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 8).unwrap();
        let support = pop.enumerate(4).unwrap();
        let report = verify_pair(&pop, &pop, &support, &support, &m, &q);
        let text = report.to_string();
        assert!(text.contains("eq14"));
        assert!(text.contains("eq23/25-marginal"));
        assert!(report.max_error() < 1e-12);
    }

    #[test]
    fn broken_identity_is_detected() {
        // Sanity check of the checker itself: corrupt one support weight
        // so the brute path disagrees with the closed form.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let mut support = pop.enumerate(16).unwrap();
        // Inflate the weight of a *faulty* version (the correct version has
        // score 0 everywhere, so corrupting it would go unseen).
        let faulty = support
            .iter()
            .position(|(v, _)| !v.is_correct())
            .expect("support contains faulty versions");
        support[faulty].1 += 0.25; // no longer the Bernoulli measure
        let report = verify_pair(&pop, &pop, &support, &support, &m, &q);
        assert!(!report.all_hold(1e-6), "corruption went unnoticed");
    }
}
