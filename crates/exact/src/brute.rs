//! Brute-force expectations over the full joint process.
//!
//! `diversim-core` computes the paper's quantities through its *formulas*
//! (products of ζ's, variance/covariance decompositions). This module
//! computes the same quantities the slow, assumption-free way: enumerate
//! every `(version, suite)` combination with its probability, run the
//! *mechanistic* debugging process ([`diversim_testing::perfect_debug`]),
//! and sum the score products. Agreement between the two paths is the
//! strongest internal validation available for a theory reproduction.

use diversim_testing::process::perfect_debug;
use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::demand::DemandId;
use diversim_universe::fault::FaultModel;
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

/// A population support: versions with selection probabilities, as
/// produced by [`diversim_universe::Population::enumerate`].
pub type Support = [(Version, f64)];

/// The tested scores of every `(version, suite)` combination on demand
/// `x`, each weighted by its joint probability `S(π)·M(t)`, computed once
/// through the mechanistic debugging process.
fn weighted_scores(
    support: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(support.len() * measure.len());
    for (v, p) in support {
        for (t, q) in measure.iter() {
            out.push(perfect_debug(v, t, model).score(model, x) * p * q);
        }
    }
    out
}

/// Brute-force `P(both tested versions fail on x)` when the two versions
/// are debugged on **independently drawn** suites: the full quadruple sum
/// `Σ_{π₁} Σ_{t₁} Σ_{π₂} Σ_{t₂} υ(π₁,x,t₁)·υ(π₂,x,t₂)·S_A·M_A·S_B·M_B`
/// of equation (15), evaluated through the mechanistic debugging process.
/// (Each `(π, t)` score is debugged once and memoised; the quadruple sum
/// itself is evaluated in full.)
pub fn joint_on_demand_independent(
    support_a: &Support,
    support_b: &Support,
    measure_a: &ExplicitSuitePopulation,
    measure_b: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> f64 {
    let scores_a = weighted_scores(support_a, measure_a, model, x);
    let scores_b = weighted_scores(support_b, measure_b, model, x);
    let mut total = 0.0;
    for &wa in &scores_a {
        if wa == 0.0 {
            continue;
        }
        for &wb in &scores_b {
            total += wa * wb;
        }
    }
    total
}

/// Brute-force `P(both tested versions fail on x)` when both versions are
/// debugged on the **same** realised suite: `Σ_t M(t) · Σ_{π₁} Σ_{π₂}
/// υ(π₁,x,t)·υ(π₂,x,t)·S_A(π₁)·S_B(π₂)`.
pub fn joint_on_demand_shared(
    support_a: &Support,
    support_b: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> f64 {
    let mut total = 0.0;
    for (t, qt) in measure.iter() {
        let fail_a: f64 = support_a
            .iter()
            .map(|(v, p)| perfect_debug(v, t, model).score(model, x) * p)
            .sum();
        if fail_a == 0.0 {
            continue;
        }
        let fail_b: f64 = support_b
            .iter()
            .map(|(v, p)| perfect_debug(v, t, model).score(model, x) * p)
            .sum();
        total += qt * fail_a * fail_b;
    }
    total
}

/// Brute-force marginal `P(both tested versions fail on X)` for
/// independently drawn suites: the usage-weighted sum of
/// [`joint_on_demand_independent`] (equation (22)/(24)).
pub fn marginal_independent(
    support_a: &Support,
    support_b: &Support,
    measure_a: &ExplicitSuitePopulation,
    measure_b: &ExplicitSuitePopulation,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    profile.expect(|x| {
        joint_on_demand_independent(support_a, support_b, measure_a, measure_b, model, x)
    })
}

/// Brute-force marginal `P(both tested versions fail on X)` for a shared
/// suite (equation (23)/(25)).
pub fn marginal_shared(
    support_a: &Support,
    support_b: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    profile.expect(|x| joint_on_demand_shared(support_a, support_b, measure, model, x))
}

/// Brute-force post-testing difficulty `ζ(x) = Σ_π Σ_t υ(π,x,t)·S(π)·M(t)`
/// (equation (14)), via the mechanistic process.
pub fn zeta_brute(
    support: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> f64 {
    let mut total = 0.0;
    for (v, p) in support {
        for (t, q) in measure.iter() {
            total += perfect_debug(v, t, model).score(model, x) * p * q;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn zeta_brute_matches_hand_value() {
        // p = (0.4, 0.8), one uniform draw: ζ(x0) = 0.2 (see core tests).
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let z = zeta_brute(&support, &m, pop.model(), d(0));
        assert!((z - 0.2).abs() < 1e-12);
    }

    #[test]
    fn independent_joint_factorises() {
        // Eq (16): the quadruple sum equals ζ(x)² — verified numerically.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let joint = joint_on_demand_independent(&support, &support, &m, &m, pop.model(), d(0));
        let z = zeta_brute(&support, &m, pop.model(), d(0));
        assert!((joint - z * z).abs() < 1e-12);
    }

    #[test]
    fn shared_joint_exceeds_independent() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let shared = joint_on_demand_shared(&support, &support, &m, pop.model(), d(0));
        let indep = joint_on_demand_independent(&support, &support, &m, &m, pop.model(), d(0));
        // Hand values from the core tests: 0.08 vs 0.04.
        assert!((shared - 0.08).abs() < 1e-12);
        assert!((indep - 0.04).abs() < 1e-12);
    }

    #[test]
    fn marginals_integrate_demand_joints() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let mi = marginal_independent(&support, &support, &m, &m, pop.model(), &q);
        let ms = marginal_shared(&support, &support, &m, pop.model(), &q);
        assert!((mi - 0.10).abs() < 1e-12);
        assert!((ms - 0.20).abs() < 1e-12);
    }
}
