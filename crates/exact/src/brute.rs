//! Brute-force expectations over the full joint process.
//!
//! `diversim-core` computes the paper's quantities through its *formulas*
//! (products of ζ's, variance/covariance decompositions). This module
//! computes the same quantities the slow, assumption-free way: enumerate
//! every `(version, suite)` combination with its probability, run the
//! *mechanistic* debugging process ([`diversim_testing::perfect_debug`]),
//! and sum the score products. Agreement between the two paths is the
//! strongest internal validation available for a theory reproduction.

use diversim_core::error::CoreError;
use diversim_core::structure::Structure;
use diversim_testing::process::perfect_debug;
use diversim_testing::suite::TestSuite;
use diversim_testing::suite_population::ExplicitSuitePopulation;
use diversim_universe::bitset::BitSet;
use diversim_universe::demand::DemandId;
use diversim_universe::fault::FaultModel;
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

/// A population support: versions with selection probabilities, as
/// produced by [`diversim_universe::Population::enumerate`].
pub type Support = [(Version, f64)];

/// The mechanistically debugged ensemble in kernel form: every
/// `(version, suite)` combination's joint probability `S(π)·M(t)`
/// together with the failure set of the debugged version, computed once
/// through [`perfect_debug`] instead of once per demand.
///
/// Combinations are stored in (support-outer, measure-inner) order — the
/// enumeration order of the quadruple sums — so any per-demand quantity
/// accumulated over the ensemble adds its terms in exactly the order the
/// per-demand definitions do, and agrees with them bit-for-bit. (The
/// stored weight equals the old per-demand `score·p·q` term on failing
/// demands because the score factor is exactly `1.0`.)
#[derive(Debug, Clone)]
pub struct TestedEnsemble {
    /// Demand-space size the failure sets are defined over.
    capacity: usize,
    /// `(S(π)·M(t), failure set after debugging)` per combination.
    combos: Vec<(f64, BitSet)>,
}

impl TestedEnsemble {
    /// Debugs every `(version, suite)` combination of a support × measure
    /// pair once and records its weight and post-debug failure set.
    pub fn new(support: &Support, measure: &ExplicitSuitePopulation, model: &FaultModel) -> Self {
        let mut combos = Vec::with_capacity(support.len() * measure.len());
        for (v, p) in support {
            for (t, q) in measure.iter() {
                combos.push((p * q, perfect_debug(v, t, model).failure_set(model)));
            }
        }
        TestedEnsemble {
            capacity: model.space().len(),
            combos,
        }
    }

    /// Number of `(version, suite)` combinations.
    pub fn len(&self) -> usize {
        self.combos.len()
    }

    /// Returns `true` if the ensemble holds no combinations.
    pub fn is_empty(&self) -> bool {
        self.combos.is_empty()
    }

    /// The combinations in enumeration order.
    pub fn combos(&self) -> &[(f64, BitSet)] {
        &self.combos
    }

    /// `ζ` on every demand: each combination scatters its weight over its
    /// failure set (equation (14) with the demand loop hoisted out).
    /// Agrees with per-demand [`zeta_brute`] bit-for-bit.
    pub fn zeta_vector(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.capacity];
        for (w, fs) in &self.combos {
            for x in fs.iter() {
                out[x] += w;
            }
        }
        out
    }

    /// `P(both fail on x)` for every demand under independently drawn
    /// suites: for each combination pair, the joint weight is scattered
    /// over the failure-set intersection as a masked block walk (equation
    /// (15) with the demand loop hoisted out). Agrees with per-demand
    /// [`joint_on_demand_independent`] bit-for-bit.
    pub fn joint_vector_independent(&self, other: &TestedEnsemble) -> Vec<f64> {
        let mut out = vec![0.0; self.capacity];
        for (wa, fa) in &self.combos {
            for (wb, fb) in &other.combos {
                let w = wa * wb;
                for (bi, (&a, &b)) in fa.blocks().iter().zip(fb.blocks()).enumerate() {
                    let mut bits = a & b;
                    let base = bi * 64;
                    while bits != 0 {
                        out[base + bits.trailing_zeros() as usize] += w;
                        bits &= bits - 1;
                    }
                }
            }
        }
        out
    }
}

/// A structured system's mechanistically debugged ensemble: one
/// [`TestedEnsemble`] per component (each component's versions debugged on
/// its **own** independently drawn suites from the measure) composed
/// through a [`Structure`]'s failure-set algebra by *full cross-product
/// enumeration* — no factorisation assumptions, exact under repeated
/// components.
///
/// This extends [`TestedEnsemble`] from the flat pair to arbitrary trees:
/// for the `Structure::one_out_of_n(2)` case,
/// [`StructureEnsemble::joint_vector_independent`] reproduces
/// [`TestedEnsemble::joint_vector_independent`] bit-for-bit (same
/// lexicographic combination order, same intersection sets).
///
/// Enumeration cost is the *product* of the component ensemble sizes —
/// callers are expected to use small supports and suite measures.
#[derive(Debug, Clone)]
pub struct StructureEnsemble {
    structure: Structure,
    components: Vec<TestedEnsemble>,
    capacity: usize,
}

impl StructureEnsemble {
    /// Debugs each component's support × measure cross-product once
    /// (component `i`'s versions drawn from `supports[i]`).
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyInput`] if `supports` is empty;
    /// [`CoreError::InvalidStructure`] if the tree references a component
    /// index `≥ supports.len()` or is malformed.
    pub fn new(
        structure: Structure,
        supports: &[&Support],
        measure: &ExplicitSuitePopulation,
        model: &FaultModel,
    ) -> Result<Self, CoreError> {
        if supports.is_empty() {
            return Err(CoreError::EmptyInput { what: "supports" });
        }
        structure.validate(supports.len())?;
        let components = supports
            .iter()
            .map(|s| TestedEnsemble::new(s, measure, model))
            .collect();
        Ok(StructureEnsemble {
            structure,
            components,
            capacity: model.space().len(),
        })
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Total number of joint combinations the independent enumeration
    /// visits (the product of the component ensemble sizes).
    pub fn joint_combinations(&self) -> usize {
        self.components
            .iter()
            .map(TestedEnsemble::len)
            .product::<usize>()
    }

    /// `P(system fails on x)` for every demand when every component is
    /// debugged on its **own** independently drawn suite: the full
    /// cross-product over all components' `(version, suite)` combinations,
    /// scattering each joint weight `Π_i S_i(π_i)·M(t_i)` over the
    /// structure's failure set of the debugged tuple.
    pub fn joint_vector_independent(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.capacity];
        let mut sets: Vec<BitSet> = Vec::with_capacity(self.components.len());
        self.recurse_independent(0, 1.0, &mut sets, &mut out);
        out
    }

    fn recurse_independent(
        &self,
        idx: usize,
        weight: f64,
        sets: &mut Vec<BitSet>,
        out: &mut [f64],
    ) {
        if idx == self.components.len() {
            let fs = self
                .structure
                .failure_set(sets)
                .expect("structure validated at construction");
            for x in fs.iter() {
                out[x] += weight;
            }
            return;
        }
        for (w, fs) in self.components[idx].combos() {
            sets.push(fs.clone());
            self.recurse_independent(idx + 1, weight * w, sets, out);
            sets.pop();
        }
    }

    /// Brute-force marginal `P(system fails on X)` under independent
    /// suites: the usage-weighted sum of [`joint_vector_independent`]
    /// (the structure generalisation of [`marginal_independent`]).
    ///
    /// [`joint_vector_independent`]: StructureEnsemble::joint_vector_independent
    pub fn marginal_independent(&self, profile: &UsageProfile) -> f64 {
        weighted_total(&self.joint_vector_independent(), profile)
    }
}

/// `P(system fails on x)` for every demand when **all** components are
/// debugged on one shared suite: per realised suite `(t, M(t))`, the full
/// cross-product over all components' version supports, each tuple
/// mechanistically debugged on `t` and its joint weight `M(t)·Π_i S_i(π_i)`
/// scattered over the structure's failure set — the structure
/// generalisation of [`joint_vector_shared`], exact under repeated
/// components.
///
/// # Errors
///
/// Same validation as [`StructureEnsemble::new`].
pub fn structure_joint_vector_shared(
    structure: &Structure,
    supports: &[&Support],
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
) -> Result<Vec<f64>, CoreError> {
    if supports.is_empty() {
        return Err(CoreError::EmptyInput { what: "supports" });
    }
    structure.validate(supports.len())?;
    let n = model.space().len();
    let mut out = vec![0.0; n];
    for (t, qt) in measure.iter() {
        // Debug each component's support on the shared suite once.
        let debugged: Vec<Vec<(f64, BitSet)>> = supports
            .iter()
            .map(|support| {
                support
                    .iter()
                    .map(|(v, p)| (*p, perfect_debug(v, t, model).failure_set(model)))
                    .collect()
            })
            .collect();
        let mut sets: Vec<BitSet> = Vec::with_capacity(supports.len());
        recurse_shared(structure, &debugged, 0, qt, &mut sets, &mut out);
    }
    Ok(out)
}

fn recurse_shared(
    structure: &Structure,
    debugged: &[Vec<(f64, BitSet)>],
    idx: usize,
    weight: f64,
    sets: &mut Vec<BitSet>,
    out: &mut [f64],
) {
    if idx == debugged.len() {
        let fs = structure
            .failure_set(sets)
            .expect("structure validated by caller");
        for x in fs.iter() {
            out[x] += weight;
        }
        return;
    }
    for (p, fs) in &debugged[idx] {
        sets.push(fs.clone());
        recurse_shared(structure, debugged, idx + 1, weight * p, sets, out);
        sets.pop();
    }
}

/// Brute-force marginal `P(system fails on X)` under a shared suite: the
/// usage-weighted sum of [`structure_joint_vector_shared`] (the structure
/// generalisation of [`marginal_shared`]).
pub fn structure_marginal_shared(
    structure: &Structure,
    supports: &[&Support],
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    profile: &UsageProfile,
) -> Result<f64, CoreError> {
    Ok(weighted_total(
        &structure_joint_vector_shared(structure, supports, measure, model)?,
        profile,
    ))
}

/// The tested scores of every `(version, suite)` combination on demand
/// `x`, each weighted by its joint probability `S(π)·M(t)`, read off a
/// precomputed [`TestedEnsemble`].
fn weighted_scores(ensemble: &TestedEnsemble, x: DemandId) -> Vec<f64> {
    ensemble
        .combos()
        .iter()
        .map(|(w, fs)| if fs.contains(x.index()) { *w } else { 0.0 })
        .collect()
}

/// Brute-force `P(both tested versions fail on x)` when the two versions
/// are debugged on **independently drawn** suites: the full quadruple sum
/// `Σ_{π₁} Σ_{t₁} Σ_{π₂} Σ_{t₂} υ(π₁,x,t₁)·υ(π₂,x,t₂)·S_A·M_A·S_B·M_B`
/// of equation (15), evaluated through the mechanistic debugging process.
/// (Each `(π, t)` combination is debugged once and memoised as a
/// [`TestedEnsemble`]; the quadruple sum itself is evaluated in full.)
pub fn joint_on_demand_independent(
    support_a: &Support,
    support_b: &Support,
    measure_a: &ExplicitSuitePopulation,
    measure_b: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> f64 {
    let ens_a = TestedEnsemble::new(support_a, measure_a, model);
    let ens_b = TestedEnsemble::new(support_b, measure_b, model);
    let scores_a = weighted_scores(&ens_a, x);
    let scores_b = weighted_scores(&ens_b, x);
    let mut total = 0.0;
    for &wa in &scores_a {
        if wa == 0.0 {
            continue;
        }
        for &wb in &scores_b {
            total += wa * wb;
        }
    }
    total
}

/// Brute-force `P(both tested versions fail on x)` when both versions are
/// debugged on the **same** realised suite: `Σ_t M(t) · Σ_{π₁} Σ_{π₂}
/// υ(π₁,x,t)·υ(π₂,x,t)·S_A(π₁)·S_B(π₂)`.
pub fn joint_on_demand_shared(
    support_a: &Support,
    support_b: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> f64 {
    let mut total = 0.0;
    for (t, qt) in measure.iter() {
        let fail_a: f64 = support_a
            .iter()
            .map(|(v, p)| perfect_debug(v, t, model).score(model, x) * p)
            .sum();
        if fail_a == 0.0 {
            continue;
        }
        let fail_b: f64 = support_b
            .iter()
            .map(|(v, p)| perfect_debug(v, t, model).score(model, x) * p)
            .sum();
        total += qt * fail_a * fail_b;
    }
    total
}

/// `P(both fail on x)` for every demand under a **shared** suite: per
/// realised suite, each support's post-debug failure mass is scattered
/// into a dense vector (support order per demand), then the product is
/// accumulated suite-by-suite — the demand loop of
/// [`joint_on_demand_shared`] hoisted out, agreeing with it bit-for-bit
/// while debugging each `(π, t)` combination once instead of once per
/// demand.
pub fn joint_vector_shared(
    support_a: &Support,
    support_b: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
) -> Vec<f64> {
    let n = model.space().len();
    let mut out = vec![0.0; n];
    let mut fail_a = vec![0.0; n];
    let mut fail_b = vec![0.0; n];
    for (t, qt) in measure.iter() {
        fail_a.fill(0.0);
        fail_b.fill(0.0);
        for (v, p) in support_a {
            for x in perfect_debug(v, t, model).failure_set(model).iter() {
                fail_a[x] += p;
            }
        }
        for (v, p) in support_b {
            for x in perfect_debug(v, t, model).failure_set(model).iter() {
                fail_b[x] += p;
            }
        }
        for ((acc, &fa), &fb) in out.iter_mut().zip(&fail_a).zip(&fail_b) {
            *acc += qt * fa * fb;
        }
    }
    out
}

/// Brute-force `P(both tested versions fail on x)` under an **adaptive
/// allocation**: both versions are debugged on one shared suite plus an
/// independently drawn private suite each —
///
/// ```text
/// Σ_{t_s} M_S(t_s) · g_A(t_s) · g_B(t_s),
///     g_V(t_s) = Σ_{t_v} M_V(t_v) Σ_π S_V(π) · υ(π, x, t_s ∪ t_v)
/// ```
///
/// evaluated through the mechanistic debugging process on the merged
/// suite. The reference `diversim-core` path is
/// `testing_effect::joint_adaptive`.
pub fn joint_on_demand_adaptive(
    support_a: &Support,
    support_b: &Support,
    shared: &ExplicitSuitePopulation,
    private_a: &ExplicitSuitePopulation,
    private_b: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> f64 {
    let conditional =
        |support: &Support, private: &ExplicitSuitePopulation, ts: &TestSuite| -> f64 {
            private
                .iter()
                .map(|(tv, q)| {
                    let merged = ts.merged(tv);
                    let fail: f64 = support
                        .iter()
                        .map(|(v, p)| perfect_debug(v, &merged, model).score(model, x) * p)
                        .sum();
                    fail * q
                })
                .sum()
        };
    let mut total = 0.0;
    for (ts, qs) in shared.iter() {
        let ga = conditional(support_a, private_a, ts);
        if ga == 0.0 {
            continue;
        }
        let gb = conditional(support_b, private_b, ts);
        total += qs * ga * gb;
    }
    total
}

/// Brute-force marginal `P(both tested versions fail on X)` under an
/// adaptive allocation: the usage-weighted sum of
/// [`joint_on_demand_adaptive`] over the demand space (the eq-(23)-style
/// integration for a realised allocation profile).
pub fn marginal_adaptive(
    support_a: &Support,
    support_b: &Support,
    shared: &ExplicitSuitePopulation,
    private_a: &ExplicitSuitePopulation,
    private_b: &ExplicitSuitePopulation,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    let joint: Vec<f64> = model
        .space()
        .iter()
        .map(|x| {
            joint_on_demand_adaptive(support_a, support_b, shared, private_a, private_b, model, x)
        })
        .collect();
    weighted_total(&joint, profile)
}

/// Brute-force marginal `P(both tested versions fail on X)` for
/// independently drawn suites: the usage-weighted sum of the joint
/// vector ([`TestedEnsemble::joint_vector_independent`], equation
/// (22)/(24)).
pub fn marginal_independent(
    support_a: &Support,
    support_b: &Support,
    measure_a: &ExplicitSuitePopulation,
    measure_b: &ExplicitSuitePopulation,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    let ens_a = TestedEnsemble::new(support_a, measure_a, model);
    let ens_b = TestedEnsemble::new(support_b, measure_b, model);
    let joint = ens_a.joint_vector_independent(&ens_b);
    weighted_total(&joint, profile)
}

/// Brute-force marginal `P(both tested versions fail on X)` for a shared
/// suite (equation (23)/(25)): the usage-weighted sum of
/// [`joint_vector_shared`].
pub fn marginal_shared(
    support_a: &Support,
    support_b: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    let joint = joint_vector_shared(support_a, support_b, measure, model);
    weighted_total(&joint, profile)
}

/// `Σ_x values[x] · Q(x)` in ascending demand order — the same per-scalar
/// arithmetic as `profile.expect(|x| values[x])`.
pub(crate) fn weighted_total(values: &[f64], profile: &UsageProfile) -> f64 {
    values
        .iter()
        .zip(profile.probabilities())
        .map(|(&v, &q)| v * q)
        .sum()
}

/// Brute-force post-testing difficulty `ζ(x) = Σ_π Σ_t υ(π,x,t)·S(π)·M(t)`
/// (equation (14)), via the mechanistic process.
pub fn zeta_brute(
    support: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
    x: DemandId,
) -> f64 {
    let mut total = 0.0;
    for (v, p) in support {
        for (t, q) in measure.iter() {
            total += perfect_debug(v, t, model).score(model, x) * p * q;
        }
    }
    total
}

/// [`zeta_brute`] on every demand through one [`TestedEnsemble`] pass:
/// each combination is debugged once and scatters its weight over its
/// failure set. Agrees with per-demand [`zeta_brute`] bit-for-bit and
/// stays exact on million-demand spaces where the per-demand form would
/// re-debug every combination per demand.
pub fn zeta_brute_vector(
    support: &Support,
    measure: &ExplicitSuitePopulation,
    model: &FaultModel,
) -> Vec<f64> {
    TestedEnsemble::new(support, measure, model).zeta_vector()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_testing::suite_population::enumerate_iid_suites;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use diversim_universe::population::{BernoulliPopulation, Population};
    use std::sync::Arc;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn singleton_pop(props: Vec<f64>) -> BernoulliPopulation {
        let space = DemandSpace::new(props.len()).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .singleton_faults()
                .build()
                .unwrap(),
        );
        BernoulliPopulation::new(model, props).unwrap()
    }

    #[test]
    fn zeta_brute_matches_hand_value() {
        // p = (0.4, 0.8), one uniform draw: ζ(x0) = 0.2 (see core tests).
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let z = zeta_brute(&support, &m, pop.model(), d(0));
        assert!((z - 0.2).abs() < 1e-12);
    }

    #[test]
    fn independent_joint_factorises() {
        // Eq (16): the quadruple sum equals ζ(x)² — verified numerically.
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let joint = joint_on_demand_independent(&support, &support, &m, &m, pop.model(), d(0));
        let z = zeta_brute(&support, &m, pop.model(), d(0));
        assert!((joint - z * z).abs() < 1e-12);
    }

    #[test]
    fn shared_joint_exceeds_independent() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let shared = joint_on_demand_shared(&support, &support, &m, pop.model(), d(0));
        let indep = joint_on_demand_independent(&support, &support, &m, &m, pop.model(), d(0));
        // Hand values from the core tests: 0.08 vs 0.04.
        assert!((shared - 0.08).abs() < 1e-12);
        assert!((indep - 0.04).abs() < 1e-12);
    }

    #[test]
    fn marginals_integrate_demand_joints() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let mi = marginal_independent(&support, &support, &m, &m, pop.model(), &q);
        let ms = marginal_shared(&support, &support, &m, pop.model(), &q);
        assert!((mi - 0.10).abs() < 1e-12);
        assert!((ms - 0.20).abs() < 1e-12);
    }

    /// Overlapping regions + a skewed profile: the harder case for the
    /// packed kernels (cascaded fixes, shared demands across faults).
    fn overlapping_world() -> (Arc<FaultModel>, BernoulliPopulation, UsageProfile) {
        use diversim_universe::demand::DemandId;
        let space = DemandSpace::new(5).unwrap();
        let model = Arc::new(
            FaultModelBuilder::new(space)
                .fault([DemandId::new(0), DemandId::new(1)])
                .fault([DemandId::new(1), DemandId::new(2), DemandId::new(3)])
                .fault([DemandId::new(3), DemandId::new(4)])
                .build()
                .unwrap(),
        );
        let pop = BernoulliPopulation::new(Arc::clone(&model), vec![0.35, 0.6, 0.15]).unwrap();
        let q = UsageProfile::from_weights(space, vec![0.4, 0.25, 0.05, 0.1, 0.2]).unwrap();
        (model, pop, q)
    }

    #[test]
    fn zeta_vector_matches_per_demand_bitwise() {
        let (model, pop, q) = overlapping_world();
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        let zv = zeta_brute_vector(&support, &m, &model);
        assert_eq!(zv.len(), model.space().len());
        for x in model.space().iter() {
            // Exact equality: the vector form must reproduce the retired
            // per-demand enumeration bit for bit, not just within tolerance.
            assert_eq!(zv[x.index()], zeta_brute(&support, &m, &model, x));
        }
    }

    #[test]
    fn joint_vectors_match_per_demand_bitwise() {
        let (model, pop, q) = overlapping_world();
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        let ens = TestedEnsemble::new(&support, &m, &model);
        let jv_ind = ens.joint_vector_independent(&ens);
        let jv_sh = joint_vector_shared(&support, &support, &m, &model);
        for x in model.space().iter() {
            assert_eq!(
                jv_ind[x.index()],
                joint_on_demand_independent(&support, &support, &m, &m, &model, x)
            );
            assert_eq!(
                jv_sh[x.index()],
                joint_on_demand_shared(&support, &support, &m, &model, x)
            );
        }
    }

    #[test]
    fn marginals_equal_usage_weighted_joint_vectors_bitwise() {
        let (model, pop, q) = overlapping_world();
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        // The marginal entry points must equal the manual expectation over
        // the retired per-demand joints exactly (same summation order).
        let mi = marginal_independent(&support, &support, &m, &m, &model, &q);
        let ms = marginal_shared(&support, &support, &m, &model, &q);
        let mi_ref =
            q.expect(|x| joint_on_demand_independent(&support, &support, &m, &m, &model, x));
        let ms_ref = q.expect(|x| joint_on_demand_shared(&support, &support, &m, &model, x));
        assert_eq!(mi, mi_ref);
        assert_eq!(ms, ms_ref);
    }

    #[test]
    fn adaptive_with_empty_private_measures_is_shared_bitwise() {
        let (model, pop, q) = overlapping_world();
        let shared = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let none = enumerate_iid_suites(&q, 0, 4).unwrap();
        let support = pop.enumerate(16).unwrap();
        for x in model.space().iter() {
            // Merging with the single empty suite is the identity, so the
            // adaptive enumeration must collapse to the shared one exactly.
            let adaptive =
                joint_on_demand_adaptive(&support, &support, &shared, &none, &none, &model, x);
            let direct = joint_on_demand_shared(&support, &support, &shared, &model, x);
            assert!((adaptive - direct).abs() < 1e-15);
        }
    }

    #[test]
    fn adaptive_with_empty_shared_measure_factorises() {
        let (model, pop, q) = overlapping_world();
        let none = enumerate_iid_suites(&q, 0, 4).unwrap();
        let private = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        for x in model.space().iter() {
            let adaptive =
                joint_on_demand_adaptive(&support, &support, &none, &private, &private, &model, x);
            let indep =
                joint_on_demand_independent(&support, &support, &private, &private, &model, x);
            assert!((adaptive - indep).abs() < 1e-12);
        }
        let ma = marginal_adaptive(&support, &support, &none, &private, &private, &model, &q);
        let mi = marginal_independent(&support, &support, &private, &private, &model, &q);
        assert!((ma - mi).abs() < 1e-12);
    }

    #[test]
    fn structure_pair_matches_flat_ensemble_bitwise() {
        // one_out_of_n(2) through the StructureEnsemble recursion must be
        // the flat pair kernel bit-for-bit: same lexicographic combo
        // order, same intersection sets, same scatter order.
        let (model, pop, q) = overlapping_world();
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        let ens = TestedEnsemble::new(&support, &m, &model);
        let flat = ens.joint_vector_independent(&ens);
        let tree = StructureEnsemble::new(
            Structure::one_out_of_n(2),
            &[&support, &support],
            &m,
            &model,
        )
        .unwrap();
        let structured = tree.joint_vector_independent();
        assert_eq!(tree.component_count(), 2);
        assert_eq!(tree.joint_combinations(), ens.len() * ens.len());
        for (a, b) in flat.iter().zip(&structured) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn structure_shared_pair_matches_flat_shared_path() {
        let (model, pop, q) = overlapping_world();
        let m = enumerate_iid_suites(&q, 2, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        let flat = joint_vector_shared(&support, &support, &m, &model);
        let structured = structure_joint_vector_shared(
            &Structure::one_out_of_n(2),
            &[&support, &support],
            &m,
            &model,
        )
        .unwrap();
        // Same per-suite products, different accumulation grouping: the
        // flat path scatters per-support masses then multiplies, the
        // structured path enumerates version tuples — equal to rounding.
        for (x, (a, b)) in flat.iter().zip(&structured).enumerate() {
            assert!((a - b).abs() < 1e-12, "demand {x}: flat {a} vs tree {b}");
        }
    }

    #[test]
    fn structure_series_complements_parallel() {
        // On every demand: P(series fails) ≥ P(any single fails) ≥
        // P(parallel fails), and series + "all work" masses combine to 1
        // only through inclusion–exclusion — spot-check or/and ordering.
        let (model, pop, q) = overlapping_world();
        let m = enumerate_iid_suites(&q, 1, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        let supports = [&support[..], &support[..], &support[..]];
        let series = StructureEnsemble::new(Structure::series(3), &supports, &m, &model)
            .unwrap()
            .joint_vector_independent();
        let parallel = StructureEnsemble::new(Structure::one_out_of_n(3), &supports, &m, &model)
            .unwrap()
            .joint_vector_independent();
        let two_of_three = StructureEnsemble::new(Structure::k_of_n(2, 3), &supports, &m, &model)
            .unwrap()
            .joint_vector_independent();
        for x in 0..model.space().len() {
            assert!(parallel[x] <= two_of_three[x] + 1e-15);
            assert!(two_of_three[x] <= series[x] + 1e-15);
        }
    }

    #[test]
    fn structure_ensemble_rejects_bad_input() {
        let (model, pop, q) = overlapping_world();
        let m = enumerate_iid_suites(&q, 1, 1 << 8).unwrap();
        let support = pop.enumerate(16).unwrap();
        assert!(StructureEnsemble::new(Structure::one_out_of_n(2), &[], &m, &model).is_err());
        // Tree references component 2, only 2 supports supplied.
        assert!(StructureEnsemble::new(
            Structure::one_out_of_n(3),
            &[&support, &support],
            &m,
            &model
        )
        .is_err());
    }

    #[test]
    fn ensemble_exposes_combo_order() {
        let pop = singleton_pop(vec![0.4, 0.8]);
        let q = UsageProfile::uniform(pop.model().space());
        let m = enumerate_iid_suites(&q, 1, 64).unwrap();
        let support = pop.enumerate(16).unwrap();
        let ens = TestedEnsemble::new(&support, &m, pop.model());
        assert_eq!(ens.len(), support.len() * m.len());
        assert!(!ens.is_empty());
        // Support-outer, measure-inner: combo weights tile as p·q blocks.
        let (w0, _) = &ens.combos()[0];
        let expected = support[0].1 * m.iter().next().unwrap().1;
        assert_eq!(*w0, expected);
    }
}
