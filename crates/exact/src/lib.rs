//! Exact enumeration engine for the `diversim` reproduction of Popov &
//! Littlewood (DSN 2004).
//!
//! A theory paper is best "reproduced" by verifying its identities to
//! machine precision. This crate provides two independent computation
//! paths and a checker that compares them:
//!
//! * [`brute`] — assumption-free expectations: enumerate every
//!   `(version, suite)` pair with its probability, run the mechanistic
//!   debugging process from `diversim-testing`, and sum score products
//!   (the raw definition, equation (15));
//! * [`verify`] — compares those sums against the closed-form /
//!   decomposition path of `diversim-core` for equations (14), (16)/(17),
//!   (20)/(21), (22)/(24) and (23)/(25), plus the `θ ≥ ζ` ordering.
//!
//! # Examples
//!
//! ```
//! use diversim_exact::verify::verify_pair;
//! use diversim_testing::suite_population::enumerate_iid_suites;
//! use diversim_universe::demand::DemandSpace;
//! use diversim_universe::fault::FaultModelBuilder;
//! use diversim_universe::population::{BernoulliPopulation, Population};
//! use diversim_universe::profile::UsageProfile;
//! use std::sync::Arc;
//!
//! let space = DemandSpace::new(3)?;
//! let model = Arc::new(FaultModelBuilder::new(space).singleton_faults().build()?);
//! let pop = BernoulliPopulation::new(model, vec![0.2, 0.5, 0.8])?;
//! let q = UsageProfile::uniform(space);
//! let measure = enumerate_iid_suites(&q, 2, 1 << 10)?;
//! let support = pop.enumerate(1 << 10).expect("small universe");
//!
//! let report = verify_pair(&pop, &pop, &support, &support, &measure, &q);
//! assert!(report.all_hold(1e-12), "identity violated:\n{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod brute;
pub mod verify;

pub use brute::{
    joint_on_demand_adaptive, joint_on_demand_independent, joint_on_demand_shared,
    joint_vector_shared, marginal_adaptive, marginal_independent, marginal_shared,
    structure_joint_vector_shared, structure_marginal_shared, zeta_brute, zeta_brute_vector,
    StructureEnsemble, TestedEnsemble,
};
pub use verify::{verify_pair, verify_structure, IdentityCheck, TheoremReport};
