//! Failure-detection oracles.
//!
//! §2: "a judging mechanism (for example oracle(s)) … Clearly, the judging
//! mechanism can itself be fallible." An [`Oracle`] decides whether an
//! observed failure (a demand on which the executed version's output is
//! wrong) is *detected*. Back-to-back comparison (§4.2) is not an
//! [`Oracle`] — its verdict depends on both versions' outcomes — and is
//! modelled separately by [`IdenticalFailureModel`] in
//! [`crate::process::back_to_back_debug`].

use rand::{Rng, RngCore};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use diversim_universe::demand::DemandId;

use crate::error::TestingError;

/// Decides whether a failure on a demand is detected.
pub trait Oracle: std::fmt::Debug + Send + Sync {
    /// Returns `true` if a failure on `x` is detected. Called once per
    /// failing execution.
    fn detects(&self, rng: &mut dyn RngCore, x: DemandId) -> bool;

    /// `true` if the oracle detects every failure with certainty, enabling
    /// closed-form shortcuts.
    fn is_perfect(&self) -> bool {
        false
    }
}

/// The perfect oracle of §3: every failure is detected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PerfectOracle;

impl PerfectOracle {
    /// Creates a perfect oracle.
    pub fn new() -> Self {
        PerfectOracle
    }
}

impl Oracle for PerfectOracle {
    fn detects(&self, _rng: &mut dyn RngCore, _x: DemandId) -> bool {
        true
    }

    fn is_perfect(&self) -> bool {
        true
    }
}

/// The imperfect oracle of §4.1: each failing execution is detected
/// independently with probability `detect_prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ImperfectOracle {
    detect_prob: f64,
}

impl ImperfectOracle {
    /// Creates an oracle with the given per-failure detection probability.
    ///
    /// # Errors
    ///
    /// Returns [`TestingError::InvalidProbability`] unless
    /// `detect_prob ∈ [0, 1]`.
    pub fn new(detect_prob: f64) -> Result<Self, TestingError> {
        if !detect_prob.is_finite() || !(0.0..=1.0).contains(&detect_prob) {
            return Err(TestingError::InvalidProbability {
                name: "detect_prob",
                value: detect_prob,
            });
        }
        Ok(Self { detect_prob })
    }

    /// The per-failure detection probability.
    pub fn detect_prob(&self) -> f64 {
        self.detect_prob
    }
}

impl Oracle for ImperfectOracle {
    fn detects(&self, rng: &mut dyn RngCore, _x: DemandId) -> bool {
        rng.gen::<f64>() < self.detect_prob
    }

    fn is_perfect(&self) -> bool {
        self.detect_prob >= 1.0
    }
}

/// An oracle with per-demand detection probabilities (some failures are
/// easier to judge than others) — an extension beyond the paper's global
/// imperfection parameter.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PerDemandOracle {
    detect_probs: Vec<f64>,
}

impl PerDemandOracle {
    /// Creates an oracle from per-demand detection probabilities, indexed
    /// by demand.
    ///
    /// # Errors
    ///
    /// Returns [`TestingError::InvalidProbability`] if any entry is out of
    /// range.
    pub fn new(detect_probs: Vec<f64>) -> Result<Self, TestingError> {
        for &p in &detect_probs {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(TestingError::InvalidProbability {
                    name: "detect_probs[i]",
                    value: p,
                });
            }
        }
        Ok(Self { detect_probs })
    }
}

impl Oracle for PerDemandOracle {
    fn detects(&self, rng: &mut dyn RngCore, x: DemandId) -> bool {
        let p = self.detect_probs.get(x.index()).copied().unwrap_or(0.0);
        rng.gen::<f64>() < p
    }

    fn is_perfect(&self) -> bool {
        self.detect_probs.iter().all(|&p| p >= 1.0)
    }
}

/// How coincident failures behave under back-to-back comparison (§4.2).
///
/// When exactly one version fails on a demand the outputs necessarily
/// mismatch and the failure is detected. When *both* fail, detection
/// succeeds only if the wrong outputs differ:
///
/// * [`IdenticalFailureModel::Never`] — the optimistic bound: coincident
///   failures are never identical, so back-to-back behaves like a perfect
///   oracle;
/// * [`IdenticalFailureModel::Always`] — the pessimistic bound: all
///   coincident failures are identical and undetectable;
/// * [`IdenticalFailureModel::Bernoulli`] — each coincident failure is
///   identical with probability `γ`, interpolating between the bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum IdenticalFailureModel {
    /// Coincident failures always mismatch (optimistic).
    Never,
    /// Coincident failures are always identical (pessimistic).
    Always,
    /// Coincident failures are identical with probability `γ`.
    Bernoulli(f64),
}

impl IdenticalFailureModel {
    /// Validates the γ parameter of the Bernoulli variant.
    ///
    /// # Errors
    ///
    /// Returns [`TestingError::InvalidProbability`] if γ is out of range.
    pub fn validate(&self) -> Result<(), TestingError> {
        if let IdenticalFailureModel::Bernoulli(g) = *self {
            if !g.is_finite() || !(0.0..=1.0).contains(&g) {
                return Err(TestingError::InvalidProbability {
                    name: "gamma",
                    value: g,
                });
            }
        }
        Ok(())
    }

    /// Draws whether a coincident failure is identical (hence undetected).
    pub fn is_identical(&self, rng: &mut dyn RngCore) -> bool {
        match *self {
            IdenticalFailureModel::Never => false,
            IdenticalFailureModel::Always => true,
            IdenticalFailureModel::Bernoulli(g) => rng.gen::<f64>() < g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    #[test]
    fn perfect_oracle_always_detects() {
        let o = PerfectOracle::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(o.is_perfect());
        for i in 0..100 {
            assert!(o.detects(&mut rng, d(i)));
        }
    }

    #[test]
    fn imperfect_oracle_detection_rate() {
        let o = ImperfectOracle::new(0.3).unwrap();
        assert!(!o.is_perfect());
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| o.detects(&mut rng, d(0))).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn imperfect_oracle_extremes() {
        let zero = ImperfectOracle::new(0.0).unwrap();
        let one = ImperfectOracle::new(1.0).unwrap();
        assert!(one.is_perfect());
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!zero.detects(&mut rng, d(0)));
        assert!(one.detects(&mut rng, d(0)));
    }

    #[test]
    fn imperfect_oracle_rejects_bad_probability() {
        assert!(ImperfectOracle::new(-0.1).is_err());
        assert!(ImperfectOracle::new(1.1).is_err());
        assert!(ImperfectOracle::new(f64::NAN).is_err());
    }

    #[test]
    fn per_demand_oracle_uses_right_entry() {
        let o = PerDemandOracle::new(vec![1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(o.detects(&mut rng, d(0)));
        assert!(!o.detects(&mut rng, d(1)));
        // Out-of-range demands are never detected.
        assert!(!o.detects(&mut rng, d(9)));
        assert!(!o.is_perfect());
        assert!(PerDemandOracle::new(vec![1.0, 1.0]).unwrap().is_perfect());
    }

    #[test]
    fn per_demand_oracle_validates() {
        assert!(PerDemandOracle::new(vec![0.5, 2.0]).is_err());
    }

    #[test]
    fn identical_failure_model_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!IdenticalFailureModel::Never.is_identical(&mut rng));
        assert!(IdenticalFailureModel::Always.is_identical(&mut rng));
    }

    #[test]
    fn identical_failure_model_bernoulli_rate() {
        let m = IdenticalFailureModel::Bernoulli(0.7);
        m.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| m.is_identical(&mut rng)).count();
        assert!((hits as f64 / 100_000.0 - 0.7).abs() < 0.01);
    }

    #[test]
    fn identical_failure_model_validation() {
        assert!(IdenticalFailureModel::Bernoulli(1.5).validate().is_err());
        assert!(IdenticalFailureModel::Never.validate().is_ok());
        assert!(IdenticalFailureModel::Always.validate().is_ok());
    }

    #[test]
    fn oracles_are_object_safe() {
        let oracles: Vec<Box<dyn Oracle>> = vec![
            Box::new(PerfectOracle::new()),
            Box::new(ImperfectOracle::new(0.5).unwrap()),
            Box::new(PerDemandOracle::new(vec![0.5]).unwrap()),
        ];
        let mut rng = StdRng::seed_from_u64(6);
        for o in &oracles {
            let _ = o.detects(&mut rng, d(0));
        }
    }
}
