//! Test-suite generation procedures.
//!
//! §2: "Test suites are drawn in accord with the testing goal. If
//! operational reliability is targeted the test suites are generated using
//! the expected operational profile … If debugging is targeted the test
//! suite is generated according to what the debugger believes maximises
//! the chances of finding faults." A [`SuiteGenerator`] together with a
//! requested size is one *generation procedure* — the thing the measure
//! `M(·)` is defined over. Forced *testing* diversity (§3.2) is modelled
//! by using two different generators.

use rand::RngCore;

use diversim_universe::demand::{DemandId, DemandSpace};
use diversim_universe::profile::UsageProfile;

use crate::error::TestingError;
use crate::suite::TestSuite;

/// A randomized procedure producing test suites of a requested size.
///
/// Implementations are object-safe so experiments can mix procedures
/// (`&dyn SuiteGenerator`) when modelling forced testing diversity.
pub trait SuiteGenerator: std::fmt::Debug + Send + Sync {
    /// The demand space suites are generated over.
    fn space(&self) -> DemandSpace;

    /// Draws one random suite `T ~ M(·)` of `size` demands.
    ///
    /// Generators for which the size is intrinsic (e.g.
    /// [`ExhaustiveGenerator`]) document how they treat the argument.
    fn generate(&self, rng: &mut dyn RngCore, size: usize) -> TestSuite;
}

/// Operational-profile testing: demands drawn i.i.d. from a usage
/// distribution (either the operational `Q(·)` itself, or a *debug*
/// profile believed to maximise fault finding).
#[derive(Debug, Clone)]
pub struct ProfileGenerator {
    profile: UsageProfile,
}

impl ProfileGenerator {
    /// Creates a generator drawing i.i.d. demands from `profile`.
    pub fn new(profile: UsageProfile) -> Self {
        Self { profile }
    }

    /// The profile demands are drawn from.
    pub fn profile(&self) -> &UsageProfile {
        &self.profile
    }
}

impl SuiteGenerator for ProfileGenerator {
    fn space(&self) -> DemandSpace {
        self.profile.space()
    }

    fn generate(&self, rng: &mut dyn RngCore, size: usize) -> TestSuite {
        let demands = self.profile.sample_many(rng, size);
        TestSuite::from_demands(self.space(), demands)
            .expect("profile samples lie in the space by construction")
    }
}

/// Partition (category) testing: the demand space is split into classes
/// and suites cycle round-robin over the classes, drawing uniformly within
/// each — guaranteeing coverage breadth that i.i.d. sampling lacks.
#[derive(Debug, Clone)]
pub struct PartitionGenerator {
    space: DemandSpace,
    classes: Vec<Vec<DemandId>>,
}

impl PartitionGenerator {
    /// Creates a partition generator from demand classes.
    ///
    /// # Errors
    ///
    /// Returns [`TestingError::InvalidPartition`] if there are no classes
    /// or a class is empty, and a wrapped range error if a class refers to
    /// a demand outside the space.
    pub fn new(space: DemandSpace, classes: Vec<Vec<DemandId>>) -> Result<Self, TestingError> {
        if classes.is_empty() {
            return Err(TestingError::InvalidPartition {
                reason: "no classes supplied",
            });
        }
        for class in &classes {
            if class.is_empty() {
                return Err(TestingError::InvalidPartition {
                    reason: "empty class",
                });
            }
            for &x in class {
                space.check(x)?;
            }
        }
        Ok(Self { space, classes })
    }

    /// Splits the space into `k` contiguous classes of near-equal size.
    ///
    /// # Errors
    ///
    /// Returns [`TestingError::InvalidPartition`] if `k` is zero or larger
    /// than the space.
    pub fn contiguous(space: DemandSpace, k: usize) -> Result<Self, TestingError> {
        if k == 0 || k > space.len() {
            return Err(TestingError::InvalidPartition {
                reason: "class count must be in 1..=space size",
            });
        }
        let n = space.len();
        let mut classes = Vec::with_capacity(k);
        for c in 0..k {
            let lo = c * n / k;
            let hi = (c + 1) * n / k;
            classes.push((lo..hi).map(|i| DemandId::new(i as u32)).collect());
        }
        Ok(Self { space, classes })
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

impl SuiteGenerator for PartitionGenerator {
    fn space(&self) -> DemandSpace {
        self.space
    }

    fn generate(&self, rng: &mut dyn RngCore, size: usize) -> TestSuite {
        use rand::Rng;
        let mut demands = Vec::with_capacity(size);
        for i in 0..size {
            let class = &self.classes[i % self.classes.len()];
            demands.push(class[rng.gen_range(0..class.len())]);
        }
        TestSuite::from_demands(self.space, demands).expect("classes validated at construction")
    }
}

/// Exhaustive testing: the suite is always the whole demand space, in
/// index order. The requested size is ignored (documented deviation: the
/// procedure's size is intrinsic). Used for limit studies such as the
/// back-to-back worst case "in the limit (after exhaustive testing)".
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveGenerator {
    space: DemandSpace,
}

impl ExhaustiveGenerator {
    /// Creates an exhaustive generator over `space`.
    pub fn new(space: DemandSpace) -> Self {
        Self { space }
    }
}

impl SuiteGenerator for ExhaustiveGenerator {
    fn space(&self) -> DemandSpace {
        self.space
    }

    fn generate(&self, _rng: &mut dyn RngCore, _size: usize) -> TestSuite {
        TestSuite::exhaustive(self.space)
    }
}

/// A degenerate procedure that always returns one fixed suite — the
/// "same test suite" regime in its purest form, and a useful building
/// block for exact enumeration.
#[derive(Debug, Clone)]
pub struct FixedGenerator {
    suite: TestSuite,
}

impl FixedGenerator {
    /// Wraps a fixed suite.
    pub fn new(suite: TestSuite) -> Self {
        Self { suite }
    }
}

impl SuiteGenerator for FixedGenerator {
    fn space(&self) -> DemandSpace {
        self.suite.space()
    }

    fn generate(&self, _rng: &mut dyn RngCore, _size: usize) -> TestSuite {
        self.suite.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn space(n: usize) -> DemandSpace {
        DemandSpace::new(n).unwrap()
    }

    #[test]
    fn profile_generator_draws_from_profile() {
        let q = UsageProfile::from_weights(space(3), vec![0.0, 1.0, 0.0]).unwrap();
        let g = ProfileGenerator::new(q);
        let mut rng = StdRng::seed_from_u64(0);
        let t = g.generate(&mut rng, 10);
        assert_eq!(t.len(), 10);
        assert!(t.demands().iter().all(|&x| x == d(1)));
    }

    #[test]
    fn profile_generator_empirical_distribution() {
        let q = UsageProfile::from_weights(space(2), vec![0.8, 0.2]).unwrap();
        let g = ProfileGenerator::new(q);
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.generate(&mut rng, 50_000);
        let zeros = t.demands().iter().filter(|&&x| x == d(0)).count();
        assert!((zeros as f64 / 50_000.0 - 0.8).abs() < 0.01);
    }

    #[test]
    fn partition_round_robin_coverage() {
        let g = PartitionGenerator::contiguous(space(9), 3).unwrap();
        assert_eq!(g.class_count(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let t = g.generate(&mut rng, 6);
        // Demands 0,3 come from class 0 ({0,1,2}), etc.
        assert!(t.demands()[0].index() < 3);
        assert!((3..6).contains(&t.demands()[1].index()));
        assert!((6..9).contains(&t.demands()[2].index()));
        assert!(t.demands()[3].index() < 3);
    }

    #[test]
    fn partition_validation() {
        assert!(PartitionGenerator::new(space(3), vec![]).is_err());
        assert!(PartitionGenerator::new(space(3), vec![vec![]]).is_err());
        assert!(PartitionGenerator::new(space(3), vec![vec![d(7)]]).is_err());
        assert!(PartitionGenerator::contiguous(space(3), 0).is_err());
        assert!(PartitionGenerator::contiguous(space(3), 4).is_err());
    }

    #[test]
    fn contiguous_classes_partition_the_space() {
        let g = PartitionGenerator::contiguous(space(10), 3).unwrap();
        let total: usize = g.classes.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn exhaustive_ignores_size() {
        let g = ExhaustiveGenerator::new(space(4));
        let mut rng = StdRng::seed_from_u64(3);
        let t = g.generate(&mut rng, 1);
        assert_eq!(t.len(), 4);
        assert_eq!(t.distinct_len(), 4);
    }

    #[test]
    fn fixed_generator_always_returns_same_suite() {
        let suite = TestSuite::from_demands(space(3), vec![d(2)]).unwrap();
        let g = FixedGenerator::new(suite.clone());
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(g.generate(&mut rng, 99), suite);
        assert_eq!(g.generate(&mut rng, 0), suite);
    }

    #[test]
    fn generators_are_object_safe() {
        let gens: Vec<Box<dyn SuiteGenerator>> = vec![
            Box::new(ProfileGenerator::new(UsageProfile::uniform(space(3)))),
            Box::new(ExhaustiveGenerator::new(space(3))),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        for g in &gens {
            let t = g.generate(&mut rng, 2);
            assert_eq!(t.space().len(), 3);
        }
    }
}
