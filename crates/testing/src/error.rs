//! Error type for the testing substrate.

use std::error::Error;
use std::fmt;

use diversim_universe::UniverseError;

/// Errors raised while constructing test suites, generators or testing
/// processes.
///
/// `Display` messages are stable (downstream layers forward them as
/// user- and wire-facing error strings); `#[non_exhaustive]` so new
/// validations can add variants without a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TestingError {
    /// A suite referenced a demand outside its space.
    Universe(UniverseError),
    /// A probability-valued parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A partition scheme was empty or contained an empty class.
    InvalidPartition {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A suite population was empty or had degenerate weights.
    InvalidSuitePopulation {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Exact enumeration would exceed the caller-supplied limit.
    EnumerationTooLarge {
        /// The size that would be required.
        required: usize,
        /// The caller's limit.
        limit: usize,
    },
}

impl fmt::Display for TestingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestingError::Universe(e) => write!(f, "universe error: {e}"),
            TestingError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be a probability in [0, 1], got {value}"
                )
            }
            TestingError::InvalidPartition { reason } => {
                write!(f, "invalid partition: {reason}")
            }
            TestingError::InvalidSuitePopulation { reason } => {
                write!(f, "invalid suite population: {reason}")
            }
            TestingError::EnumerationTooLarge { required, limit } => {
                write!(
                    f,
                    "enumeration needs {required} entries, exceeding the limit of {limit}"
                )
            }
        }
    }
}

impl Error for TestingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TestingError::Universe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UniverseError> for TestingError {
    fn from(e: UniverseError) -> Self {
        TestingError::Universe(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TestingError::EnumerationTooLarge {
            required: 1024,
            limit: 100,
        };
        assert!(e.to_string().contains("1024"));
        assert!(Error::source(&e).is_none());

        let wrapped: TestingError = UniverseError::EmptyDemandSpace.into();
        assert!(Error::source(&wrapped).is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TestingError>();
    }
}
