//! Fault-fixing (repair) models.
//!
//! §2: "imperfect fault fixing may only partially remove the causing fault
//! and in the worst case even introduce new faults." Following §4.1 (and
//! most reliability-growth models), fixers here never introduce new
//! faults; deliberate fault introduction is modelled separately by
//! [`diversim_universe::CommonCauseEvent::Mistake`].
//!
//! A [`Fixer`] responds to one *detected* failure on demand `x`: it
//! attempts to remove the faults of `π ∩ O_x`. The perfect fixer of §3
//! removes all of them ("the assumed perfection of fault fixing implies
//! fixing all faults that cause a failure on x").

use rand::{Rng, RngCore};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use diversim_universe::demand::DemandId;
use diversim_universe::fault::FaultModel;
use diversim_universe::version::Version;

use crate::error::TestingError;

/// Responds to a detected failure by removing faults from the version.
pub trait Fixer: std::fmt::Debug + Send + Sync {
    /// Attempts to fix the faults causing a failure of `version` on `x`
    /// (the members of `π ∩ O_x`). Returns the number of faults removed.
    fn fix(
        &self,
        rng: &mut dyn RngCore,
        model: &FaultModel,
        version: &mut Version,
        x: DemandId,
    ) -> usize;

    /// `true` if the fixer removes every causing fault with certainty,
    /// enabling closed-form shortcuts.
    fn is_perfect(&self) -> bool {
        false
    }
}

/// The perfect fixer of §3: removes every fault of `π ∩ O_x`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PerfectFixer;

impl PerfectFixer {
    /// Creates a perfect fixer.
    pub fn new() -> Self {
        PerfectFixer
    }
}

impl Fixer for PerfectFixer {
    fn fix(
        &self,
        _rng: &mut dyn RngCore,
        model: &FaultModel,
        version: &mut Version,
        x: DemandId,
    ) -> usize {
        version.remove_faults(model.faults_at(x).iter().copied())
    }

    fn is_perfect(&self) -> bool {
        true
    }
}

/// The imperfect fixer of §4.1: each causing fault is removed
/// independently with probability `fix_prob`; no new faults are ever
/// introduced.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ImperfectFixer {
    fix_prob: f64,
}

impl ImperfectFixer {
    /// Creates a fixer with the given per-fault removal probability.
    ///
    /// # Errors
    ///
    /// Returns [`TestingError::InvalidProbability`] unless
    /// `fix_prob ∈ [0, 1]`.
    pub fn new(fix_prob: f64) -> Result<Self, TestingError> {
        if !fix_prob.is_finite() || !(0.0..=1.0).contains(&fix_prob) {
            return Err(TestingError::InvalidProbability {
                name: "fix_prob",
                value: fix_prob,
            });
        }
        Ok(Self { fix_prob })
    }

    /// The per-fault removal probability.
    pub fn fix_prob(&self) -> f64 {
        self.fix_prob
    }
}

impl Fixer for ImperfectFixer {
    fn fix(
        &self,
        rng: &mut dyn RngCore,
        model: &FaultModel,
        version: &mut Version,
        x: DemandId,
    ) -> usize {
        let candidates: Vec<_> = model
            .faults_at(x)
            .iter()
            .copied()
            .filter(|&f| version.has_fault(f))
            .collect();
        let mut removed = 0;
        for f in candidates {
            if self.fix_prob >= 1.0 || rng.gen::<f64>() < self.fix_prob {
                removed += version.remove_faults([f]);
            }
        }
        removed
    }

    fn is_perfect(&self) -> bool {
        self.fix_prob >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::{FaultId, FaultModelBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn f(i: u32) -> FaultId {
        FaultId::new(i)
    }

    /// 3 demands; fault 0 → {0,1}, fault 1 → {1}, fault 2 → {2}.
    fn model() -> FaultModel {
        FaultModelBuilder::new(DemandSpace::new(3).unwrap())
            .fault([d(0), d(1)])
            .fault([d(1)])
            .fault([d(2)])
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_fixer_removes_all_causing_faults() {
        let m = model();
        let mut v = Version::from_faults(&m, [f(0), f(1), f(2)]);
        let mut rng = StdRng::seed_from_u64(0);
        let fixer = PerfectFixer::new();
        assert!(fixer.is_perfect());
        // Failure on demand 1 is caused by faults 0 and 1 — both removed.
        let removed = fixer.fix(&mut rng, &m, &mut v, d(1));
        assert_eq!(removed, 2);
        assert!(!v.has_fault(f(0)));
        assert!(!v.has_fault(f(1)));
        assert!(v.has_fault(f(2)), "unrelated fault untouched");
    }

    #[test]
    fn perfect_fixer_cascade_fixes_other_demands() {
        let m = model();
        let mut v = Version::from_faults(&m, [f(0)]);
        let mut rng = StdRng::seed_from_u64(1);
        // Fixing the failure at demand 1 removes fault 0, whose region also
        // contains demand 0: the D_X cascade of §3.
        PerfectFixer::new().fix(&mut rng, &m, &mut v, d(1));
        assert!(!v.fails_on(&m, d(0)));
    }

    #[test]
    fn imperfect_fixer_with_zero_prob_removes_nothing() {
        let m = model();
        let mut v = Version::from_faults(&m, [f(0), f(1)]);
        let mut rng = StdRng::seed_from_u64(2);
        let fixer = ImperfectFixer::new(0.0).unwrap();
        assert_eq!(fixer.fix(&mut rng, &m, &mut v, d(1)), 0);
        assert_eq!(v.fault_count(), 2);
    }

    #[test]
    fn imperfect_fixer_with_unit_prob_is_perfect() {
        let m = model();
        let fixer = ImperfectFixer::new(1.0).unwrap();
        assert!(fixer.is_perfect());
        let mut v = Version::from_faults(&m, [f(0), f(1)]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(fixer.fix(&mut rng, &m, &mut v, d(1)), 2);
    }

    #[test]
    fn imperfect_fixer_removal_rate() {
        let m = model();
        let fixer = ImperfectFixer::new(0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 50_000;
        let mut removed = 0usize;
        for _ in 0..trials {
            let mut v = Version::from_faults(&m, [f(1)]);
            removed += fixer.fix(&mut rng, &m, &mut v, d(1));
        }
        let rate = removed as f64 / trials as f64;
        assert!((rate - 0.4).abs() < 0.01, "removal rate {rate}");
    }

    #[test]
    fn imperfect_fixer_validates_probability() {
        assert!(ImperfectFixer::new(-0.2).is_err());
        assert!(ImperfectFixer::new(1.2).is_err());
        assert!(ImperfectFixer::new(f64::NAN).is_err());
    }

    #[test]
    fn fixers_never_add_faults() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(5);
        let fixers: Vec<Box<dyn Fixer>> = vec![
            Box::new(PerfectFixer::new()),
            Box::new(ImperfectFixer::new(0.5).unwrap()),
        ];
        for fixer in &fixers {
            let mut v = Version::from_faults(&m, [f(0)]);
            let before = v.fault_count();
            for _ in 0..20 {
                fixer.fix(&mut rng, &m, &mut v, d(1));
            }
            assert!(v.fault_count() <= before);
        }
    }
}
