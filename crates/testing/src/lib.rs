//! Testing-process substrate for the `diversim` reproduction of Popov &
//! Littlewood (DSN 2004).
//!
//! §2 of the paper decomposes testing into three parts, and this crate
//! models each:
//!
//! 1. **a test suite** — [`suite::TestSuite`], drawn from a generation
//!    procedure ([`generation::SuiteGenerator`]) whose induced measure
//!    `M(·)` over `Ξ` can be held explicitly for exact work
//!    ([`suite_population::ExplicitSuitePopulation`]);
//! 2. **a judging mechanism** — [`oracle::Oracle`] (perfect or fallible),
//!    plus the back-to-back comparison regime of §4.2 governed by
//!    [`oracle::IdenticalFailureModel`];
//! 3. **fault-removal actions** — [`fixing::Fixer`] (perfect or
//!    fallible; never introduces faults, per §4.1's assumption).
//!
//! [`process`] ties them together into debugging campaigns, including the
//! closed form for perfect testing ([`process::perfect_debug`]: a fault
//! survives iff its failure region misses the suite) on which all exact
//! computation in `diversim-core`/`diversim-exact` rests.
//!
//! # Examples
//!
//! ```
//! use diversim_testing::generation::{ProfileGenerator, SuiteGenerator};
//! use diversim_testing::process::perfect_debug;
//! use diversim_universe::demand::DemandSpace;
//! use diversim_universe::fault::FaultModelBuilder;
//! use diversim_universe::profile::UsageProfile;
//! use diversim_universe::version::Version;
//! use rand::SeedableRng;
//!
//! let space = DemandSpace::new(8)?;
//! let model = FaultModelBuilder::new(space).singleton_faults().build()?;
//! let all_faults: Vec<_> = model.fault_ids().collect();
//! let buggy = Version::from_faults(&model, all_faults);
//!
//! let gen = ProfileGenerator::new(UsageProfile::uniform(space));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let suite = gen.generate(&mut rng, 16);
//! let tested = perfect_debug(&buggy, &suite, &model);
//! // Testing can only remove faults.
//! assert!(tested.fault_count() <= buggy.fault_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod error;
pub mod fixing;
pub mod generation;
pub mod oracle;
pub mod process;
pub mod suite;
pub mod suite_population;

pub use error::TestingError;
pub use fixing::{Fixer, ImperfectFixer, PerfectFixer};
pub use generation::{
    ExhaustiveGenerator, FixedGenerator, PartitionGenerator, ProfileGenerator, SuiteGenerator,
};
pub use oracle::{IdenticalFailureModel, ImperfectOracle, Oracle, PerDemandOracle, PerfectOracle};
pub use process::{
    back_to_back_debug, debug_version, perfect_debug, BackToBackLog, BackToBackOutcome, DebugLog,
    DebugOutcome,
};
pub use suite::TestSuite;
pub use suite_population::{enumerate_iid_suites, ExplicitSuitePopulation};
