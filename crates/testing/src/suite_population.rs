//! Suite populations: the measure `M(·)` over the set of test suites `Ξ`.
//!
//! "Let us define the set of all test suites, Ξ = {t₁, t₂, …}, which can
//! be generated with a given generation procedure together with the
//! probabilistic measure, M(·), defined on Ξ." (§3). For exact
//! computation the measure is held explicitly; for simulation it is
//! sampled through a [`crate::generation::SuiteGenerator`].

use std::collections::BTreeMap;

use rand::RngCore;

use diversim_stats::alias::AliasSampler;
use diversim_universe::bitset::BitSet;
use diversim_universe::demand::DemandId;
use diversim_universe::profile::UsageProfile;

use crate::error::TestingError;
use crate::suite::TestSuite;

/// A finite, explicit measure over test suites.
///
/// # Examples
///
/// ```
/// use diversim_testing::suite::TestSuite;
/// use diversim_testing::suite_population::ExplicitSuitePopulation;
/// use diversim_universe::demand::{DemandId, DemandSpace};
///
/// let space = DemandSpace::new(2).unwrap();
/// let t0 = TestSuite::from_demands(space, vec![DemandId::new(0)]).unwrap();
/// let t1 = TestSuite::from_demands(space, vec![DemandId::new(1)]).unwrap();
/// let m = ExplicitSuitePopulation::new(vec![(t0, 0.5), (t1, 0.5)]).unwrap();
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ExplicitSuitePopulation {
    suites: Vec<(TestSuite, f64)>,
    sampler: AliasSampler,
}

impl ExplicitSuitePopulation {
    /// Builds a population from `(suite, weight)` pairs; weights are
    /// normalised.
    ///
    /// # Errors
    ///
    /// Returns [`TestingError::InvalidSuitePopulation`] for an empty list
    /// or degenerate weights.
    pub fn new(suites: Vec<(TestSuite, f64)>) -> Result<Self, TestingError> {
        if suites.is_empty() {
            return Err(TestingError::InvalidSuitePopulation {
                reason: "no suites supplied",
            });
        }
        let weights: Vec<f64> = suites.iter().map(|(_, w)| *w).collect();
        let sampler =
            AliasSampler::new(&weights).map_err(|_| TestingError::InvalidSuitePopulation {
                reason: "degenerate weights",
            })?;
        let norm = sampler.probabilities().to_vec();
        let suites = suites
            .into_iter()
            .zip(norm)
            .map(|((t, _), p)| (t, p))
            .collect();
        Ok(Self { suites, sampler })
    }

    /// A population selecting uniformly among the given suites.
    ///
    /// # Errors
    ///
    /// Same as [`ExplicitSuitePopulation::new`].
    pub fn uniform(suites: Vec<TestSuite>) -> Result<Self, TestingError> {
        Self::new(suites.into_iter().map(|t| (t, 1.0)).collect())
    }

    /// Number of suites in the support.
    pub fn len(&self) -> usize {
        self.suites.len()
    }

    /// Returns `true` if the support is empty (never true after
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.suites.is_empty()
    }

    /// Iterates `(suite, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&TestSuite, f64)> {
        self.suites.iter().map(|(t, p)| (t, *p))
    }

    /// Draws one suite `T ~ M(·)`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> &TestSuite {
        &self.suites[self.sampler.sample(rng)].0
    }

    /// Expectation over the measure of a function of the suite.
    pub fn expect<F: FnMut(&TestSuite) -> f64>(&self, mut f: F) -> f64 {
        self.iter().map(|(t, p)| f(t) * p).sum()
    }
}

/// Exactly enumerates the distribution over *covered demand sets* induced
/// by drawing `size` i.i.d. demands from `profile`.
///
/// Two sequences covering the same set of demands are equivalent under
/// perfect failure detection and perfect fixing (a fault survives iff its
/// region misses the covered set), so the enumeration collapses the
/// `|F|^size` sequences into at most `2^|F|` covered sets by dynamic
/// programming over draws. **The collapse is only valid for perfect
/// testing** — imperfect oracles see each execution separately; use
/// sampling for those regimes.
///
/// # Errors
///
/// Returns [`TestingError::EnumerationTooLarge`] as soon as the number of
/// reachable sets exceeds `limit`.
///
/// # Examples
///
/// ```
/// use diversim_testing::suite_population::enumerate_iid_suites;
/// use diversim_universe::demand::DemandSpace;
/// use diversim_universe::profile::UsageProfile;
///
/// let q = UsageProfile::uniform(DemandSpace::new(2).unwrap());
/// let m = enumerate_iid_suites(&q, 2, 1 << 10).unwrap();
/// // Covered sets after 2 uniform draws over {0, 1}:
/// //   {0} w.p. 1/4, {1} w.p. 1/4, {0,1} w.p. 1/2.
/// assert_eq!(m.len(), 3);
/// ```
pub fn enumerate_iid_suites(
    profile: &UsageProfile,
    size: usize,
    limit: usize,
) -> Result<ExplicitSuitePopulation, TestingError> {
    let space = profile.space();
    let n = space.len();
    // BTreeMap, not HashMap: the per-set probabilities are accumulated in
    // iteration order, and float addition is order-sensitive — a randomised
    // order would make the enumeration nondeterministic in the last ulp
    // across processes, which the content-addressed sweep cache forbids.
    let mut dist: BTreeMap<BitSet, f64> = BTreeMap::new();
    dist.insert(BitSet::new(n), 1.0);
    for _ in 0..size {
        let mut next: BTreeMap<BitSet, f64> = BTreeMap::new();
        for (set, p) in &dist {
            for (x, q) in profile.iter() {
                if q == 0.0 {
                    continue;
                }
                let mut ns = set.clone();
                ns.insert(x.index());
                *next.entry(ns).or_insert(0.0) += p * q;
            }
        }
        if next.len() > limit {
            return Err(TestingError::EnumerationTooLarge {
                required: next.len(),
                limit,
            });
        }
        dist = next;
    }
    let mut suites: Vec<(TestSuite, f64)> = dist
        .into_iter()
        .map(|(set, p)| {
            let demands: Vec<DemandId> = set.iter().map(|i| DemandId::new(i as u32)).collect();
            let t = TestSuite::from_demands(space, demands)
                .expect("enumerated demands lie in the space");
            (t, p)
        })
        .collect();
    // Deterministic order for reproducible reports.
    suites.sort_by(|(a, _), (b, _)| a.demands().cmp(b.demands()));
    ExplicitSuitePopulation::new(suites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::demand::DemandSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn space(n: usize) -> DemandSpace {
        DemandSpace::new(n).unwrap()
    }

    #[test]
    fn explicit_population_normalises() {
        let t0 = TestSuite::empty(space(2));
        let t1 = TestSuite::exhaustive(space(2));
        let m = ExplicitSuitePopulation::new(vec![(t0, 1.0), (t1, 3.0)]).unwrap();
        let probs: Vec<f64> = m.iter().map(|(_, p)| p).collect();
        assert!((probs[0] - 0.25).abs() < 1e-12);
        assert!((probs[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn explicit_population_rejects_empty() {
        assert!(ExplicitSuitePopulation::new(vec![]).is_err());
        assert!(ExplicitSuitePopulation::uniform(vec![]).is_err());
    }

    #[test]
    fn expectation_over_measure() {
        let t0 = TestSuite::empty(space(2));
        let t1 = TestSuite::exhaustive(space(2));
        let m = ExplicitSuitePopulation::new(vec![(t0, 0.5), (t1, 0.5)]).unwrap();
        let mean_len = m.expect(|t| t.len() as f64);
        assert!((mean_len - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_follows_weights() {
        let t0 = TestSuite::empty(space(2));
        let t1 = TestSuite::exhaustive(space(2));
        let m = ExplicitSuitePopulation::new(vec![(t0, 0.9), (t1, 0.1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut empties = 0;
        for _ in 0..10_000 {
            if m.sample(&mut rng).is_empty() {
                empties += 1;
            }
        }
        assert!((empties as f64 / 10_000.0 - 0.9).abs() < 0.02);
    }

    #[test]
    fn iid_enumeration_two_uniform_draws() {
        let q = UsageProfile::uniform(space(2));
        let m = enumerate_iid_suites(&q, 2, 100).unwrap();
        assert_eq!(m.len(), 3);
        let mut by_set: BTreeMap<Vec<DemandId>, f64> = BTreeMap::new();
        for (t, p) in m.iter() {
            by_set.insert(t.demands().to_vec(), p);
        }
        assert!((by_set[&vec![d(0)]] - 0.25).abs() < 1e-12);
        assert!((by_set[&vec![d(1)]] - 0.25).abs() < 1e-12);
        assert!((by_set[&vec![d(0), d(1)]] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iid_enumeration_skewed_profile() {
        let q = UsageProfile::from_weights(space(2), vec![0.9, 0.1]).unwrap();
        let m = enumerate_iid_suites(&q, 1, 100).unwrap();
        assert_eq!(m.len(), 2);
        for (t, p) in m.iter() {
            if t.contains(d(0)) {
                assert!((p - 0.9).abs() < 1e-12);
            } else {
                assert!((p - 0.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn iid_enumeration_probabilities_sum_to_one() {
        let q = UsageProfile::from_weights(space(4), vec![0.4, 0.3, 0.2, 0.1]).unwrap();
        let m = enumerate_iid_suites(&q, 3, 1 << 8).unwrap();
        let total: f64 = m.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_enumeration_zero_size_is_empty_suite() {
        let q = UsageProfile::uniform(space(3));
        let m = enumerate_iid_suites(&q, 0, 10).unwrap();
        assert_eq!(m.len(), 1);
        let (t, p) = m.iter().next().unwrap();
        assert!(t.is_empty());
        assert!((p - 1.0).abs() < 1e-15);
    }

    #[test]
    fn iid_enumeration_respects_limit() {
        let q = UsageProfile::uniform(space(10));
        let err = enumerate_iid_suites(&q, 5, 4).unwrap_err();
        assert!(matches!(err, TestingError::EnumerationTooLarge { .. }));
    }

    #[test]
    fn iid_enumeration_ignores_zero_probability_demands() {
        let q = UsageProfile::from_weights(space(3), vec![0.5, 0.5, 0.0]).unwrap();
        let m = enumerate_iid_suites(&q, 2, 100).unwrap();
        for (t, _) in m.iter() {
            assert!(!t.contains(d(2)), "unreachable demand appeared in a suite");
        }
    }
}
