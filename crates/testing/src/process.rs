//! Debugging campaigns: executing a suite, judging failures, fixing
//! faults.
//!
//! The central semantics of §3: under a perfect oracle and perfect fixing,
//! running suite `t` against version `π` leaves exactly the faults whose
//! failure regions are disjoint from `t` ("it is sufficient for such a
//! change that x belong to the test suite … The inclusion of x in the test
//! suite, however, is not necessary for the score on x to change from 1 to
//! 0"). [`perfect_debug`] implements that closed form; [`debug_version`]
//! runs the general sequential process with arbitrary oracles and fixers;
//! [`back_to_back_debug`] implements §4.2.

use rand::RngCore;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use diversim_universe::fault::FaultModel;
use diversim_universe::version::Version;

use crate::fixing::Fixer;
use crate::oracle::{IdenticalFailureModel, Oracle};
use crate::suite::TestSuite;

/// Counters describing one debugging campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DebugLog {
    /// Demands executed.
    pub demands_run: u64,
    /// Executions on which the version failed.
    pub failures_observed: u64,
    /// Failures the oracle detected.
    pub failures_detected: u64,
    /// Faults removed by the fixer.
    pub faults_removed: u64,
}

/// Result of debugging one version: the tested version and its log.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugOutcome {
    /// The version after testing.
    pub version: Version,
    /// Campaign counters.
    pub log: DebugLog,
}

/// The closed form for perfect oracle + perfect fixing: the tested version
/// keeps exactly the faults whose failure regions are disjoint from the
/// suite's covered demands. Deterministic; no randomness is involved.
///
/// # Examples
///
/// ```
/// use diversim_testing::process::perfect_debug;
/// use diversim_testing::suite::TestSuite;
/// use diversim_universe::demand::{DemandId, DemandSpace};
/// use diversim_universe::fault::{FaultId, FaultModelBuilder};
/// use diversim_universe::version::Version;
///
/// let space = DemandSpace::new(3).unwrap();
/// let model = FaultModelBuilder::new(space)
///     .fault([DemandId::new(0), DemandId::new(1)])
///     .fault([DemandId::new(2)])
///     .build()
///     .unwrap();
/// let v = Version::from_faults(&model, [FaultId::new(0), FaultId::new(1)]);
/// let t = TestSuite::from_demands(space, vec![DemandId::new(1)]).unwrap();
/// let tested = perfect_debug(&v, &t, &model);
/// // Fault 0 (region {0,1}) is triggered and removed — including demand 0,
/// // which was never tested. Fault 1 (region {2}) survives.
/// assert!(!tested.fails_on(&model, DemandId::new(0)));
/// assert!(tested.fails_on(&model, DemandId::new(2)));
/// ```
pub fn perfect_debug(version: &Version, suite: &TestSuite, model: &FaultModel) -> Version {
    let covered = suite.demand_set();
    let doomed: Vec<_> = version
        .faults()
        .filter(|&f| model.triggered_by(f, covered))
        .collect();
    let mut tested = version.clone();
    tested.remove_faults(doomed);
    tested
}

/// Runs the sequential debugging process: demands are executed in suite
/// order; each failing execution is judged by `oracle`, and each detected
/// failure is handed to `fixer`.
///
/// With a perfect oracle and perfect fixer the result equals
/// [`perfect_debug`] (order is immaterial in that case); with imperfect
/// components the outcome is random and order-dependent, which is exactly
/// the §4.1 setting.
pub fn debug_version(
    version: &Version,
    suite: &TestSuite,
    model: &FaultModel,
    oracle: &dyn Oracle,
    fixer: &dyn Fixer,
    rng: &mut dyn RngCore,
) -> DebugOutcome {
    let mut current = version.clone();
    let mut log = DebugLog::default();
    for &x in suite.demands() {
        log.demands_run += 1;
        if current.fails_on(model, x) {
            log.failures_observed += 1;
            if oracle.detects(rng, x) {
                log.failures_detected += 1;
                log.faults_removed += fixer.fix(rng, model, &mut current, x) as u64;
            }
        }
    }
    DebugOutcome {
        version: current,
        log,
    }
}

/// Counters describing one back-to-back campaign over a version pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BackToBackLog {
    /// Demands executed (once per pair).
    pub demands_run: u64,
    /// Demands where exactly one version failed (always detected).
    pub single_failures: u64,
    /// Demands where both versions failed.
    pub coincident_failures: u64,
    /// Coincident failures that went undetected (identical wrong outputs).
    pub undetected_coincident: u64,
    /// Faults removed across both versions.
    pub faults_removed: u64,
}

/// Result of a back-to-back campaign: both tested versions and the log.
#[derive(Debug, Clone, PartialEq)]
pub struct BackToBackOutcome {
    /// First tested version.
    pub first: Version,
    /// Second tested version.
    pub second: Version,
    /// Campaign counters.
    pub log: BackToBackLog,
}

/// Back-to-back testing (§4.2): both versions execute every demand of the
/// shared suite; failures are detected by output mismatch, so no external
/// oracle is needed.
///
/// * exactly one version fails → mismatch, the failure is detected and the
///   failing version is fixed;
/// * both fail → detected only if the wrong outputs differ, governed by
///   `identical`; when detected, *both* versions are fixed.
///
/// With [`IdenticalFailureModel::Never`] the procedure is equivalent to
/// debugging both versions on the shared suite with a perfect oracle
/// (the paper's optimistic bound); with [`IdenticalFailureModel::Always`]
/// coincident failures are never repaired (the pessimistic bound).
pub fn back_to_back_debug(
    first: &Version,
    second: &Version,
    suite: &TestSuite,
    model: &FaultModel,
    identical: IdenticalFailureModel,
    fixer: &dyn Fixer,
    rng: &mut dyn RngCore,
) -> BackToBackOutcome {
    let mut v1 = first.clone();
    let mut v2 = second.clone();
    let mut log = BackToBackLog::default();
    for &x in suite.demands() {
        log.demands_run += 1;
        let f1 = v1.fails_on(model, x);
        let f2 = v2.fails_on(model, x);
        match (f1, f2) {
            (false, false) => {}
            (true, false) => {
                log.single_failures += 1;
                log.faults_removed += fixer.fix(rng, model, &mut v1, x) as u64;
            }
            (false, true) => {
                log.single_failures += 1;
                log.faults_removed += fixer.fix(rng, model, &mut v2, x) as u64;
            }
            (true, true) => {
                log.coincident_failures += 1;
                if identical.is_identical(rng) {
                    log.undetected_coincident += 1;
                } else {
                    log.faults_removed += fixer.fix(rng, model, &mut v1, x) as u64;
                    log.faults_removed += fixer.fix(rng, model, &mut v2, x) as u64;
                }
            }
        }
    }
    BackToBackOutcome {
        first: v1,
        second: v2,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixing::{ImperfectFixer, PerfectFixer};
    use crate::oracle::{ImperfectOracle, PerfectOracle};
    use diversim_universe::demand::{DemandId, DemandSpace};
    use diversim_universe::fault::{FaultId, FaultModelBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn f(i: u32) -> FaultId {
        FaultId::new(i)
    }

    fn space(n: usize) -> DemandSpace {
        DemandSpace::new(n).unwrap()
    }

    /// 4 demands; fault 0 → {0,1}, fault 1 → {1,2}, fault 2 → {3}.
    fn model() -> FaultModel {
        FaultModelBuilder::new(space(4))
            .fault([d(0), d(1)])
            .fault([d(1), d(2)])
            .fault([d(3)])
            .build()
            .unwrap()
    }

    #[test]
    fn perfect_debug_removes_triggered_faults_only() {
        let m = model();
        let v = Version::from_faults(&m, [f(0), f(1), f(2)]);
        let t = TestSuite::from_demands(m.space(), vec![d(2)]).unwrap();
        let tested = perfect_debug(&v, &t, &m);
        // Demand 2 triggers fault 1 only.
        assert!(!tested.has_fault(f(1)));
        assert!(tested.has_fault(f(0)));
        assert!(tested.has_fault(f(2)));
    }

    #[test]
    fn perfect_debug_with_empty_suite_is_identity() {
        let m = model();
        let v = Version::from_faults(&m, [f(0), f(2)]);
        let tested = perfect_debug(&v, &TestSuite::empty(m.space()), &m);
        assert_eq!(tested, v);
    }

    #[test]
    fn perfect_debug_with_exhaustive_suite_fixes_everything() {
        let m = model();
        let v = Version::from_faults(&m, [f(0), f(1), f(2)]);
        let tested = perfect_debug(&v, &TestSuite::exhaustive(m.space()), &m);
        assert!(tested.is_correct());
    }

    #[test]
    fn sequential_perfect_equals_closed_form() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(0);
        // Every subset of faults × a few suites.
        let suites = [
            TestSuite::empty(m.space()),
            TestSuite::from_demands(m.space(), vec![d(1)]).unwrap(),
            TestSuite::from_demands(m.space(), vec![d(3), d(0)]).unwrap(),
            TestSuite::exhaustive(m.space()),
        ];
        for mask in 0u32..8 {
            let faults: Vec<FaultId> = (0..3)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| f(i as u32))
                .collect();
            let v = Version::from_faults(&m, faults);
            for t in &suites {
                let closed = perfect_debug(&v, t, &m);
                let seq = debug_version(
                    &v,
                    t,
                    &m,
                    &PerfectOracle::new(),
                    &PerfectFixer::new(),
                    &mut rng,
                );
                assert_eq!(seq.version, closed, "mismatch for mask {mask} suite {t}");
            }
        }
    }

    #[test]
    fn debug_log_counts_are_consistent() {
        let m = model();
        let v = Version::from_faults(&m, [f(0), f(1)]);
        let t = TestSuite::from_demands(m.space(), vec![d(0), d(1), d(3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = debug_version(
            &v,
            &t,
            &m,
            &PerfectOracle::new(),
            &PerfectFixer::new(),
            &mut rng,
        );
        assert_eq!(out.log.demands_run, 3);
        // Demand 0 fails (fault 0) → removes fault 0; demand 1 still fails
        // (fault 1) → removes fault 1; demand 3 passes.
        assert_eq!(out.log.failures_observed, 2);
        assert_eq!(out.log.failures_detected, 2);
        assert_eq!(out.log.faults_removed, 2);
        assert!(out.version.is_correct());
    }

    #[test]
    fn blind_oracle_never_fixes() {
        let m = model();
        let v = Version::from_faults(&m, [f(0)]);
        let t = TestSuite::exhaustive(m.space());
        let mut rng = StdRng::seed_from_u64(2);
        let out = debug_version(
            &v,
            &t,
            &m,
            &ImperfectOracle::new(0.0).unwrap(),
            &PerfectFixer::new(),
            &mut rng,
        );
        assert_eq!(out.version, v);
        assert!(out.log.failures_observed > 0);
        assert_eq!(out.log.failures_detected, 0);
    }

    #[test]
    fn imperfect_outcome_bounded_by_perfect_and_untested() {
        // §4.1: tested scores are no better than perfect testing and no
        // worse than no testing. In fault terms: perfect ⊆ imperfect ⊆
        // original.
        let m = model();
        let v = Version::from_faults(&m, [f(0), f(1), f(2)]);
        let t = TestSuite::from_demands(m.space(), vec![d(1), d(3)]).unwrap();
        let perfect = perfect_debug(&v, &t, &m);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let out = debug_version(
                &v,
                &t,
                &m,
                &ImperfectOracle::new(0.5).unwrap(),
                &ImperfectFixer::new(0.5).unwrap(),
                &mut rng,
            );
            assert!(
                perfect.fault_set().is_subset(out.version.fault_set()),
                "imperfect testing removed a fault perfect testing kept"
            );
            assert!(
                out.version.fault_set().is_subset(v.fault_set()),
                "imperfect testing added a fault"
            );
        }
    }

    #[test]
    fn back_to_back_never_identical_equals_perfect_oracle() {
        let m = model();
        let v1 = Version::from_faults(&m, [f(0), f(2)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        let t = TestSuite::exhaustive(m.space());
        let mut rng = StdRng::seed_from_u64(4);
        let out = back_to_back_debug(
            &v1,
            &v2,
            &t,
            &m,
            IdenticalFailureModel::Never,
            &PerfectFixer::new(),
            &mut rng,
        );
        assert_eq!(out.first, perfect_debug(&v1, &t, &m));
        assert_eq!(out.second, perfect_debug(&v2, &t, &m));
        assert_eq!(out.log.undetected_coincident, 0);
    }

    #[test]
    fn back_to_back_always_identical_skips_coincident_failures() {
        let m = model();
        // Both versions share fault 2 (region {3}) — a coincident failure
        // on demand 3 that pessimistic b2b can never see.
        let v1 = Version::from_faults(&m, [f(0), f(2)]);
        let v2 = Version::from_faults(&m, [f(2)]);
        let t = TestSuite::exhaustive(m.space());
        let mut rng = StdRng::seed_from_u64(5);
        let out = back_to_back_debug(
            &v1,
            &v2,
            &t,
            &m,
            IdenticalFailureModel::Always,
            &PerfectFixer::new(),
            &mut rng,
        );
        // The shared fault survives in both versions.
        assert!(out.first.has_fault(f(2)));
        assert!(out.second.has_fault(f(2)));
        // The non-shared fault of v1 is caught via mismatch.
        assert!(!out.first.has_fault(f(0)));
        assert!(out.log.undetected_coincident > 0);
    }

    #[test]
    fn back_to_back_pessimistic_system_failures_survive_singleton() {
        // With singleton regions (the paper's pure score model), the
        // pessimistic bound is exact: the system's failure set is
        // untouched by back-to-back testing.
        let m = FaultModelBuilder::new(space(3))
            .singleton_faults()
            .build()
            .unwrap();
        let v1 = Version::from_faults(&m, [f(0), f(1)]);
        let v2 = Version::from_faults(&m, [f(1), f(2)]);
        let t = TestSuite::exhaustive(m.space());
        let mut rng = StdRng::seed_from_u64(6);
        let out = back_to_back_debug(
            &v1,
            &v2,
            &t,
            &m,
            IdenticalFailureModel::Always,
            &PerfectFixer::new(),
            &mut rng,
        );
        // Coincident failure on demand 1 remains in both versions.
        assert!(out.first.fails_on(&m, d(1)));
        assert!(out.second.fails_on(&m, d(1)));
        // All single failures were repaired.
        assert!(!out.first.fails_on(&m, d(0)));
        assert!(!out.second.fails_on(&m, d(2)));
    }

    #[test]
    fn back_to_back_log_counts() {
        let m = model();
        let v1 = Version::from_faults(&m, [f(0)]); // fails on 0, 1
        let v2 = Version::from_faults(&m, [f(1)]); // fails on 1, 2
        let t = TestSuite::exhaustive(m.space()); // demands 0..4 in order
        let mut rng = StdRng::seed_from_u64(7);
        let out = back_to_back_debug(
            &v1,
            &v2,
            &t,
            &m,
            IdenticalFailureModel::Never,
            &PerfectFixer::new(),
            &mut rng,
        );
        // Demand 0: only v1 fails → single failure, fault 0 fixed.
        // Demand 1: v1 already fixed, v2 fails → single failure, fault 1
        // fixed. Demand 2, 3: no failures.
        assert_eq!(out.log.single_failures, 2);
        assert_eq!(out.log.coincident_failures, 0);
        assert_eq!(out.log.faults_removed, 2);
        assert!(out.first.is_correct() && out.second.is_correct());
    }
}
