//! Test suites: ordered sequences of demands with a precomputed demand set.
//!
//! "The testing thus includes: i) a sequence of demands on which software
//! is executed (a test suite) …" (§2). The *order* matters for sequential
//! debugging with imperfect oracles/fixers; the *set* is what determines
//! the outcome of perfect testing (a fault survives iff its failure region
//! misses the suite entirely), so both views are kept.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use diversim_universe::bitset::BitSet;
use diversim_universe::demand::{DemandId, DemandSpace};

use crate::error::TestingError;

/// A test suite `t ∈ Ξ`: a sequence of demands over a demand space.
///
/// # Examples
///
/// ```
/// use diversim_testing::suite::TestSuite;
/// use diversim_universe::demand::{DemandId, DemandSpace};
///
/// let space = DemandSpace::new(5).unwrap();
/// let t = TestSuite::from_demands(space, vec![DemandId::new(1), DemandId::new(3)]).unwrap();
/// assert_eq!(t.len(), 2);
/// assert!(t.contains(DemandId::new(3)));
/// assert!(!t.contains(DemandId::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TestSuite {
    space: DemandSpace,
    demands: Vec<DemandId>,
    demand_set: BitSet,
}

impl TestSuite {
    /// The empty suite (the paper's `∅`: no testing).
    pub fn empty(space: DemandSpace) -> Self {
        Self {
            space,
            demands: Vec::new(),
            demand_set: BitSet::new(space.len()),
        }
    }

    /// Builds a suite from an ordered sequence of demands.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`diversim_universe::UniverseError::DemandOutOfRange`]
    /// if any demand lies outside the space.
    pub fn from_demands(space: DemandSpace, demands: Vec<DemandId>) -> Result<Self, TestingError> {
        let mut demand_set = BitSet::new(space.len());
        for &x in &demands {
            space.check(x)?;
            demand_set.insert(x.index());
        }
        Ok(Self {
            space,
            demands,
            demand_set,
        })
    }

    /// The exhaustive suite: every demand of the space exactly once, in
    /// index order.
    pub fn exhaustive(space: DemandSpace) -> Self {
        let demands: Vec<DemandId> = space.iter().collect();
        let demand_set = BitSet::full(space.len());
        Self {
            space,
            demands,
            demand_set,
        }
    }

    /// The demand space the suite is defined over.
    pub fn space(&self) -> DemandSpace {
        self.space
    }

    /// Number of demands in the sequence (with repetitions).
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// Returns `true` if the suite runs no demands.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Number of *distinct* demands in the suite.
    pub fn distinct_len(&self) -> usize {
        self.demand_set.len()
    }

    /// The demand sequence, in execution order.
    pub fn demands(&self) -> &[DemandId] {
        &self.demands
    }

    /// The set of demands covered, as a bit set over demand indices.
    pub fn demand_set(&self) -> &BitSet {
        &self.demand_set
    }

    /// Returns `true` if the suite executes demand `x` at least once.
    pub fn contains(&self, x: DemandId) -> bool {
        self.demand_set.contains(x.index())
    }

    /// Concatenates two suites (the §3.4.1 *merged* suite: "running twice
    /// as long a test (merging the two generated test suites)").
    ///
    /// # Panics
    ///
    /// Panics if the suites are over different demand spaces.
    pub fn merged(&self, other: &TestSuite) -> TestSuite {
        assert_eq!(
            self.space, other.space,
            "cannot merge suites over different spaces"
        );
        let mut demands = self.demands.clone();
        demands.extend_from_slice(&other.demands);
        let mut demand_set = self.demand_set.clone();
        demand_set.union_with(&other.demand_set);
        TestSuite {
            space: self.space,
            demands,
            demand_set,
        }
    }
}

impl std::fmt::Display for TestSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "suite[n={}, distinct={}]",
            self.len(),
            self.distinct_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DemandId {
        DemandId::new(i)
    }

    fn space(n: usize) -> DemandSpace {
        DemandSpace::new(n).unwrap()
    }

    #[test]
    fn empty_suite() {
        let t = TestSuite::empty(space(4));
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.distinct_len(), 0);
        assert!(!t.contains(d(0)));
    }

    #[test]
    fn repeated_demands_counted_once_in_set() {
        let t = TestSuite::from_demands(space(4), vec![d(1), d(1), d(2)]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.distinct_len(), 2);
        assert_eq!(t.demands(), &[d(1), d(1), d(2)]);
    }

    #[test]
    fn out_of_range_demand_rejected() {
        assert!(TestSuite::from_demands(space(2), vec![d(5)]).is_err());
    }

    #[test]
    fn exhaustive_covers_everything() {
        let t = TestSuite::exhaustive(space(6));
        assert_eq!(t.len(), 6);
        assert_eq!(t.distinct_len(), 6);
        for x in space(6).iter() {
            assert!(t.contains(x));
        }
    }

    #[test]
    fn merged_concatenates_in_order() {
        let a = TestSuite::from_demands(space(5), vec![d(0), d(1)]).unwrap();
        let b = TestSuite::from_demands(space(5), vec![d(1), d(4)]).unwrap();
        let m = a.merged(&b);
        assert_eq!(m.demands(), &[d(0), d(1), d(1), d(4)]);
        assert_eq!(m.distinct_len(), 3);
        assert_eq!(m.len(), 4);
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn merged_requires_same_space() {
        let a = TestSuite::empty(space(2));
        let b = TestSuite::empty(space(3));
        let _ = a.merged(&b);
    }

    #[test]
    fn display_shows_sizes() {
        let t = TestSuite::from_demands(space(3), vec![d(0), d(0)]).unwrap();
        assert_eq!(t.to_string(), "suite[n=2, distinct=1]");
    }
}
