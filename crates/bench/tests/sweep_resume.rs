//! Integration tests for the sharded, resumable sweep engine: the
//! ISSUE-8 acceptance criteria at the library level.
//!
//! - An unsharded sweep must reproduce `diversim run` byte for byte,
//!   for every registered experiment.
//! - Cells (and the merged outputs) must not depend on the thread
//!   count.
//! - Complementary shards must partition the cell set, and a `--resume`
//!   merge over their united store must serve every cell from cache and
//!   still match the direct run.
//! - A killed sweep (here: half the cell files deleted) must resume by
//!   recomputing exactly the missing cells.
//! - Truncated or hand-edited cell files must be detected, recomputed,
//!   and leave the final outputs untouched.

use std::fs;
use std::path::PathBuf;

use diversim_bench::engine::{run_experiment, RunOutcome};
use diversim_bench::registry;
use diversim_bench::spec::Profile;
use diversim_bench::sweep::{sweep_experiment, CellStore, Shard, SweepOptions, SweepRun};

fn temp_store(tag: &str) -> CellStore {
    let dir =
        std::env::temp_dir().join(format!("diversim-sweep-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    CellStore::new(dir)
}

fn cleanup(store: &CellStore) {
    let _ = fs::remove_dir_all(store.dir());
}

fn opts(threads: usize, shard: Option<Shard>, resume: bool) -> SweepOptions {
    SweepOptions {
        profile: Profile::Smoke,
        threads,
        shard,
        resume,
        quiet: true,
    }
}

fn assert_matches_direct(run: &SweepRun, direct: &RunOutcome) {
    assert_eq!(
        run.outcome.json, direct.json,
        "{}: sweep JSON drifted from the direct run",
        direct.spec.name
    );
    assert_eq!(
        run.outcome.csv, direct.csv,
        "{}: sweep CSV drifted from the direct run",
        direct.spec.name
    );
}

fn cell_files(store: &CellStore) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(store.dir())
        .expect("store dir exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    files.sort();
    files
}

#[test]
fn unsharded_sweep_reproduces_every_direct_run_byte_for_byte() {
    let store = temp_store("full");
    for spec in registry::all() {
        let run = sweep_experiment(spec, &store, &opts(2, None, false));
        let direct = run_experiment(spec, Profile::Smoke, 2, true);
        assert_matches_direct(&run, &direct);
        assert!(run.stats.computed > 0, "{} declares cells", spec.name);
        assert_eq!(run.stats.hits, 0);
        assert_eq!(run.stats.skipped, 0);
        assert_eq!(run.stats.corrupt, 0);
    }
    cleanup(&store);
}

#[test]
fn cells_and_outputs_are_thread_count_invariant() {
    let one = temp_store("threads1");
    let eight = temp_store("threads8");
    for key in ["e01", "e06"] {
        let spec = registry::find(key).expect("registered");
        let run_1 = sweep_experiment(spec, &one, &opts(1, None, false));
        let run_8 = sweep_experiment(spec, &eight, &opts(8, None, false));
        assert_eq!(run_1.outcome.json, run_8.outcome.json, "{key} json");
        assert_eq!(run_1.outcome.csv, run_8.outcome.csv, "{key} csv");
    }
    // The persisted cells themselves must agree file by file.
    let files_1 = cell_files(&one);
    let files_8 = cell_files(&eight);
    assert_eq!(files_1.len(), files_8.len());
    for (a, b) in files_1.iter().zip(&files_8) {
        assert_eq!(a.file_name(), b.file_name());
        assert_eq!(
            fs::read_to_string(a).expect("readable"),
            fs::read_to_string(b).expect("readable"),
            "{} differs between 1 and 8 threads",
            a.display()
        );
    }
    cleanup(&one);
    cleanup(&eight);
}

#[test]
fn complementary_shards_merge_into_the_unsharded_result() {
    let store = temp_store("shards");
    let specs = ["e01", "e03", "e14"].map(|k| registry::find(k).expect("registered"));

    let mut per_shard = [0u64, 0];
    let mut declared = 0u64;
    for (i, slot) in per_shard.iter_mut().enumerate() {
        let shard = Shard {
            index: i as u64,
            count: 2,
        };
        for spec in specs {
            // Different thread counts per shard: the merge must not care.
            let run = sweep_experiment(spec, &store, &opts(1 + 3 * i, Some(shard), false));
            assert_eq!(run.stats.hits, 0);
            *slot += run.stats.computed;
            if i == 0 {
                declared += run.stats.declared();
            }
        }
    }
    assert_eq!(
        per_shard[0] + per_shard[1],
        declared,
        "shards must partition the cell set"
    );
    assert!(per_shard.iter().all(|&c| c > 0), "both shards own cells");

    // The merge: an unsharded resume serves everything from cache.
    for spec in specs {
        let merged = sweep_experiment(spec, &store, &opts(2, None, true));
        assert_eq!(merged.stats.computed, 0, "{}: merge recomputed", spec.name);
        assert_eq!(merged.stats.hits, merged.stats.declared());
        let direct = run_experiment(spec, Profile::Smoke, 2, true);
        assert_matches_direct(&merged, &direct);
    }
    cleanup(&store);
}

#[test]
fn resume_recomputes_exactly_the_missing_cells() {
    let store = temp_store("killed");
    let spec = registry::find("e06").expect("registered");
    let cold = sweep_experiment(spec, &store, &opts(2, None, false));
    let files = cell_files(&store);
    assert_eq!(files.len() as u64, cold.stats.computed);

    // Simulate a killed sweep: every other cell file vanishes.
    let dropped: Vec<&PathBuf> = files.iter().step_by(2).collect();
    for path in &dropped {
        fs::remove_file(path).expect("removable");
    }

    let resumed = sweep_experiment(spec, &store, &opts(2, None, true));
    assert_eq!(resumed.stats.computed, dropped.len() as u64);
    assert_eq!(
        resumed.stats.hits,
        cold.stats.computed - dropped.len() as u64
    );
    assert_eq!(resumed.stats.corrupt, 0);
    assert_eq!(resumed.outcome.json, cold.outcome.json);
    assert_eq!(resumed.outcome.csv, cold.outcome.csv);
    cleanup(&store);
}

#[test]
fn corrupt_cells_are_detected_recomputed_and_do_not_change_the_output() {
    let store = temp_store("corrupt");
    let spec = registry::find("e03").expect("registered");
    let cold = sweep_experiment(spec, &store, &opts(2, None, false));
    let files = cell_files(&store);
    assert!(files.len() >= 2, "need two cells to corrupt");

    // Truncation (invalid JSON)…
    let text = fs::read_to_string(&files[0]).expect("readable");
    fs::write(&files[0], &text[..text.len() / 2]).expect("writable");
    // …and a hand edit: bump the first digit inside the values array so
    // the document still parses but the checksum no longer matches.
    let text = fs::read_to_string(&files[1]).expect("readable");
    let start = text.find("\"values\":[").expect("values array") + "\"values\":[".len();
    let offset = text[start..]
        .find(|c: char| c.is_ascii_digit())
        .expect("a digit");
    let mut bytes = text.into_bytes();
    let d = &mut bytes[start + offset];
    *d = b'0' + (*d - b'0' + 1) % 10;
    fs::write(&files[1], bytes).expect("writable");

    let resumed = sweep_experiment(spec, &store, &opts(2, None, true));
    assert_eq!(resumed.stats.corrupt, 2, "both damaged cells detected");
    assert_eq!(resumed.stats.computed, 2, "both recomputed");
    assert_eq!(resumed.stats.hits, cold.stats.computed - 2);
    assert_eq!(resumed.outcome.json, cold.outcome.json);
    assert_eq!(resumed.outcome.csv, cold.outcome.csv);

    // The recomputed files must be whole again: a second resume is all
    // cache hits.
    let warm = sweep_experiment(spec, &store, &opts(2, None, true));
    assert_eq!(warm.stats.corrupt, 0);
    assert_eq!(warm.stats.hits, warm.stats.declared());
    cleanup(&store);
}
