//! Golden-file tests for the SVG renderer: the exact bytes of three
//! tricky cases — an empty figure, a single-point series, and
//! log-scale axes — are pinned under `tests/golden/`. Any rendering
//! change shows up as a reviewable SVG diff.
//!
//! To re-bless after an intentional renderer change:
//! `DIVERSIM_UPDATE_GOLDEN=1 cargo test -p diversim-bench --test render_golden`

use std::path::PathBuf;

use diversim_bench::render::{render_svg, Figure, Series};
use diversim_bench::spec::Scale;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).join(name)
}

fn assert_matches_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("DIVERSIM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, rendered).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} missing ({e}); bless with DIVERSIM_UPDATE_GOLDEN=1 cargo test -p diversim-bench --test render_golden",
            path.display()
        )
    });
    assert_eq!(
        golden,
        rendered,
        "{} drifted; re-bless with DIVERSIM_UPDATE_GOLDEN=1 if the change is intentional",
        path.display()
    );
}

#[test]
fn golden_empty_series() {
    let mut figure = Figure::new("empty series", "x", "y");
    figure.series.push(Series {
        label: "nothing measured".into(),
        points: Vec::new(),
        band: Vec::new(),
    });
    figure.series.push(Series {
        label: "also empty".into(),
        points: Vec::new(),
        band: Vec::new(),
    });
    let svg = render_svg(&figure);
    assert!(svg.contains("no plottable data"));
    assert_matches_golden("empty_series.svg", &svg);
}

#[test]
fn golden_single_point_series() {
    let mut figure = Figure::new("single point", "suite size n", "system pfd");
    figure.series.push(Series {
        label: "lone measurement".into(),
        points: vec![(4.0, 0.25)],
        band: Vec::new(),
    });
    let svg = render_svg(&figure);
    assert!(!svg.contains("<polyline"), "one point draws no line");
    assert_matches_golden("single_point.svg", &svg);
}

#[test]
fn golden_log_scale_axes() {
    let mut figure = Figure::new("log-log decay", "target pfd", "demands");
    figure.x_scale = Scale::Log;
    figure.y_scale = Scale::Log;
    figure.series.push(Series {
        label: "cost".into(),
        // Includes a zero y value that a log axis must skip.
        points: vec![(0.05, 60.0), (0.02, 150.0), (0.01, 300.0), (0.005, 0.0)],
        band: Vec::new(),
    });
    figure.series.push(Series {
        label: "floor".into(),
        points: vec![(0.05, 10.0), (0.005, 10.0)],
        band: Vec::new(),
    });
    let svg = render_svg(&figure);
    assert!(svg.contains("0.01"), "decade ticks labelled");
    assert_matches_golden("log_scale.svg", &svg);
}
