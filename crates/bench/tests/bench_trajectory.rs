//! Drift guard for the committed benchmark trajectories.
//!
//! The workspace root archives measured benchmark results as
//! `BENCH_*.json` files (written by the vendored criterion harness when
//! `DIVERSIM_BENCH_JSON` is set, as the CI `bench-measure` job does).
//! The README's *Perf trajectory* section quotes them, so a file that
//! stops parsing as the engine's bench schema — an array of
//! `{"id", "min_ns", "median_ns", "max_ns"}` objects — would silently
//! rot the documentation. This test pins the schema and the invariants
//! every real measurement satisfies.

use std::path::Path;

use diversim_bench::json::{self, Value};
use diversim_bench::serve::loadgen::LOADGEN_SCHEMA;
use diversim_bench::sweep::SWEEP_SCALING_SCHEMA;

/// Every trajectory file the repository commits to the workspace root.
const COMMITTED: &[&str] = &[
    "BENCH_hot_paths.json",
    "BENCH_kernel_scaling.json",
    "BENCH_regimes.json",
    "BENCH_runner_scaling.json",
    "BENCH_scenario_overhead.json",
];

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Parses one trajectory file and checks every record against the
/// harness's output schema.
fn check_trajectory(name: &str) {
    let path = workspace_root().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed trajectory {name} unreadable: {e}"));
    let value = json::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
    let records = value
        .as_array()
        .unwrap_or_else(|| panic!("{name}: top level must be an array"));
    assert!(
        !records.is_empty(),
        "{name}: an empty trajectory guards nothing"
    );
    for (i, rec) in records.iter().enumerate() {
        let id = rec
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{name}[{i}]: missing string field \"id\""));
        assert!(!id.is_empty(), "{name}[{i}]: empty benchmark id");
        let field = |key: &str| -> f64 {
            rec.get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{name}[{i}] ({id}): missing numeric field {key:?}"))
        };
        let (min, median, max) = (field("min_ns"), field("median_ns"), field("max_ns"));
        assert!(
            min > 0.0 && min <= median && median <= max,
            "{name}[{i}] ({id}): expected 0 < min ≤ median ≤ max, got {min}/{median}/{max}"
        );
    }
}

#[test]
fn committed_trajectories_parse_as_the_bench_schema() {
    for name in COMMITTED {
        check_trajectory(name);
    }
}

/// Drift guard for the committed serve-loadgen trajectory, and the
/// check the CI soak job replays against fresh loadgen output (set
/// `DIVERSIM_LOADGEN_JSON` to point it at another file). The report
/// must carry zero protocol errors, positive throughput, both cache-hot
/// and cache-cold workloads, and ordered latency percentiles.
#[test]
fn serve_loadgen_trajectory_parses_and_shows_a_clean_run() {
    let path = match std::env::var("DIVERSIM_LOADGEN_JSON") {
        Ok(p) => Path::new(&p).to_path_buf(),
        Err(_) => workspace_root().join("BENCH_serve_loadgen.json"),
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("loadgen trajectory {} unreadable: {e}", path.display()));
    let doc = json::parse(&text).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(LOADGEN_SCHEMA),
        "schema string drifted"
    );
    let num = |key: &str| -> f64 {
        doc.get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing numeric field {key:?}"))
    };
    assert_eq!(num("errors"), 0.0, "committed run must be protocol-clean");
    assert!(num("requests") > 0.0 && num("clients") > 0.0);
    assert!(num("throughput_rps") > 0.0);
    let workloads = doc
        .get("workloads")
        .and_then(Value::as_array)
        .expect("workloads array");
    for wanted in ["cache_hot/estimate", "cache_hot/growth", "cache_cold"] {
        assert!(
            workloads.iter().any(|w| w
                .get("id")
                .and_then(Value::as_str)
                .is_some_and(|id| id.contains(wanted))),
            "trajectory lost the {wanted} workload"
        );
    }
    for w in workloads {
        let id = w.get("id").and_then(Value::as_str).expect("workload id");
        let field = |key: &str| -> f64 {
            w.get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{id}: missing numeric field {key:?}"))
        };
        assert!(field("requests") > 0.0, "{id}: empty workload");
        let (min, p50, p99, max) = (
            field("min_ns"),
            field("p50_ns"),
            field("p99_ns"),
            field("max_ns"),
        );
        assert!(
            min > 0.0 && min <= p50 && p50 <= p99 && p99 <= max,
            "{id}: expected 0 < min ≤ p50 ≤ p99 ≤ max, got {min}/{p50}/{p99}/{max}"
        );
    }
}

/// Drift guard for the committed sweep-scaling trajectory, and the
/// check the CI shard jobs replay against a freshly generated file (set
/// `DIVERSIM_SWEEP_JSON` to point it elsewhere). The document records
/// one cold `diversim sweep` pass and one fully cached `--resume` pass
/// over the same experiments; a resume that recomputes anything, or a
/// cache that fails to deliver a clear win, is a regression. The ≥5×
/// headline is asserted for the committed file only — a CI-fresh file
/// on loaded shared runners still must be warm-faster-than-cold, but
/// with a relaxed margin.
#[test]
fn sweep_scaling_trajectory_shows_the_cache_working() {
    let (path, committed) = match std::env::var("DIVERSIM_SWEEP_JSON") {
        Ok(p) => (Path::new(&p).to_path_buf(), false),
        Err(_) => (workspace_root().join("BENCH_sweep_scaling.json"), true),
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("sweep trajectory {} unreadable: {e}", path.display()));
    let doc = json::parse(&text).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(SWEEP_SCALING_SCHEMA),
        "schema string drifted"
    );
    let num = |key: &str| -> f64 {
        doc.get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing numeric field {key:?}"))
    };
    assert!(
        doc.get("profile").and_then(Value::as_str).is_some(),
        "missing profile string"
    );
    assert!(num("threads") >= 1.0 && num("experiments") >= 1.0);
    let cells = num("cells");
    assert!(cells > 0.0, "a sweep with no cells measures nothing");
    // The cold pass computes every cell; the warm pass serves every one
    // of them from the store without recomputing.
    assert_eq!(num("cold_computed"), cells, "cold pass must compute all");
    assert_eq!(num("warm_hits"), cells, "warm pass must hit on all");
    assert_eq!(num("warm_computed"), 0.0, "warm pass recomputed cells");
    let (cold, warm) = (num("cold_ns"), num("warm_ns"));
    assert!(cold > 0.0 && warm > 0.0);
    let speedup = num("speedup");
    assert!(
        (speedup - cold / warm).abs() <= 0.01 * speedup.abs().max(1.0),
        "speedup field disagrees with cold_ns/warm_ns"
    );
    let floor = if committed { 5.0 } else { 1.0 };
    assert!(
        speedup >= floor,
        "warm sweep is only {speedup:.1}x faster than cold (floor {floor}x)"
    );
}

/// Loads a committed trajectory and returns its benchmark ids.
fn trajectory_ids(name: &str) -> Vec<String> {
    let path = workspace_root().join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name} unreadable: {e}"));
    json::parse(&text)
        .expect("valid JSON")
        .as_array()
        .expect("array")
        .iter()
        .map(|r| r.get("id").and_then(Value::as_str).expect("id").to_string())
        .collect()
}

/// The hot_paths trajectory must keep every substrate hot path on the
/// record: scoring, sampling, debugging and the difficulty vectors.
#[test]
fn hot_paths_trajectory_covers_every_substrate_path() {
    let ids = trajectory_ids("BENCH_hot_paths.json");
    for wanted in [
        "score/fails_on",
        "score/failure_set",
        "score/pfd",
        "sample/version_from_bernoulli",
        "sample/suite_generation",
        "debug/perfect_debug",
        "difficulty/theta_vector",
        "difficulty/xi_vector",
    ] {
        assert!(
            ids.iter().any(|id| id.contains(wanted)),
            "trajectory lost the {wanted} measurements"
        );
    }
}

/// The regimes trajectory must cover the paper-level computations:
/// exact marginals under both suite assignments, every campaign regime,
/// the structure-function system campaigns and the growth path.
#[test]
fn regimes_trajectory_covers_campaigns_and_systems() {
    let ids = trajectory_ids("BENCH_regimes.json");
    for wanted in [
        "exact/marginal_analysis/shared",
        "exact/marginal_analysis/independent",
        "exact/enumerate_iid_suites",
        "sim/pair_campaign/independent",
        "sim/pair_campaign/shared",
        "sim/pair_campaign/back_to_back",
        "sim/system_campaign/and-2",
        "sim/system_campaign/2-of-3",
        "sim/system_campaign/nested-2x2",
        "sim/growth_replication",
    ] {
        assert!(
            ids.iter().any(|id| id.contains(wanted)),
            "trajectory lost the {wanted} measurements"
        );
    }
}

/// The scenario_overhead trajectory must keep both sides of the
/// prepared-scenario comparison for every fixture world it quotes.
#[test]
fn scenario_overhead_trajectory_covers_both_sides() {
    let ids = trajectory_ids("BENCH_scenario_overhead.json");
    for world in ["small_graded", "medium_cascade", "large"] {
        for side in ["prepared", "rebuild_per_replication"] {
            assert!(
                ids.iter().any(|id| id.contains(world) && id.contains(side)),
                "trajectory lost the {world}/{side} measurements"
            );
        }
    }
}

/// The kernel_scaling trajectory must carry both sides of the
/// comparison the README quotes: the packed-kernel path and the retired
/// per-demand baseline, for every region profile.
#[test]
fn kernel_trajectory_covers_both_paths_and_all_profiles() {
    let path = workspace_root().join("BENCH_kernel_scaling.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_kernel_scaling.json unreadable");
    let value = json::parse(&text).expect("valid JSON");
    let ids: Vec<String> = value
        .as_array()
        .expect("array")
        .iter()
        .map(|r| r.get("id").and_then(Value::as_str).expect("id").to_string())
        .collect();
    for profile in ["dense", "sparse", "skewed"] {
        for side in ["kernel", "per_demand"] {
            assert!(
                ids.iter()
                    .any(|id| id.contains(profile) && id.contains(side)),
                "trajectory lost the {side} measurements for the {profile} profile"
            );
        }
    }
    // The headline claim: at 10⁵+ demands on the dense profile the
    // kernel must hold a ≥5× lead over the retired per-demand path.
    for n in ["100000", "1000000"] {
        let median = |side: &str| -> f64 {
            let id = format!("kernel_scaling/dense/{side}/{n}");
            value
                .as_array()
                .unwrap()
                .iter()
                .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
                .unwrap_or_else(|| panic!("missing {id}"))
                .get("median_ns")
                .and_then(Value::as_f64)
                .expect("median_ns")
        };
        let speedup = median("per_demand") / median("kernel");
        assert!(
            speedup >= 5.0,
            "dense/{n}: committed trajectory shows only {speedup:.1}x kernel speedup"
        );
    }
}
