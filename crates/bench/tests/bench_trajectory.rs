//! Drift guard for the committed benchmark trajectories.
//!
//! The workspace root archives measured benchmark results as
//! `BENCH_*.json` files (written by the vendored criterion harness when
//! `DIVERSIM_BENCH_JSON` is set, as the CI `bench-measure` job does).
//! The README's *Perf trajectory* section quotes them, so a file that
//! stops parsing as the engine's bench schema — an array of
//! `{"id", "min_ns", "median_ns", "max_ns"}` objects — would silently
//! rot the documentation. This test pins the schema and the invariants
//! every real measurement satisfies.

use std::path::Path;

use diversim_bench::json::{self, Value};

/// Every trajectory file the repository commits to the workspace root.
const COMMITTED: &[&str] = &["BENCH_kernel_scaling.json", "BENCH_runner_scaling.json"];

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Parses one trajectory file and checks every record against the
/// harness's output schema.
fn check_trajectory(name: &str) {
    let path = workspace_root().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed trajectory {name} unreadable: {e}"));
    let value = json::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
    let records = value
        .as_array()
        .unwrap_or_else(|| panic!("{name}: top level must be an array"));
    assert!(
        !records.is_empty(),
        "{name}: an empty trajectory guards nothing"
    );
    for (i, rec) in records.iter().enumerate() {
        let id = rec
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{name}[{i}]: missing string field \"id\""));
        assert!(!id.is_empty(), "{name}[{i}]: empty benchmark id");
        let field = |key: &str| -> f64 {
            rec.get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{name}[{i}] ({id}): missing numeric field {key:?}"))
        };
        let (min, median, max) = (field("min_ns"), field("median_ns"), field("max_ns"));
        assert!(
            min > 0.0 && min <= median && median <= max,
            "{name}[{i}] ({id}): expected 0 < min ≤ median ≤ max, got {min}/{median}/{max}"
        );
    }
}

#[test]
fn committed_trajectories_parse_as_the_bench_schema() {
    for name in COMMITTED {
        check_trajectory(name);
    }
}

/// The kernel_scaling trajectory must carry both sides of the
/// comparison the README quotes: the packed-kernel path and the retired
/// per-demand baseline, for every region profile.
#[test]
fn kernel_trajectory_covers_both_paths_and_all_profiles() {
    let path = workspace_root().join("BENCH_kernel_scaling.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_kernel_scaling.json unreadable");
    let value = json::parse(&text).expect("valid JSON");
    let ids: Vec<String> = value
        .as_array()
        .expect("array")
        .iter()
        .map(|r| r.get("id").and_then(Value::as_str).expect("id").to_string())
        .collect();
    for profile in ["dense", "sparse", "skewed"] {
        for side in ["kernel", "per_demand"] {
            assert!(
                ids.iter()
                    .any(|id| id.contains(profile) && id.contains(side)),
                "trajectory lost the {side} measurements for the {profile} profile"
            );
        }
    }
    // The headline claim: at 10⁵+ demands on the dense profile the
    // kernel must hold a ≥5× lead over the retired per-demand path.
    for n in ["100000", "1000000"] {
        let median = |side: &str| -> f64 {
            let id = format!("kernel_scaling/dense/{side}/{n}");
            value
                .as_array()
                .unwrap()
                .iter()
                .find(|r| r.get("id").and_then(Value::as_str) == Some(id.as_str()))
                .unwrap_or_else(|| panic!("missing {id}"))
                .get("median_ns")
                .and_then(Value::as_f64)
                .expect("median_ns")
        };
        let speedup = median("per_demand") / median("kernel");
        assert!(
            speedup >= 5.0,
            "dense/{n}: committed trajectory shows only {speedup:.1}x kernel speedup"
        );
    }
}
