//! Integration tests for the experiment engine: thread-count
//! determinism of the rendered result files, a full-registry smoke run,
//! and the generated-docs drift guard.

use diversim_bench::engine::{run_experiment, RESULT_SCHEMA};
use diversim_bench::registry;
use diversim_bench::spec::Profile;

/// The engine's rendered JSON and CSV must be byte-identical whether
/// the Monte Carlo replications run on 1 thread or 8 — the ISSUE-2
/// acceptance criterion for deterministic parallelism. `e06` covers
/// `Scenario::estimate` and `e08` additionally `merged_estimate`, both
/// batching through `parallel_accumulate_n`.
#[test]
fn engine_output_is_byte_identical_for_1_and_8_threads() {
    for key in ["e06", "e08"] {
        let spec = registry::find(key).expect("registered");
        let one = run_experiment(spec, Profile::Smoke, 1, true);
        let eight = run_experiment(spec, Profile::Smoke, 8, true);
        assert_eq!(
            one.json, eight.json,
            "{key}: JSON differs between 1 and 8 threads"
        );
        assert_eq!(
            one.csv, eight.csv,
            "{key}: CSV differs between 1 and 8 threads"
        );
    }
}

/// Every registered spec must run to completion under the smoke
/// profile and produce non-empty, well-formed results.
#[test]
fn all_twenty_specs_run_under_smoke_profile() {
    let specs = registry::all();
    assert_eq!(specs.len(), 20);
    for spec in specs {
        let outcome = run_experiment(spec, Profile::Smoke, 2, true);
        assert!(
            outcome.passed,
            "{} failed under smoke (checks must not be enforced there)",
            spec.name
        );
        assert!(
            !outcome.checks.is_empty(),
            "{} recorded no reproduction checks",
            spec.name
        );
        assert!(
            outcome
                .json
                .starts_with(&format!("{{\"schema\":\"{RESULT_SCHEMA}\"")),
            "{} JSON missing schema header",
            spec.name
        );
        assert!(
            outcome.json.contains("\"tables\":[{"),
            "{} produced no tables",
            spec.name
        );
        assert!(
            outcome.csv.lines().count() > 1,
            "{} produced an empty CSV",
            spec.name
        );
    }
}

/// `EXPERIMENTS.md` at the workspace root is generated from the
/// registry; this guard makes drift a test failure. Regenerate with
/// `diversim docs --write`.
#[test]
fn experiments_md_matches_registry() {
    let on_disk = include_str!("../../../EXPERIMENTS.md");
    assert_eq!(
        on_disk,
        registry::experiments_md(),
        "EXPERIMENTS.md is stale; run `cargo run -p diversim-bench --bin diversim -- docs --write`"
    );
}
