//! Drift guard for the committed reproduction book, in the style of the
//! `EXPERIMENTS.md` guard: the smoke-profile `REPORT.md` and every
//! `report/eNN_*.md` chapter at the workspace root are regenerated here
//! and asserted byte-equal to what is committed, so the book can never
//! drift from the registry, the engine, the figure declarations or the
//! renderer. Regenerate with
//! `cargo run --release -p diversim-bench --bin diversim -- report --run --smoke`.

use std::path::Path;

use diversim_bench::book::{render_book, Book, ResultDoc, CHAPTER_DIR, REPORT_FILE};
use diversim_bench::engine::run_experiment;
use diversim_bench::registry;
use diversim_bench::spec::Profile;

fn smoke_book(threads: usize) -> Book {
    let docs: Vec<ResultDoc> = registry::all()
        .into_iter()
        .map(|spec| {
            let outcome = run_experiment(spec, Profile::Smoke, threads, true);
            ResultDoc::from_outcome(&outcome).expect("engine output parses")
        })
        .collect();
    render_book(&docs).expect("book renders")
}

#[test]
fn committed_smoke_report_matches_the_engine() {
    let book = smoke_book(2);
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    let committed_report =
        std::fs::read_to_string(root.join(REPORT_FILE)).expect("REPORT.md is committed");
    assert_eq!(
        committed_report, book.report,
        "REPORT.md is stale; run `cargo run --release -p diversim-bench --bin diversim -- report --run --smoke`"
    );

    assert_eq!(book.chapters.len(), 20);
    for chapter in &book.chapters {
        let path = root.join(CHAPTER_DIR).join(&chapter.file_name);
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{} is not committed: {e}", path.display()));
        assert_eq!(
            committed,
            chapter.markdown,
            "{} is stale; run `cargo run --release -p diversim-bench --bin diversim -- report --run --smoke`",
            path.display()
        );
    }
}

/// The ISSUE-4 acceptance criterion at the book level: the whole book —
/// summary page, chapters, inline SVG figures — must be byte-identical
/// whether the experiments ran on 1 worker thread or 8.
#[test]
fn book_is_byte_identical_for_1_and_8_threads() {
    // Two experiments keep the double run cheap while covering both an
    // exact experiment (e14, figures from closed forms, log axes) and a
    // Monte Carlo one with confidence bands (e06).
    for key in ["e06", "e14"] {
        let spec = registry::find(key).expect("registered");
        let render = |threads: usize| {
            let outcome = run_experiment(spec, Profile::Smoke, threads, true);
            let doc = ResultDoc::from_outcome(&outcome).expect("parses");
            render_book(&[doc]).expect("renders")
        };
        let one = render(1);
        let eight = render(8);
        assert_eq!(
            one.report, eight.report,
            "{key}: REPORT.md differs between 1 and 8 threads"
        );
        assert_eq!(one.chapters.len(), eight.chapters.len());
        for (a, b) in one.chapters.iter().zip(&eight.chapters) {
            assert_eq!(a.file_name, b.file_name);
            assert_eq!(
                a.markdown, b.markdown,
                "{key}: chapter differs between 1 and 8 threads"
            );
        }
    }
}

/// Loading result files from disk and re-running the engine must
/// produce the same book — the two `diversim report` input paths cannot
/// drift apart.
#[test]
fn results_dir_and_rerun_produce_the_same_book() {
    let spec = registry::find("e04").expect("registered");
    let outcome = run_experiment(spec, Profile::Smoke, 2, true);

    let dir = std::env::temp_dir().join(format!("diversim-report-test-{}", std::process::id()));
    let (json_path, _) = diversim_bench::engine::write_outcome(&dir, &outcome).expect("writable");

    let from_engine = ResultDoc::from_outcome(&outcome).expect("parses");
    let text = std::fs::read_to_string(&json_path).expect("written");
    let from_disk = ResultDoc::from_json(&text, &json_path.display().to_string()).expect("parses");
    std::fs::remove_dir_all(&dir).ok();

    let book_a = render_book(&[from_engine]).expect("renders");
    let book_b = render_book(&[from_disk]).expect("renders");
    assert_eq!(book_a.report, book_b.report);
    assert_eq!(book_a.chapters[0].markdown, book_b.chapters[0].markdown);
}
