//! Property tests of the JSON module's parse/emit pair and of the
//! serve wire types built on it: whatever the strict writer emits, the
//! tolerant reader must recover exactly.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use diversim_bench::json::{self, Value};
use diversim_bench::serve::request::{
    EvaluateRequest, EvaluationRequest, ExperimentRequest, RegimeSpec, RequestKind, StudySpec,
    SystemSpec, WorldSpec,
};
use diversim_bench::spec::Profile;
use diversim_sim::policy::PolicySpec;
use diversim_testing::oracle::IdenticalFailureModel;

/// Arbitrary strings over the full ASCII range (controls, quotes and
/// backslashes included — the characters escaping must get right) plus
/// some non-ASCII code points.
fn json_string() -> BoxedStrategy<String> {
    vec(
        prop_oneof![
            (0u32..128).boxed(),
            (0x80u32..0x300).boxed(),
            Just(0x1F600u32).boxed(), // astral plane (surrogate pairs in \u-escapes)
        ],
        0..12,
    )
    .prop_map(|points| {
        points
            .into_iter()
            .filter_map(char::from_u32)
            .collect::<String>()
    })
    .boxed()
}

/// Numbers the strict writer can represent faithfully (finite only:
/// NaN/∞ intentionally emit as `null`).
fn json_number() -> BoxedStrategy<f64> {
    prop_oneof![
        (-1.0e9..1.0e9).boxed(),
        (-5_000i64..5_000).prop_map(|n| n as f64).boxed(),
        Just(0.0).boxed(),
        Just(-0.0).boxed(),
        Just(9_007_199_254_740_991.0).boxed(), // 2^53 - 1, the integer boundary
        Just(1.5e300).boxed(),
        Just(f64::MIN_POSITIVE).boxed(),
    ]
    .boxed()
}

fn json_leaf() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null).boxed(),
        (0u8..2).prop_map(|b| Value::Bool(b == 1)).boxed(),
        json_number().prop_map(Value::Number).boxed(),
        json_string().prop_map(Value::String).boxed(),
    ]
    .boxed()
}

/// Depth-bounded arbitrary documents (the vendored proptest has no
/// recursive-strategy helper, so recursion is explicit).
fn json_value(depth: usize) -> BoxedStrategy<Value> {
    if depth == 0 {
        return json_leaf();
    }
    let inner = json_value(depth - 1);
    let inner2 = json_value(depth - 1);
    prop_oneof![
        json_leaf(),
        vec(inner, 0..4).prop_map(Value::Array).boxed(),
        vec((json_string(), inner2), 0..4)
            .prop_map(|pairs| {
                // Index-prefixed keys keep members unique, so document
                // equality is well-defined under any reader behaviour.
                Value::Object(
                    pairs
                        .into_iter()
                        .enumerate()
                        .map(|(i, (key, value))| (format!("k{i}:{key}"), value))
                        .collect(),
                )
            })
            .boxed(),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn document_emit_parse_round_trips(doc in json_value(3)) {
        let text = doc.to_json();
        let reparsed = json::parse(&text)
            .unwrap_or_else(|e| panic!("emitted invalid JSON {text:?}: {e}"));
        prop_assert_eq!(&reparsed, &doc, "round trip changed {}", text);
        // Emission is a pure function: re-emitting the reparse is
        // byte-identical.
        prop_assert_eq!(reparsed.to_json(), text);
    }

    #[test]
    fn string_escaping_round_trips(s in json_string()) {
        let doc = Value::String(s);
        prop_assert_eq!(json::parse(&doc.to_json()).unwrap(), doc);
    }

    #[test]
    fn number_formatting_round_trips(n in json_number()) {
        let doc = Value::Number(n);
        prop_assert_eq!(json::parse(&doc.to_json()).unwrap(), doc);
    }
}

fn world_spec() -> BoxedStrategy<WorldSpec> {
    prop_oneof![
        vec(0.0f64..=1.0, 1..6)
            .prop_map(|props| WorldSpec::Singleton { props })
            .boxed(),
        (0usize..5)
            .prop_map(|i| WorldSpec::Fixture {
                name: diversim_bench::serve::request::FIXTURES[i].to_string(),
            })
            .boxed(),
        (1usize..200, 1usize..32, 1usize..5, 0.0f64..2.0, 0u64..1000)
            .prop_map(
                |(demands, faults, region_max, zipf, seed)| WorldSpec::Generated {
                    demands,
                    faults,
                    region_max,
                    zipf,
                    prop_lo: 0.05,
                    prop_hi: 0.5,
                    seed,
                }
            )
            .boxed(),
    ]
    .boxed()
}

/// Every regime the wire protocol can name, including each
/// identical-failure model and each adaptive allocation policy — the
/// spec is a total bijection with `CampaignRegime`, so the strategy
/// must cover all of it.
fn regime_spec() -> BoxedStrategy<RegimeSpec> {
    prop_oneof![
        Just(RegimeSpec::Shared).boxed(),
        Just(RegimeSpec::Independent).boxed(),
        Just(RegimeSpec::BackToBack {
            model: IdenticalFailureModel::Never,
        })
        .boxed(),
        Just(RegimeSpec::BackToBack {
            model: IdenticalFailureModel::Always,
        })
        .boxed(),
        (0.0f64..=1.0)
            .prop_map(|gamma| RegimeSpec::BackToBack {
                model: IdenticalFailureModel::Bernoulli(gamma),
            })
            .boxed(),
        Just(RegimeSpec::Adaptive {
            policy: PolicySpec::RoundRobin,
        })
        .boxed(),
        Just(RegimeSpec::Adaptive {
            policy: PolicySpec::GreedyOnFailures,
        })
        .boxed(),
        (0.0f64..=1.0)
            .prop_map(|epsilon| RegimeSpec::Adaptive {
                policy: PolicySpec::EpsilonGreedy { epsilon },
            })
            .boxed(),
        (0.0f64..10.0)
            .prop_map(|c| RegimeSpec::Adaptive {
                policy: PolicySpec::UcbIndex { c },
            })
            .boxed(),
    ]
    .boxed()
}

/// Depth-bounded arbitrary *valid* structure trees: component leaves
/// plus AND/OR/k-of-n gates whose `k` stays within `1..=children`.
fn system_spec(depth: usize) -> BoxedStrategy<SystemSpec> {
    let leaf = (0usize..6)
        .prop_map(|index| SystemSpec::Component { index })
        .boxed();
    if depth == 0 {
        return leaf;
    }
    prop_oneof![
        leaf,
        vec(system_spec(depth - 1), 1..4)
            .prop_map(|children| SystemSpec::And { children })
            .boxed(),
        vec(system_spec(depth - 1), 1..4)
            .prop_map(|children| SystemSpec::Or { children })
            .boxed(),
        (vec(system_spec(depth - 1), 1..4), 0usize..100)
            .prop_map(|(children, raw)| SystemSpec::KOutOfN {
                k: 1 + raw % children.len(),
                children,
            })
            .boxed(),
    ]
    .boxed()
}

fn request() -> BoxedStrategy<EvaluationRequest> {
    let evaluate = (
        world_spec(),
        regime_spec(),
        0usize..100,
        1u64..1000,
        // Structures only compose with estimate studies (growth
        // replays fixed demand streams), so study and system are
        // drawn jointly.
        prop_oneof![
            (
                Just(StudySpec::Estimate),
                prop_oneof![Just(None).boxed(), system_spec(2).prop_map(Some).boxed(),],
            )
                .boxed(),
            vec(1usize..50, 1..5)
                .prop_map(|mut raw| {
                    // Strictly increasing via prefix sums.
                    let mut total = 0;
                    for c in &mut raw {
                        total += *c;
                        *c = total;
                    }
                    (StudySpec::Growth { checkpoints: raw }, None)
                })
                .boxed(),
        ],
    )
        .prop_map(
            |(world, regime, suite_size, replications, (study, system))| {
                RequestKind::Evaluate(EvaluateRequest {
                    world,
                    regime,
                    suite_size,
                    replications,
                    study,
                    system,
                })
            },
        )
        .boxed();
    let kind = prop_oneof![
        evaluate,
        (0usize..3)
            .prop_map(|p| RequestKind::Experiment(ExperimentRequest {
                key: "e01".into(),
                profile: [Profile::Smoke, Profile::Fast, Profile::Full][p],
            }))
            .boxed(),
        Just(RequestKind::Ping).boxed(),
    ];
    (json_string(), 0u64..(1 << 53), 0u64..(1 << 53), kind)
        .prop_map(|(id, seed, stream, kind)| EvaluationRequest {
            id,
            seed,
            stream,
            kind,
        })
        .boxed()
}

proptest! {
    #[test]
    fn wire_requests_round_trip(req in request()) {
        let line = req.to_json();
        let reparsed = EvaluationRequest::parse(&line)
            .unwrap_or_else(|e| panic!("own wire line rejected {line:?}: {e}"));
        // Ping and experiment requests do not carry seed/stream on the
        // wire (they have no replication streams); compare the rest.
        if matches!(req.kind, RequestKind::Evaluate(_)) {
            prop_assert_eq!(reparsed, req);
        } else {
            prop_assert_eq!(&reparsed.id, &req.id);
            prop_assert_eq!(&reparsed.kind, &req.kind);
        }
    }
}
