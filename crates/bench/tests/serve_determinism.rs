//! Integration tests of the serve layer's determinism contract: response
//! bytes are a pure function of the request line — independent of the
//! worker thread count, of how many clients interleave on the socket,
//! and of the world cache's capacity (and therefore its hit/miss/evict
//! history).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use diversim_bench::serve::loadgen::schedule;
use diversim_bench::serve::request::EvaluationResponse;
use diversim_bench::serve::server::spawn_tcp;
use diversim_bench::serve::EvaluationService;

const SEED: u64 = 2004;

/// The shared request mix: the loadgen schedule already cycles worlds,
/// regimes and study kinds, which is exactly the coverage wanted here.
fn request_lines(clients: usize, per_client: u64) -> Vec<String> {
    let mut lines = Vec::new();
    for client in 0..clients {
        for i in 0..per_client {
            lines.push(schedule(SEED, client, i).to_json());
        }
    }
    lines
}

/// Serial single-threaded baseline: request id → response line.
fn baseline(lines: &[String]) -> BTreeMap<String, String> {
    let service = EvaluationService::new(1, 8);
    lines
        .iter()
        .map(|line| {
            let response = service.handle_line(line);
            let (id, ok) = EvaluationResponse::parse_status(&response).expect("malformed response");
            assert!(ok, "baseline request failed: {response}");
            (id, response)
        })
        .collect()
}

#[test]
fn responses_are_identical_across_thread_counts() {
    let lines = request_lines(2, 6);
    let expected = baseline(&lines);
    for threads in [1usize, 4, 8] {
        let service = EvaluationService::new(threads, 8);
        for line in &lines {
            let response = service.handle_line(line);
            let (id, _) = EvaluationResponse::parse_status(&response).unwrap();
            assert_eq!(
                Some(&response),
                expected.get(&id),
                "thread count {threads} changed the bytes of {id}"
            );
        }
    }
}

#[test]
fn interleaved_tcp_clients_match_the_serial_baseline() {
    let clients = 4usize;
    let per_client = 5u64;
    let expected = baseline(&request_lines(clients, per_client));

    let service = Arc::new(EvaluationService::new(4, 8));
    let (addr, _accept) = spawn_tcp(service, "127.0.0.1:0").expect("bind");

    // Interleave: every client holds an open connection while all of
    // them alternate one request at a time, so the server sees the
    // connections concurrently and the cache state each request observes
    // differs from the serial run.
    let streams: Vec<TcpStream> = (0..clients)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    let mut readers: Vec<BufReader<TcpStream>> = streams
        .iter()
        .map(|s| BufReader::new(s.try_clone().expect("clone")))
        .collect();
    let mut streams = streams;

    let mut got = BTreeMap::new();
    for i in 0..per_client {
        for client in 0..clients {
            let line = schedule(SEED, client, i).to_json();
            streams[client]
                .write_all(format!("{line}\n").as_bytes())
                .expect("send");
            let mut response = String::new();
            readers[client].read_line(&mut response).expect("recv");
            let response = response.trim_end().to_string();
            let (id, ok) = EvaluationResponse::parse_status(&response).expect("malformed");
            assert!(ok, "request {id} failed over TCP: {response}");
            got.insert(id, response);
        }
    }

    assert_eq!(got, expected, "interleaving changed response bytes");
}

#[test]
fn lru_eviction_is_invisible_in_response_bytes() {
    // The schedule cycles through three distinct worlds per client, so a
    // capacity-1 cache must rebuild a world on almost every request.
    let lines = request_lines(1, 9);

    let roomy = EvaluationService::new(2, 16);
    let tight = EvaluationService::new(2, 1);
    for line in &lines {
        assert_eq!(
            roomy.handle_line(line),
            tight.handle_line(line),
            "cache capacity leaked into response bytes"
        );
    }

    let roomy_stats = roomy.cache_stats();
    let tight_stats = tight.cache_stats();
    assert_eq!(roomy_stats.evictions, 0, "capacity 16 should never evict");
    assert!(
        tight_stats.evictions > 0,
        "capacity 1 must evict across {} requests over multiple worlds",
        lines.len()
    );
    assert!(tight_stats.misses > roomy_stats.misses, "forced rebuilds");
    assert_eq!(tight_stats.len, 1);
}
