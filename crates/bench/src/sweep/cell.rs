//! The unit of shardable, cacheable work: the **cell**.
//!
//! A cell is one sweep-point of one experiment — one world × regime ×
//! grid-point × seed-stream combination whose numeric payload is a pure
//! function of the cell's identity. Experiments declare cells through
//! [`crate::spec::RunContext::cell`]; how a declared cell is *executed*
//! is the [`CellExecutor`]'s business. `diversim run` uses no executor
//! (every cell computes inline, exactly the pre-sweep behaviour), while
//! `diversim sweep` installs a store-backed executor that caches,
//! shards and resumes.
//!
//! # The cell contract
//!
//! - The compute closure must be a pure function of the cell identity
//!   plus the [`CellScope`] it receives: no reads of ambient state, no
//!   `RunContext` access, no output other than the returned payload.
//! - The payload is a flat `Vec<f64>` of *finite* values with a
//!   meaning fixed by the cell key's layout. Finite `f64`s round-trip
//!   exactly through the strict JSON writer ([`crate::json`]), which is
//!   what makes cached payloads byte-equivalent to freshly computed
//!   ones in every downstream rendering.
//! - Everything an experiment derives from cell payloads — table rows,
//!   claim checks, narration — happens *outside* the closure, so a
//!   cache hit and a recompute drive identical reporting code.
//! - The set of cells an experiment declares, and their order, is a
//!   pure function of `(experiment, profile)` — no data-dependent
//!   cells — so every machine enumerates the same cells and `--shard`
//!   partitions are stable.

use diversim_stats::seed::SeedSequence;

use crate::hashing::{fnv1a64, fnv1a64_hex};
use crate::spec::Profile;

/// The seed stream reserved for cell payload computations (see
/// [`CellScope::seeds`]).
const CELL_SEED_STREAM: u64 = 0;

/// The identity of one cell: everything its payload may depend on.
///
/// The `key` string canonically encodes the sweep point — world,
/// regime, grid coordinates, replication budget and root seed — in a
/// human-readable `k=v|k=v` form; experiment and profile complete the
/// identity. The content hash over the canonical rendering names the
/// cell's store file and assigns it to a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellId {
    /// The owning experiment's result-file name (`"e01_el_model"`).
    pub experiment: String,
    /// The profile the cell was computed under (budgets derive from it).
    pub profile: Profile,
    /// Canonical sweep-point key within the experiment.
    pub key: String,
}

impl CellId {
    /// Builds the identity of `experiment`'s cell `key` under `profile`.
    pub fn new(experiment: impl Into<String>, profile: Profile, key: impl Into<String>) -> Self {
        CellId {
            experiment: experiment.into(),
            profile,
            key: key.into(),
        }
    }

    /// The canonical encoding the content hash covers.
    pub fn canonical(&self) -> String {
        format!(
            "diversim-cell/v1|{}|{}|{}",
            self.experiment,
            self.profile.name(),
            self.key
        )
    }

    /// The cell's content hash ([`fnv1a64`] over [`Self::canonical`]):
    /// stable across machines, shared with the serve world cache's hash
    /// primitive.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// The file name the cell is stored under: 16 hex digits + `.json`.
    pub fn file_name(&self) -> String {
        format!("{}.json", fnv1a64_hex(self.canonical().as_bytes()))
    }
}

/// What a cell's compute closure may depend on besides the identity:
/// the worker-thread budget and the cell's private seed universe.
#[derive(Debug, Clone)]
pub struct CellScope {
    threads: usize,
    seeds: SeedSequence,
}

impl CellScope {
    /// Builds the scope `id`'s compute closure runs under.
    pub fn new(id: &CellId, threads: usize) -> Self {
        CellScope {
            threads,
            seeds: SeedSequence::new(id.content_hash()).child(CELL_SEED_STREAM),
        }
    }

    /// Worker threads available to `sim::runner` calls inside the cell.
    /// Never part of the payload's value — deterministic-parallel
    /// reductions are bit-identical across thread counts.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cell's replication seed universe, derived from the cell's
    /// content hash through [`SeedSequence::child`]. A pure function of
    /// the cell identity: the same cell draws the same streams on every
    /// machine, in every process, regardless of which sibling cells run
    /// around it — and distinct cells get non-colliding universes.
    pub fn seeds(&self) -> SeedSequence {
        self.seeds
    }
}

/// A cell's payload as seen by the declaring experiment.
///
/// `live` payloads carry real values. A *skipped* payload stands in for
/// a cell the active executor declined to run (out of this process's
/// shard): every read yields `0.0`, so downstream table/check code runs
/// structurally — the sweep engine discards its outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellData {
    values: Vec<f64>,
    live: bool,
}

impl CellData {
    /// Wraps computed (or cache-loaded) values.
    pub fn live(values: Vec<f64>) -> Self {
        CellData { values, live: true }
    }

    /// The placeholder for a cell skipped by the executor.
    pub fn skipped() -> Self {
        CellData {
            values: Vec::new(),
            live: false,
        }
    }

    /// Whether real values are present (false only for out-of-shard
    /// placeholders).
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// The `i`-th payload value. Panics on out-of-range reads of a live
    /// payload — that is a layout bug in the declaring experiment —
    /// but yields `0.0` from a skipped placeholder.
    pub fn get(&self, i: usize) -> f64 {
        if self.live {
            self.values[i]
        } else {
            0.0
        }
    }

    /// The whole payload (empty for a skipped placeholder).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// How declared cells get executed.
///
/// `execute` returns the cell's payload, or `None` to *skip* the cell
/// (it belongs to another shard); the compute closure is invoked at
/// most once, only when the executor decides the payload must actually
/// be computed here.
pub trait CellExecutor: std::fmt::Debug {
    /// Produces `id`'s payload, calling `compute` if it is not
    /// available by other means, or `None` to skip the cell.
    fn execute(
        &mut self,
        id: &CellId,
        scope: &CellScope,
        compute: &mut dyn FnMut(&CellScope) -> Vec<f64>,
    ) -> Option<Vec<f64>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> CellId {
        CellId::new(
            "e01_el_model",
            Profile::Fast,
            "world=graded-spread(0.5)|reps=6000",
        )
    }

    #[test]
    fn canonical_encoding_is_versioned_and_complete() {
        assert_eq!(
            id().canonical(),
            "diversim-cell/v1|e01_el_model|fast|world=graded-spread(0.5)|reps=6000"
        );
    }

    /// Freezes the on-disk cell naming: if this hash moves, every
    /// cached cell ever written is orphaned, so it must fail a test
    /// rather than drift silently.
    #[test]
    fn pinned_cell_hash() {
        assert_eq!(
            id().content_hash(),
            fnv1a64(b"diversim-cell/v1|e01_el_model|fast|world=graded-spread(0.5)|reps=6000")
        );
        assert_eq!(
            id().file_name(),
            format!("{:016x}.json", id().content_hash())
        );
    }

    #[test]
    fn identity_components_all_separate_cells() {
        let base = id();
        let other_experiment = CellId::new("e02_lm_model", base.profile, base.key.clone());
        let other_profile = CellId::new(base.experiment.clone(), Profile::Smoke, base.key.clone());
        let other_key = CellId::new(base.experiment.clone(), base.profile, "world=mirrored");
        for other in [other_experiment, other_profile, other_key] {
            assert_ne!(base.content_hash(), other.content_hash());
        }
    }

    #[test]
    fn scope_seeds_are_a_pure_function_of_identity() {
        let a = CellScope::new(&id(), 1);
        let b = CellScope::new(&id(), 8);
        // Thread budget varies; the seed universe must not.
        assert_eq!(a.seeds().seed_for(3, 17), b.seeds().seed_for(3, 17));
        let other = CellScope::new(
            &CellId::new("e01_el_model", Profile::Fast, "world=mirrored"),
            1,
        );
        assert_ne!(a.seeds().root(), other.seeds().root());
        // And it is derived through `child`, not the raw hash root.
        assert_ne!(
            a.seeds().root(),
            SeedSequence::new(id().content_hash()).root()
        );
    }

    #[test]
    fn skipped_placeholder_reads_zero_but_live_reads_panic_oob() {
        let skipped = CellData::skipped();
        assert!(!skipped.is_live());
        assert_eq!(skipped.get(5), 0.0);
        let live = CellData::live(vec![1.5, 2.5]);
        assert!(live.is_live());
        assert_eq!(live.get(1), 2.5);
        assert_eq!(live.values(), &[1.5, 2.5]);
        let caught = std::panic::catch_unwind(|| live.get(2));
        assert!(caught.is_err(), "OOB read of a live payload must panic");
    }
}
