//! The content-addressed cell store: `<dir>/<hash>.json`, one file per
//! finished cell.
//!
//! Files are named by the cell's content hash ([`CellId::file_name`])
//! and written atomically (temp file + rename), so a killed sweep
//! leaves either a complete, loadable cell or no cell — never a torn
//! one. Loading re-verifies everything a hostile filesystem could
//! break: the document must parse, carry this schema, name the same
//! cell identity (guards against renamed/moved files and hash
//! collisions), agree on the payload length, and reproduce the
//! recorded payload checksum (FNV-1a over the canonical value
//! rendering — catches hand-edited values whose file still parses).
//! Anything less is [`CellLoad::Corrupt`] and gets recomputed, never
//! merged.

use std::io;
use std::path::{Path, PathBuf};

use crate::hashing::fnv1a64_hex;
use crate::json::{self, Value};

use super::cell::CellId;

/// Schema tag of every cell document.
pub const CELL_SCHEMA: &str = "diversim-cell/v1";

/// What loading a cell produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CellLoad {
    /// A verified payload.
    Hit(Vec<f64>),
    /// No file for this cell.
    Miss,
    /// A file exists but failed verification; the reason is logged by
    /// the sweep engine and the cell is recomputed.
    Corrupt(String),
}

/// A directory of content-addressed cell files.
#[derive(Debug, Clone)]
pub struct CellStore {
    dir: PathBuf,
}

impl CellStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CellStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `id`'s cell lives.
    pub fn path_for(&self, id: &CellId) -> PathBuf {
        self.dir.join(id.file_name())
    }

    /// The canonical rendering of the payload array — the byte string
    /// the integrity checksum covers.
    fn values_json(values: &[f64]) -> String {
        Value::Array(values.iter().map(|&v| Value::Number(v)).collect()).to_json()
    }

    /// The full document text for `id` with payload `values`.
    pub fn render(id: &CellId, values: &[f64]) -> String {
        let payload = Self::values_json(values);
        let check = fnv1a64_hex(payload.as_bytes());
        let doc = Value::Object(vec![
            ("schema".into(), Value::String(CELL_SCHEMA.into())),
            ("experiment".into(), Value::String(id.experiment.clone())),
            (
                "profile".into(),
                Value::String(id.profile.name().to_string()),
            ),
            ("key".into(), Value::String(id.key.clone())),
            ("len".into(), Value::Number(values.len() as f64)),
            ("check".into(), Value::String(check)),
            (
                "values".into(),
                Value::Array(values.iter().map(|&v| Value::Number(v)).collect()),
            ),
        ]);
        doc.to_json()
    }

    /// Persists `id`'s payload atomically. Panics on non-finite payload
    /// values — the cell contract forbids them (JSON cannot round-trip
    /// them), so one slipping through is a bug in the declaring
    /// experiment, not an I/O condition.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, id: &CellId, values: &[f64]) -> io::Result<PathBuf> {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "cell {} produced a non-finite payload value",
            id.canonical()
        );
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(id);
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", id.file_name(), std::process::id()));
        std::fs::write(&tmp, Self::render(id, values))?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads and verifies `id`'s cell (see the module docs for what
    /// verification covers).
    pub fn load(&self, id: &CellId) -> CellLoad {
        let path = self.path_for(id);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CellLoad::Miss,
            Err(e) => return CellLoad::Corrupt(format!("unreadable: {e}")),
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => return CellLoad::Corrupt(format!("invalid JSON: {e}")),
        };
        if doc.get("schema").and_then(Value::as_str) != Some(CELL_SCHEMA) {
            return CellLoad::Corrupt("wrong or missing schema".into());
        }
        let same_identity = doc.get("experiment").and_then(Value::as_str) == Some(&id.experiment)
            && doc.get("profile").and_then(Value::as_str) == Some(id.profile.name())
            && doc.get("key").and_then(Value::as_str) == Some(&id.key);
        if !same_identity {
            return CellLoad::Corrupt("identity mismatch (file names another cell)".into());
        }
        let Some(raw) = doc.get("values").and_then(Value::as_array) else {
            return CellLoad::Corrupt("missing values array".into());
        };
        let mut values = Vec::with_capacity(raw.len());
        for v in raw {
            match v.as_f64() {
                Some(x) if x.is_finite() => values.push(x),
                _ => return CellLoad::Corrupt("non-numeric payload value".into()),
            }
        }
        match doc.get("len").and_then(Value::as_f64) {
            Some(n) if n == values.len() as f64 => {}
            _ => {
                return CellLoad::Corrupt(format!(
                    "length mismatch: len field disagrees with {} values",
                    values.len()
                ))
            }
        }
        let expected = fnv1a64_hex(Self::values_json(&values).as_bytes());
        if doc.get("check").and_then(Value::as_str) != Some(expected.as_str()) {
            return CellLoad::Corrupt("payload checksum mismatch".into());
        }
        CellLoad::Hit(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Profile;

    fn tmp_store(tag: &str) -> CellStore {
        let dir =
            std::env::temp_dir().join(format!("diversim-cell-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        CellStore::new(dir)
    }

    fn id(key: &str) -> CellId {
        CellId::new("e99_demo", Profile::Smoke, key)
    }

    #[test]
    fn save_load_round_trip() {
        let store = tmp_store("roundtrip");
        let id = id("k=1");
        assert_eq!(store.load(&id), CellLoad::Miss);
        let values = vec![0.1, 2.0, 3.5e-7, -4.0];
        store.save(&id, &values).unwrap();
        assert_eq!(store.load(&id), CellLoad::Hit(values));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn truncated_file_is_corrupt_not_a_hit() {
        let store = tmp_store("truncate");
        let id = id("k=2");
        let path = store.save(&id, &[1.0, 2.0, 3.0]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.load(&id), CellLoad::Corrupt(_)));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn hand_edited_value_is_caught_by_the_checksum() {
        let store = tmp_store("edit");
        let id = id("k=3");
        let path = store.save(&id, &[0.25, 0.5]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let edited = text.replace("0.25", "0.26");
        assert_ne!(edited, text, "test must actually change the payload");
        std::fs::write(&path, edited).unwrap();
        match store.load(&id) {
            CellLoad::Corrupt(reason) => assert!(reason.contains("checksum")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn dropped_array_element_is_caught_by_the_length_field() {
        let store = tmp_store("len");
        let id = id("k=4");
        let path = store.save(&id, &[1.0, 2.0]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("[1,2]", "[1]")).unwrap();
        match store.load(&id) {
            CellLoad::Corrupt(reason) => assert!(reason.contains("length")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn file_moved_under_another_cells_name_is_rejected() {
        let store = tmp_store("move");
        let (a, b) = (id("k=5"), id("k=6"));
        let path_a = store.save(&a, &[9.0]).unwrap();
        std::fs::rename(&path_a, store.path_for(&b)).unwrap();
        match store.load(&b) {
            CellLoad::Corrupt(reason) => assert!(reason.contains("identity")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_payload_is_a_bug_not_data() {
        let store = tmp_store("nan");
        let _ = store.save(&id("k=7"), &[f64::NAN]);
    }
}
