//! Sharded, resumable sweeps over the experiment registry with
//! content-addressed cell caching.
//!
//! The full-profile matrix is embarrassingly parallel, but the plain
//! engine runs one experiment in one process and forgets everything
//! between runs. This module decomposes every [`crate::spec::ExperimentSpec`]
//! into independent **cells** — one sweep-point × world × regime ×
//! seed-stream unit of work, declared via
//! [`crate::spec::RunContext::cell`] — and executes them through a
//! content-addressed store:
//!
//! - [`cell`]: the cell identity/payload model and the executor trait
//!   the `RunContext` routes declared cells through.
//! - [`store`]: `results/cells/<hash>.json` persistence with atomic
//!   writes and integrity-verified loads.
//! - [`engine`]: the sweep driver — shard partitioning, resume
//!   semantics, cache-hit accounting and the byte-identity drift guard
//!   against the direct engine.
//!
//! `diversim sweep` is the CLI front; `diversim run` is unaffected
//! (cells compute inline without an executor). A sharded sweep fleet
//! followed by one unsharded `--resume` pass reproduces the exact
//! bytes `diversim run` emits, recomputing nothing.

pub mod cell;
pub mod engine;
pub mod store;

pub use cell::{CellData, CellExecutor, CellId, CellScope};
pub use engine::{
    render_scaling_json, sweep_experiment, verify_against_direct_run, Shard, SweepOptions,
    SweepRun, SweepStats, SWEEP_SCALING_SCHEMA,
};
pub use store::{CellLoad, CellStore, CELL_SCHEMA};
