//! The sweep driver: runs experiments cell-by-cell against a
//! [`CellStore`], with sharding, resume and drift verification.
//!
//! One [`sweep_experiment`] call executes one experiment exactly like
//! `diversim run` — same `RunContext`, same rendering — except that
//! every declared cell is routed through a [`StoreExecutor`]:
//!
//! - **unsharded, no resume**: every cell computes here and is
//!   persisted; the merged outputs are byte-identical to a direct run
//!   (the payload round-trips exactly, and everything else is derived
//!   outside cells).
//! - **`--shard i/n`**: only cells whose content hash lands in this
//!   shard compute (and persist); the rest are skipped with
//!   placeholders, so the outcome's tables are meaningless and the
//!   caller discards them — the cell store is the product.
//! - **`--resume`**: verified cached cells are served from the store
//!   (cache hit); missing or corrupt cells recompute. An unsharded
//!   resume over a fully populated store is the *merge* step: every
//!   cell hits and the run reassembles the exact result files.
//!
//! Shard membership is `content_hash(cell) mod n` — a pure function of
//! the cell identity, so partitions agree across machines, processes
//! and declaration order.

use std::sync::{Arc, Mutex};

use crate::engine::{run_experiment, run_experiment_with_cells, RunOutcome};
use crate::json::Value;
use crate::spec::{ExperimentSpec, Profile};

use super::cell::{CellExecutor, CellId, CellScope};
use super::store::{CellLoad, CellStore};

/// One shard of a sweep: this process owns the cells whose content
/// hash is `index` modulo `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Which shard this is (`0..count`).
    pub index: u64,
    /// Total shards.
    pub count: u64,
}

impl Shard {
    /// Parses the CLI spelling `i/n` (e.g. `0/2`).
    ///
    /// # Errors
    ///
    /// A usage message when the spelling is not `i/n` with `i < n`,
    /// `n ≥ 1`.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let usage = || format!("--shard wants i/n with i < n, got {text:?}");
        let (i, n) = text.split_once('/').ok_or_else(usage)?;
        let index: u64 = i.trim().parse().map_err(|_| usage())?;
        let count: u64 = n.trim().parse().map_err(|_| usage())?;
        if count == 0 || index >= count {
            return Err(usage());
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns `id`.
    pub fn owns(&self, id: &CellId) -> bool {
        id.content_hash() % self.count == self.index
    }
}

/// What happened to the cells of one sweep pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Cells computed here (and persisted).
    pub computed: u64,
    /// Cells served from the store.
    pub hits: u64,
    /// Cells found corrupt on load and recomputed (counted in addition
    /// to `computed`).
    pub corrupt: u64,
    /// Cells skipped as out-of-shard.
    pub skipped: u64,
}

impl SweepStats {
    /// Total cells the experiment declared.
    pub fn declared(&self) -> u64 {
        self.computed + self.hits + self.skipped
    }

    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: SweepStats) {
        self.computed += other.computed;
        self.hits += other.hits;
        self.corrupt += other.corrupt;
        self.skipped += other.skipped;
    }

    /// The one-line summary the CLI prints per experiment and in total.
    pub fn summary(&self) -> String {
        format!(
            "{} cells: {} computed ({} after corruption), {} cached, {} skipped (other shards)",
            self.declared(),
            self.computed,
            self.corrupt,
            self.hits,
            self.skipped
        )
    }
}

/// How one sweep pass executes.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Replication profile.
    pub profile: Profile,
    /// Worker threads per cell computation.
    pub threads: usize,
    /// Restrict computation to one shard (`None` = all cells).
    pub shard: Option<Shard>,
    /// Serve verified cached cells instead of recomputing them.
    pub resume: bool,
    /// Suppress narration and tables. Sharded passes are always quiet:
    /// their non-payload outputs are placeholder-driven garbage.
    pub quiet: bool,
}

/// One experiment's sweep result: the (merged) outcome plus what
/// happened to its cells.
#[derive(Debug)]
pub struct SweepRun {
    /// The engine outcome. Meaningful only for unsharded passes;
    /// sharded passes produce it structurally but its tables carry
    /// placeholders.
    pub outcome: RunOutcome,
    /// Cell accounting for this experiment.
    pub stats: SweepStats,
}

/// The store-backed [`CellExecutor`] a sweep pass installs.
#[derive(Debug)]
pub struct StoreExecutor {
    store: CellStore,
    shard: Option<Shard>,
    resume: bool,
    stats: Arc<Mutex<SweepStats>>,
}

impl CellExecutor for StoreExecutor {
    fn execute(
        &mut self,
        id: &CellId,
        scope: &CellScope,
        compute: &mut dyn FnMut(&CellScope) -> Vec<f64>,
    ) -> Option<Vec<f64>> {
        let mut stats = self.stats.lock().expect("sweep stats poisoned");
        if let Some(shard) = self.shard {
            if !shard.owns(id) {
                stats.skipped += 1;
                return None;
            }
        }
        if self.resume {
            match self.store.load(id) {
                CellLoad::Hit(values) => {
                    stats.hits += 1;
                    return Some(values);
                }
                CellLoad::Corrupt(reason) => {
                    eprintln!(
                        "sweep: corrupt cell {} ({}): {reason}; recomputing",
                        id.file_name(),
                        id.canonical()
                    );
                    stats.corrupt += 1;
                }
                CellLoad::Miss => {}
            }
        }
        let values = compute(scope);
        if let Err(e) = self.store.save(id, &values) {
            // A store that cannot persist cannot deliver resumability;
            // failing loudly beats silently recomputing forever.
            panic!(
                "sweep: failed to persist cell {} under {}: {e}",
                id.canonical(),
                self.store.dir().display()
            );
        }
        stats.computed += 1;
        Some(values)
    }
}

/// Runs one experiment's sweep pass against `store` (see the module
/// docs for the mode semantics).
pub fn sweep_experiment(
    spec: &'static ExperimentSpec,
    store: &CellStore,
    opts: &SweepOptions,
) -> SweepRun {
    let stats = Arc::new(Mutex::new(SweepStats::default()));
    let executor = StoreExecutor {
        store: store.clone(),
        shard: opts.shard,
        resume: opts.resume,
        stats: Arc::clone(&stats),
    };
    let quiet = opts.quiet || opts.shard.is_some();
    let outcome = run_experiment_with_cells(
        spec,
        opts.profile,
        opts.threads,
        quiet,
        Some(Box::new(executor)),
    );
    let stats = *stats.lock().expect("sweep stats poisoned");
    SweepRun { outcome, stats }
}

/// The drift guard: byte-compares a merged sweep outcome against a
/// direct (cell-inline) engine run of the same experiment and profile.
///
/// # Errors
///
/// A description naming the experiment and which result file drifted.
pub fn verify_against_direct_run(sweep: &SweepRun) -> Result<(), String> {
    let spec = sweep.outcome.spec;
    let direct = run_experiment(spec, sweep.outcome.profile, 1, true);
    if sweep.outcome.json != direct.json {
        return Err(format!(
            "{}: sweep JSON drifted from the direct engine run",
            spec.name
        ));
    }
    if sweep.outcome.csv != direct.csv {
        return Err(format!(
            "{}: sweep CSV drifted from the direct engine run",
            spec.name
        ));
    }
    Ok(())
}

/// Schema tag of the sweep-scaling trajectory (`BENCH_sweep_scaling.json`):
/// the cold-vs-warm-cache timing `diversim sweep --bench-out` records.
pub const SWEEP_SCALING_SCHEMA: &str = "diversim-sweep-scaling/v1";

/// Renders the sweep-scaling trajectory document: one cold
/// (compute-everything) pass and one warm (`--resume`, everything
/// cached) pass over the same experiments, with the resulting cache
/// accounting. `speedup` is the headline `cold/warm` wall-clock ratio.
pub fn render_scaling_json(
    profile: Profile,
    threads: usize,
    experiments: u64,
    cold_ns: u128,
    warm_ns: u128,
    cold: SweepStats,
    warm: SweepStats,
) -> String {
    let speedup = cold_ns as f64 / (warm_ns as f64).max(1.0);
    Value::Object(vec![
        ("schema".into(), Value::String(SWEEP_SCALING_SCHEMA.into())),
        ("profile".into(), Value::String(profile.name().to_string())),
        ("threads".into(), Value::Number(threads as f64)),
        ("experiments".into(), Value::Number(experiments as f64)),
        ("cells".into(), Value::Number(cold.declared() as f64)),
        ("cold_ns".into(), Value::Number(cold_ns as f64)),
        ("warm_ns".into(), Value::Number(warm_ns as f64)),
        ("speedup".into(), Value::Number(speedup)),
        ("cold_computed".into(), Value::Number(cold.computed as f64)),
        ("warm_hits".into(), Value::Number(warm.hits as f64)),
        ("warm_computed".into(), Value::Number(warm.computed as f64)),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing_accepts_i_slash_n_only() {
        assert_eq!(Shard::parse("0/2"), Ok(Shard { index: 0, count: 2 }));
        assert_eq!(Shard::parse("3/8"), Ok(Shard { index: 3, count: 8 }));
        for bad in ["", "1", "2/2", "3/2", "a/2", "1/b", "1/0", "-1/2"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn shards_partition_every_cell_exactly_once() {
        let ids: Vec<CellId> = (0..64)
            .map(|i| CellId::new("e99_demo", Profile::Fast, format!("k={i}")))
            .collect();
        for count in 1..=4u64 {
            for id in &ids {
                let owners = (0..count)
                    .filter(|&index| Shard { index, count }.owns(id))
                    .count();
                assert_eq!(
                    owners, 1,
                    "cell must belong to exactly one of {count} shards"
                );
            }
        }
    }

    #[test]
    fn stats_accumulate_and_summarise() {
        let mut total = SweepStats::default();
        total.add(SweepStats {
            computed: 3,
            hits: 2,
            corrupt: 1,
            skipped: 4,
        });
        total.add(SweepStats {
            computed: 1,
            hits: 0,
            corrupt: 0,
            skipped: 0,
        });
        assert_eq!(total.declared(), 10);
        assert_eq!(
            total.summary(),
            "10 cells: 4 computed (1 after corruption), 2 cached, 4 skipped (other shards)"
        );
    }
}
