//! Thin wrapper: runs the registered `e19_structure_penalty` experiment
//! through the shared engine (`diversim run e19`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e19")
}
