//! Thin wrapper: runs the registered `e15_stopping` experiment through the
//! shared engine (`diversim run e15`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e15")
}
