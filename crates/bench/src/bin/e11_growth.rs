//! Thin wrapper: runs the registered `e11_growth` experiment through the
//! shared engine (`diversim run e11`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e11")
}
