//! E11 — reliability growth of single version vs 1-out-of-2 system
//! (replication of the paper's reference \[5\], Djambazov & Popov ISSRE'95).
//!
//! The paper cites simulation showing "how the reliabilities of the
//! versions and of the system improve as a function of testing effort".
//! The experiment produces those growth curves under both suite regimes,
//! with the diversity gain (version pfd / system pfd) as the headline
//! series: under independent suites diversity is preserved as reliability
//! grows; under the shared suite the gain stagnates.

use diversim_bench::worlds::medium_cascade;
use diversim_bench::Table;
use diversim_sim::campaign::CampaignRegime;
use diversim_sim::growth::replicated_growth;
use diversim_testing::fixing::PerfectFixer;
use diversim_testing::oracle::PerfectOracle;

fn main() {
    println!("E11: reliability growth — single version vs 1-out-of-2 system (ref [5])\n");
    let w = medium_cascade(11);
    let threads = diversim_sim::runner::default_threads();
    let replications = 6_000;
    let checkpoints = [0usize, 5, 10, 20, 40, 80, 160, 320, 640];

    let ind = replicated_growth(
        &w.pop_a,
        &w.pop_a,
        &w.generator,
        &checkpoints,
        CampaignRegime::IndependentSuites,
        &PerfectOracle::new(),
        &PerfectFixer::new(),
        &w.profile,
        replications,
        1111,
        threads,
    );
    let sh = replicated_growth(
        &w.pop_a,
        &w.pop_a,
        &w.generator,
        &checkpoints,
        CampaignRegime::SharedSuite,
        &PerfectOracle::new(),
        &PerfectFixer::new(),
        &w.profile,
        replications,
        2222,
        threads,
    );

    let mut table = Table::new(
        &format!("growth curves ({replications} replications, {})", w.label),
        &[
            "demands",
            "version (ind)",
            "system (ind)",
            "gain (ind)",
            "version (shared)",
            "system (shared)",
            "gain (shared)",
        ],
    );
    for (i, &n) in checkpoints.iter().enumerate() {
        let gain_ind = ind.version_a[i].mean() / ind.system[i].mean().max(1e-12);
        let gain_sh = sh.version_a[i].mean() / sh.system[i].mean().max(1e-12);
        table.row(&[
            n.to_string(),
            format!("{:.6}", ind.version_a[i].mean()),
            format!("{:.6}", ind.system[i].mean()),
            format!("{gain_ind:.2}"),
            format!("{:.6}", sh.version_a[i].mean()),
            format!("{:.6}", sh.system[i].mean()),
            format!("{gain_sh:.2}"),
        ]);
    }
    table.emit("e11_growth");

    // Qualitative claims.
    let last = checkpoints.len() - 1;
    assert!(
        ind.system[last].mean() < ind.system[0].mean(),
        "no growth under independent suites"
    );
    assert!(
        sh.system[last].mean() < sh.system[0].mean(),
        "no growth under shared suite"
    );
    // Version-level growth is regime-independent (same marginal process).
    for i in 0..checkpoints.len() {
        let d = (ind.version_a[i].mean() - sh.version_a[i].mean()).abs();
        let se = ind.version_a[i].standard_error() + sh.version_a[i].standard_error();
        assert!(
            d < 5.0 * se + 1e-9,
            "version growth differed between regimes at {i}"
        );
    }
    // System under shared suite lags behind independent suites late in
    // testing.
    assert!(
        sh.system[last].mean() > ind.system[last].mean(),
        "shared suite should lag at high testing effort"
    );
    // Diversity gain: grows under independent suites, stalls under shared.
    let gain_ind_last = ind.version_a[last].mean() / ind.system[last].mean().max(1e-12);
    let gain_sh_last = sh.version_a[last].mean() / sh.system[last].mean().max(1e-12);
    assert!(
        gain_ind_last > gain_sh_last,
        "diversity gain should favour independent suites"
    );

    println!(
        "Claim reproduced: versions grow identically under both regimes, but the\n\
         system's benefit from diversity keeps growing only when the suites are\n\
         independent — with a shared suite the versions become 'more alike'."
    );
}
