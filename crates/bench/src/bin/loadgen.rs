//! Load generator for a running `diversim serve --tcp` endpoint.
//!
//! ```console
//! $ diversim serve --tcp 127.0.0.1:7878 --threads 2 --quiet &
//! $ loadgen --addr 127.0.0.1:7878 --clients 4 --requests 60 \
//!           --out BENCH_serve_loadgen.json
//! ```
//!
//! Exits `0` if every response parsed and reported `ok:true`, `1` if
//! any protocol error occurred, `2` on usage or I/O errors.

use std::process::ExitCode;

use diversim_bench::serve::loadgen::{run, LoadgenOptions};

const USAGE: &str = "loadgen — hammer a diversim serve endpoint with mixed workloads

USAGE:
    loadgen --addr HOST:PORT [--clients N] [--requests N] [--seed N]
            [--out FILE]

OPTIONS:
    --addr HOST:PORT  the running `diversim serve --tcp` endpoint (required)
    --clients N       concurrent client connections [default: 4]
    --requests N      requests per client [default: 30]
    --seed N          base seed of every request [default: 42]
    --out FILE        also write the JSON report to FILE
";

fn parse(args: &[String]) -> Result<(LoadgenOptions, Option<String>), String> {
    let mut addr = None;
    let mut clients = 4usize;
    let mut requests = 30u64;
    let mut seed = 42u64;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?.to_string()),
            "--clients" => {
                clients = value("--clients")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("invalid --clients")?
            }
            "--requests" => {
                requests = value("--requests")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or("invalid --requests")?
            }
            "--seed" => seed = value("--seed")?.parse().map_err(|_| "invalid --seed")?,
            "--out" => out = Some(value("--out")?.to_string()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    Ok((
        LoadgenOptions {
            addr,
            clients,
            requests,
            seed,
        },
        out,
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, out) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: loadgen failed against {}: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "{} requests over {} clients, {} errors, {:.1} req/s",
        report.requests, report.clients, report.errors, report.throughput_rps
    );
    if report.errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
