//! Thin wrapper: runs the registered `e01_el_model` experiment through the
//! shared engine (`diversim run e01`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e01")
}
