//! E1 — Eckhardt–Lee model, equations (6)/(7).
//!
//! Paper claim: `P(both fail on X) = E[Θ]² + Var(Θ) ≥ E[Θ]²`, with
//! equality iff the difficulty function is constant. The experiment sweeps
//! the difficulty spread at fixed mean difficulty and reports the joint
//! pfd, its decomposition and the dependence ratio, cross-checked by
//! Monte Carlo sampling of version pairs.

use diversim_bench::worlds::graded_with_spread;
use diversim_bench::Table;
use diversim_core::el::ElAnalysis;
use diversim_stats::online::MeanVar;
use diversim_universe::population::Population;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E1: Eckhardt–Lee — variance of difficulty drives coincident failure (eqs 6–7)\n");
    let mut table = Table::new(
        "joint pfd vs difficulty spread (mean difficulty fixed at 0.3)",
        &[
            "spread",
            "E[theta]",
            "Var(theta)",
            "joint=E[th^2]",
            "indep=E[th]^2",
            "ratio",
            "MC joint",
        ],
    );

    for &spread in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let world = graded_with_spread(spread);
        let el = ElAnalysis::compute(&world.pop_a, &world.profile);

        // Monte Carlo: draw version pairs, average the exact conditional
        // joint pfd of each pair.
        let mut rng = StdRng::seed_from_u64(1000 + (spread * 10.0) as u64);
        let mut acc = MeanVar::new();
        let model = world.pop_a.model().clone();
        for _ in 0..60_000 {
            let v1 = world.pop_a.sample(&mut rng);
            let v2 = world.pop_a.sample(&mut rng);
            acc.push(diversim_core::system::pair_pfd(
                &v1,
                &v2,
                &model,
                &world.profile,
            ));
        }

        table.row(&[
            format!("{spread:.1}"),
            format!("{:.6}", el.mean_theta),
            format!("{:.6}", el.var_theta),
            format!("{:.6}", el.joint_pfd),
            format!("{:.6}", el.independent_pfd),
            format!("{:.3}", el.dependence_ratio().unwrap_or(f64::NAN)),
            format!("{:.6}", acc.mean()),
        ]);

        // Reproduction assertions.
        assert!(
            el.joint_pfd >= el.independent_pfd - 1e-15,
            "EL inequality violated at spread {spread}"
        );
        if spread == 0.0 {
            assert!(
                (el.joint_pfd - el.independent_pfd).abs() < 1e-12,
                "equality case failed"
            );
        } else {
            assert!(
                el.joint_pfd > el.independent_pfd,
                "strict inequality failed"
            );
        }
        assert!(
            (acc.mean() - el.joint_pfd).abs() < 4.0 * acc.standard_error() + 1e-9,
            "MC disagrees with exact at spread {spread}"
        );
    }

    table.emit("e01_el_model");
    println!(
        "Claim reproduced: joint pfd = E[Θ]² + Var(Θ); independence only under\n\
         constant difficulty, and the penalty grows with the difficulty variance."
    );
}
