//! E6 — the headline marginal result, equations (22) vs (23).
//!
//! Paper claim: "the use of a common test suite increases the marginal
//! probability of system failure", by exactly `Σ_x Var_Ξ(ξ(x,T))Q(x) ≥ 0`.
//! The experiment sweeps the suite size, reporting both regimes' system
//! pfds (exact and Monte Carlo), the penalty, and the ratio.

use diversim_bench::worlds::small_graded;
use diversim_bench::Table;
use diversim_core::marginal::{MarginalAnalysis, SuiteAssignment};
use diversim_sim::campaign::CampaignRegime;
use diversim_sim::estimate::estimate_pair;
use diversim_testing::fixing::PerfectFixer;
use diversim_testing::oracle::PerfectOracle;
use diversim_testing::suite_population::enumerate_iid_suites;

fn main() {
    println!("E6: shared vs independent suites — the marginal system pfd (eqs 22–23)\n");
    let w = small_graded();
    let threads = diversim_sim::runner::default_threads();
    let mut table = Table::new(
        "system pfd vs suite size (exact + MC)",
        &[
            "n",
            "indep (eq22)",
            "shared (eq23)",
            "penalty",
            "shared/indep",
            "MC indep",
            "MC shared",
        ],
    );

    for n in [0usize, 1, 2, 4, 6, 8, 12] {
        let m = enumerate_iid_suites(&w.profile, n, 1 << 16).expect("enumerable");
        let ind = MarginalAnalysis::compute(
            &w.pop_a,
            &w.pop_a,
            SuiteAssignment::independent(&m),
            &w.profile,
        );
        let sh =
            MarginalAnalysis::compute(&w.pop_a, &w.pop_a, SuiteAssignment::Shared(&m), &w.profile);
        let mc_ind = estimate_pair(
            &w.pop_a,
            &w.pop_a,
            &w.generator,
            n,
            CampaignRegime::IndependentSuites,
            &PerfectOracle::new(),
            &PerfectFixer::new(),
            &w.profile,
            30_000,
            600 + n as u64,
            threads,
        );
        let mc_sh = estimate_pair(
            &w.pop_a,
            &w.pop_a,
            &w.generator,
            n,
            CampaignRegime::SharedSuite,
            &PerfectOracle::new(),
            &PerfectFixer::new(),
            &w.profile,
            30_000,
            700 + n as u64,
            threads,
        );
        let ratio = if ind.system_pfd() > 0.0 {
            sh.system_pfd() / ind.system_pfd()
        } else {
            1.0
        };
        table.row(&[
            n.to_string(),
            format!("{:.6}", ind.system_pfd()),
            format!("{:.6}", sh.system_pfd()),
            format!("{:.6}", sh.suite_coupling),
            format!("{ratio:.3}"),
            format!("{:.6}", mc_ind.system_pfd.mean),
            format!("{:.6}", mc_sh.system_pfd.mean),
        ]);

        assert!(
            sh.system_pfd() + 1e-12 >= ind.system_pfd(),
            "eq23 < eq22 at n={n}"
        );
        assert!(sh.suite_coupling >= -1e-12, "negative penalty at n={n}");
        assert!(
            (mc_ind.system_pfd.mean - ind.system_pfd()).abs()
                < 4.0 * mc_ind.system_pfd.standard_error + 1e-9,
            "MC/exact mismatch (independent) at n={n}"
        );
        assert!(
            (mc_sh.system_pfd.mean - sh.system_pfd()).abs()
                < 4.0 * mc_sh.system_pfd.standard_error + 1e-9,
            "MC/exact mismatch (shared) at n={n}"
        );
    }

    table.emit("e06_marginal_regimes");
    println!(
        "Claim reproduced: shared-suite testing is never better and typically\n\
         much worse marginally (ratio grows as testing removes the easy faults);\n\
         at n=0 the regimes coincide with the untested EL value."
    );
}
