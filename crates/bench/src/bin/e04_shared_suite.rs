//! Thin wrapper: runs the registered `e04_shared_suite` experiment through the
//! shared engine (`diversim run e04`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e04")
}
