//! Thin wrapper: runs the registered `e14_nversion` experiment through the
//! shared engine (`diversim run e14`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e14")
}
