//! Thin wrapper: runs the registered `e17_adaptive_policies` experiment through
//! the shared engine (`diversim run e17`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e17")
}
