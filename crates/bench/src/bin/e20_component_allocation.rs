//! Thin wrapper: runs the registered `e20_component_allocation` experiment
//! through the shared engine (`diversim run e20`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e20")
}
