//! E8 — the §3.4.1 cost trade-off.
//!
//! Paper discussion: with free test *execution*, merging the two generated
//! suites (2n demands, shared) beats independent n-demand suites — "with
//! the longer test not only the individual reliability of the versions is
//! going to be better but so is the system reliability"; with expensive
//! execution the comparison at equal *run budget* (n demands per version)
//! favours independent suites. The experiment measures three budgets:
//!
//! * independent: one n-demand suite per version (2n executions total);
//! * shared-n: one n-demand suite run on both versions (2n executions);
//! * merged-2n: the union of two n-demand suites run on both versions
//!   (4n executions — the "free running" scenario).

use diversim_bench::worlds::medium_cascade;
use diversim_bench::Table;
use diversim_sim::campaign::CampaignRegime;
use diversim_sim::estimate::estimate_pair;
use diversim_sim::growth::merged_suite_comparison;
use diversim_stats::online::MeanVar;
use diversim_testing::fixing::PerfectFixer;
use diversim_testing::oracle::PerfectOracle;

fn main() {
    println!("E8: §3.4.1 cost trade-off — merged 2n shared vs independent n vs shared n\n");
    let w = medium_cascade(11);
    let threads = diversim_sim::runner::default_threads();
    let replications = 4_000u64;
    let mut table = Table::new(
        "system pfd by budget interpretation",
        &[
            "n",
            "independent(n each)",
            "shared(n)",
            "merged(2n shared)",
            "best",
        ],
    );

    for n in [5usize, 10, 20, 40, 80] {
        let ind = estimate_pair(
            &w.pop_a,
            &w.pop_a,
            &w.generator,
            n,
            CampaignRegime::IndependentSuites,
            &PerfectOracle::new(),
            &PerfectFixer::new(),
            &w.profile,
            replications,
            800 + n as u64,
            threads,
        );
        let shared = estimate_pair(
            &w.pop_a,
            &w.pop_a,
            &w.generator,
            n,
            CampaignRegime::SharedSuite,
            &PerfectOracle::new(),
            &PerfectFixer::new(),
            &w.profile,
            replications,
            900 + n as u64,
            threads,
        );
        // Merged arm via the paired comparison helper.
        let mut merged = MeanVar::new();
        for seed in 0..replications {
            let c = merged_suite_comparison(
                &w.pop_a,
                &w.pop_a,
                &w.generator,
                n,
                &PerfectOracle::new(),
                &PerfectFixer::new(),
                &w.profile,
                10_000 + seed,
            );
            merged.push(c.merged_system);
        }
        let vals = [ind.system_pfd.mean, shared.system_pfd.mean, merged.mean()];
        let best = ["independent", "shared", "merged"][vals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")];
        table.row(&[
            n.to_string(),
            format!("{:.6}", ind.system_pfd.mean),
            format!("{:.6}", shared.system_pfd.mean),
            format!("{:.6}", merged.mean()),
            best.to_string(),
        ]);

        // Qualitative claims: at equal run budget, independent ≤ shared;
        // with free running, merged ≤ independent.
        assert!(
            ind.system_pfd.mean <= shared.system_pfd.mean + 3.0 * shared.system_pfd.standard_error,
            "independent should beat shared at equal run budget (n={n})"
        );
        assert!(
            merged.mean() <= ind.system_pfd.mean + 3.0 * ind.system_pfd.standard_error,
            "merged 2n should beat independent n (n={n})"
        );
    }

    table.emit("e08_cost_tradeoff");
    println!(
        "Claim reproduced: at equal execution budget independent suites win\n\
         (diversity preserved); if execution is free the merged 2n shared suite\n\
         wins (more faults removed trumps lost diversity) — the two poles of the\n\
         paper's cost discussion."
    );
}
