//! Thin wrapper: runs the registered `e10_back_to_back` experiment through the
//! shared engine (`diversim run e10`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e10")
}
