//! Thin wrapper: runs the registered `e07_forced_marginal` experiment through the
//! shared engine (`diversim run e07`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e07")
}
