//! E5 — forced design diversity on a shared suite, equation (21).
//!
//! Paper claim: for methodologies A ≠ B tested on one suite the joint
//! probability on demand x is `ζ_A(x)ζ_B(x) + Cov_Ξ(ξ_A(x,T), ξ_B(x,T))`,
//! and unlike the single-population case the covariance term can be
//! positive *or* negative. The experiment exhibits both signs.

use diversim_bench::worlds::{mirrored, negative_coupling};
use diversim_bench::Table;
use diversim_core::difficulty::zeta;
use diversim_core::testing_effect::joint_shared_suite;
use diversim_exact::brute;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::population::Population;

fn run_world(
    label: &str,
    world: &diversim_bench::worlds::World,
    suite_size: usize,
    table: &mut Table,
) -> (f64, f64) {
    let m = enumerate_iid_suites(&world.profile, suite_size, 1 << 14).expect("enumerable");
    let sa = world.pop_a.enumerate(1 << 12).expect("enumerable");
    let sb = world.pop_b.enumerate(1 << 12).expect("enumerable");
    let mut min_cov = f64::INFINITY;
    let mut max_cov = f64::NEG_INFINITY;
    for x in world.profile.space().iter() {
        let joint = joint_shared_suite(&world.pop_a, &world.pop_b, &m, x);
        let brute_joint = brute::joint_on_demand_shared(&sa, &sb, &m, world.pop_a.model(), x);
        assert!(
            (joint.total() - brute_joint).abs() < 1e-12,
            "eq21 brute mismatch"
        );
        let prod = zeta(&world.pop_a, x, &m) * zeta(&world.pop_b, x, &m);
        assert!(
            (joint.independent - prod).abs() < 1e-12,
            "eq21 mean term mismatch"
        );
        min_cov = min_cov.min(joint.coupling);
        max_cov = max_cov.max(joint.coupling);
        table.row(&[
            label.to_string(),
            x.to_string(),
            format!("{:.6}", joint.independent),
            format!("{:+.6}", joint.coupling),
            format!("{:.6}", joint.total()),
        ]);
    }
    (min_cov, max_cov)
}

fn main() {
    println!(
        "E5: forced diversity on a shared suite — the covariance can take either sign (eq 21)\n"
    );
    let mut table = Table::new(
        "per-demand eq-21 decomposition",
        &[
            "world",
            "demand",
            "zeta_A*zeta_B",
            "Cov_Xi(xi_A,xi_B)",
            "joint",
        ],
    );

    // Mirrored singleton world: coupling is non-negative (suites kill both
    // methodologies' faults on the same demands).
    let wm = mirrored(0.8, 0.1);
    let (_, max_cov_m) = run_world("mirrored", &wm, 1, &mut table);

    // Engineered overlap world: the same suite repairs A and B on
    // *different* demands → negative covariance on the contested demand.
    let wn = negative_coupling();
    let (min_cov_n, _) = run_world("neg-coupling", &wn, 1, &mut table);

    table.emit("e05_forced_shared");

    assert!(
        max_cov_m > 0.0,
        "expected a positive coupling demand in the mirrored world"
    );
    assert!(
        min_cov_n < 0.0,
        "expected a negative coupling demand in the engineered world"
    );
    println!(
        "Claim reproduced: Cov_Ξ(ξ_A, ξ_B) > 0 on some worlds (shared testing\n\
         hurts) and < 0 on others (shared testing *helps*) — exactly the eq-21\n\
         ambiguity the paper highlights."
    );
}
