//! Thin wrapper: runs the registered `e05_forced_shared` experiment through the
//! shared engine (`diversim run e05`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e05")
}
