//! Thin wrapper: runs the registered `e18_policy_coupling` experiment through
//! the shared engine (`diversim run e18`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e18")
}
