//! Thin wrapper: runs the registered `e12_difficulty_variance` experiment through the
//! shared engine (`diversim run e12`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e12")
}
