//! The unified `diversim` experiment driver.
//!
//! ```console
//! $ diversim list
//! $ diversim run e01
//! $ diversim run --all --fast --threads 4 --out results/
//! $ diversim docs --write
//! ```

fn main() -> std::process::ExitCode {
    diversim_bench::cli::main()
}
