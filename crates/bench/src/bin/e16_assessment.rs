//! Thin wrapper: runs the registered `e16_assessment` experiment through the
//! shared engine (`diversim run e16`). Accepts the same flags as
//! `diversim run` (`--fast`, `--threads N`, `--out DIR`, …).

fn main() -> std::process::ExitCode {
    diversim_bench::cli::experiment_binary_main("e16")
}
