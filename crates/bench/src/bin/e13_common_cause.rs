//! E13 — §5 extensions: common clarifications and common mistakes.
//!
//! Paper claim (conclusion): commonalities other than shared test suites
//! — "a common clarification … sent to all development teams", or
//! "giving incorrect instructions to all teams" — act through the same
//! mechanism: they reduce diversity. A common mistake "will result in
//! setting the scores of all demands affected to 1". The experiment
//! compares *common* mistakes against *independent* mistakes of equal
//! version-level severity, and measures what common clarifications do to
//! both reliability and diversity.

use diversim_bench::worlds::medium_cascade;
use diversim_bench::Table;
use diversim_sim::common_cause::{clarification_study, mistake_study, MistakeMode};

fn main() {
    println!("E13: common clarifications and mistakes (§5 extensions)\n");
    let w = medium_cascade(11);
    let threads = diversim_sim::runner::default_threads();
    let replications = 4_000;

    let mut table = Table::new(
        "common vs independent mistakes (same per-version severity)",
        &[
            "mistakes",
            "version pfd (common)",
            "version pfd (indep)",
            "system pfd (common)",
            "system pfd (indep)",
            "system ratio",
        ],
    );
    for mistakes in [1usize, 2, 4, 8] {
        let common = mistake_study(
            &w.pop_a,
            &w.profile,
            mistakes,
            MistakeMode::Common,
            replications,
            1300 + mistakes as u64,
            threads,
        );
        let independent = mistake_study(
            &w.pop_a,
            &w.profile,
            mistakes,
            MistakeMode::Independent,
            replications,
            1400 + mistakes as u64,
            threads,
        );
        let ratio = common.system_pfd.mean() / independent.system_pfd.mean().max(1e-12);
        table.row(&[
            mistakes.to_string(),
            format!("{:.6}", common.version_pfd.mean()),
            format!("{:.6}", independent.version_pfd.mean()),
            format!("{:.6}", common.system_pfd.mean()),
            format!("{:.6}", independent.system_pfd.mean()),
            format!("{ratio:.2}"),
        ]);
        // Version-level severity statistically equal; system-level damage
        // strictly worse under common mistakes.
        let se = common.version_pfd.standard_error() + independent.version_pfd.standard_error();
        assert!(
            (common.version_pfd.mean() - independent.version_pfd.mean()).abs() < 5.0 * se + 1e-9,
            "version severity diverged at {mistakes} mistakes"
        );
        assert!(
            common.system_pfd.mean() > independent.system_pfd.mean(),
            "common mistakes must hurt the system more"
        );
    }
    table.emit("e13_mistakes");

    let mut table2 = Table::new(
        "common clarifications: reliability up, overlap up",
        &["clarified", "version pfd", "system pfd", "jaccard overlap"],
    );
    let mut last_version = f64::INFINITY;
    for clarified in [0usize, 4, 8, 16, 32] {
        let study = clarification_study(
            &w.pop_a,
            &w.profile,
            clarified,
            replications,
            1500 + clarified as u64,
            threads,
        );
        table2.row(&[
            clarified.to_string(),
            format!("{:.6}", study.version_pfd.mean()),
            format!("{:.6}", study.system_pfd.mean()),
            format!("{:.4}", study.jaccard.mean()),
        ]);
        assert!(
            study.version_pfd.mean() <= last_version + 1e-9,
            "clarifications must help versions"
        );
        last_version = study.version_pfd.mean();
    }
    table2.emit("e13_clarifications");

    println!(
        "Claim reproduced: at identical per-version severity, common mistakes\n\
         inflate the system pfd relative to independent ones (here by 8-35%,\n\
         growing with the mistake count; on otherwise-correct versions the\n\
         ratio is unbounded — see the crate's unit tests). Clarifications help\n\
         both levels while making the survivors' failure sets more alike — the\n\
         §5 'common knowledge' channel of dependence, modelled exactly as the\n\
         paper sketches (scores forced to 1 on all affected demands)."
    );
}
