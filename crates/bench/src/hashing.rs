//! The content-hash primitive shared by every on-disk / in-memory
//! cache key in this crate.
//!
//! Both the serve world cache ([`crate::serve::request::WorldSpec::content_hash`])
//! and the sweep cell store ([`crate::sweep::cell::CellId::content_hash`])
//! key their entries by FNV-1a 64 over a canonical encoding. The
//! function lives here so the two caches can never drift apart, and the
//! pinned-vector tests below freeze the on-disk cache format: a change
//! to this function would silently invalidate every
//! `results/cells/<hash>.json` file ever written, so it must fail a test
//! instead.

/// FNV-1a 64-bit over `bytes`. Stable across platforms and process
/// runs — the same input hashes identically on every machine, which is
/// what makes `--shard i/n` partitions and cell file names portable.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// [`fnv1a64`] rendered as the canonical 16-hex-digit form used in
/// cell file names and response `world_hash` fields.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known FNV-1a 64 vectors (public reference values). If any of
    /// these change, every content-addressed cache key — serve world
    /// hashes and sweep cell file names — changes with them, so this
    /// test failing means the on-disk format broke.
    #[test]
    fn pinned_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn hex_form_is_zero_padded_lowercase() {
        assert_eq!(fnv1a64_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a64_hex(b"a"), "af63dc4c8601ec8c");
        // 16 digits even when the hash has leading zeros.
        assert_eq!(fnv1a64_hex(b"a").len(), 16);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a64(b"cell|a"), fnv1a64(b"cell|b"));
        assert_ne!(fnv1a64(b"x"), fnv1a64(b"x\0"));
    }
}
