//! Standard universes used across the experiments, so that every
//! experiment states its workload in one line and the reports stay
//! comparable.
//!
//! The world *type* is `sim`'s canonical [`World`] (re-exported here);
//! this module only keeps the named fixtures. Labels are derived from
//! the world parameters by [`World`] itself, so they can never drift
//! from the actual workload.

use rand::rngs::StdRng;
use rand::SeedableRng;

use diversim_universe::generator::{
    mirrored_pair, ProfileKind, PropensityKind, RegionSize, UniverseSpec,
};
use diversim_universe::population::BernoulliPopulation;
use diversim_universe::profile::UsageProfile;

pub use diversim_sim::world::World;

/// The canonical small exact world: 6 demands, singleton faults, graded
/// difficulty 0.02–0.6, uniform usage. Fully enumerable.
pub fn small_graded() -> World {
    World::singleton_uniform("small-graded", vec![0.02, 0.05, 0.1, 0.2, 0.4, 0.6])
        .expect("valid propensities")
}

/// A graded singleton world with a constant-difficulty twin: used to show
/// the EL equality case. `spread` interpolates between constant difficulty
/// (0.0) and strongly varying difficulty (1.0) at fixed mean 0.3.
pub fn graded_with_spread(spread: f64) -> World {
    let mean = 0.3;
    // Difficulty points symmetric around the mean, scaled by `spread`.
    let offsets = [-0.25, -0.15, -0.05, 0.05, 0.15, 0.25];
    let props: Vec<f64> = offsets
        .iter()
        .map(|o| (mean + o * spread).clamp(0.0, 1.0))
        .collect();
    World::singleton_uniform("graded-spread", props).expect("valid propensities")
}

/// A forced-diversity world: mirrored methodologies over 8 singleton
/// faults (negative difficulty covariance).
pub fn mirrored(hi: f64, lo: f64) -> World {
    use diversim_universe::demand::DemandSpace;
    use diversim_universe::fault::FaultModelBuilder;
    use std::sync::Arc;
    let space = DemandSpace::new(8).expect("non-empty");
    let model = Arc::new(
        FaultModelBuilder::new(space)
            .singleton_faults()
            .build()
            .expect("valid"),
    );
    let (pop_a, pop_b) = mirrored_pair(&model, hi, lo).expect("valid propensities");
    World::forced("mirrored", pop_a, pop_b, UsageProfile::uniform(space))
}

/// The engineered negative-eq-25-coupling world: two faults with
/// overlapping regions, each prone for one methodology only.
pub fn negative_coupling() -> World {
    use diversim_universe::demand::{DemandId, DemandSpace};
    use diversim_universe::fault::FaultModelBuilder;
    use std::sync::Arc;
    let space = DemandSpace::new(3).expect("non-empty");
    let model = Arc::new(
        FaultModelBuilder::new(space)
            .fault([DemandId::new(0), DemandId::new(1)])
            .fault([DemandId::new(0), DemandId::new(2)])
            .build()
            .expect("valid"),
    );
    let pop_a = BernoulliPopulation::new(Arc::clone(&model), vec![0.9, 0.0]).expect("valid");
    let pop_b = BernoulliPopulation::new(Arc::clone(&model), vec![0.0, 0.9]).expect("valid");
    World::forced(
        "negative-coupling",
        pop_a,
        pop_b,
        UsageProfile::uniform(space),
    )
}

/// An asymmetric-quality world for the adaptive-allocation experiments
/// (e17/e18): the methodologies produce different fault *geometries*.
/// Version A is riddled with broad methodological blunders — likely
/// faults covering 2–3 demand regions, so each test clears them at a
/// high per-test rate. Version B carries only rare narrow defects —
/// unlikely singleton faults that a uniform test hits slowly.
///
/// The geometry is what makes test *allocation* matter. With a shared
/// fault model the per-demand joint survival decays at the same
/// per-test rate on both sides, so every private split of a fixed
/// budget delivers the same system pfd. Here the rates differ (≈1/2 per
/// test on A's region faults vs 1/6 on B's singletons), so
/// concentrating the budget on A is first-order better than the even
/// split of independent suites — an edge an adaptive policy can
/// discover from observed failures alone.
pub fn asymmetric() -> World {
    use diversim_universe::demand::{DemandId, DemandSpace};
    use diversim_universe::fault::FaultModelBuilder;
    use std::sync::Arc;
    let space = DemandSpace::new(6).expect("non-empty");
    let d = DemandId::new;
    let model = Arc::new(
        FaultModelBuilder::new(space)
            // A's broad blunders: multi-demand regions, quick to flush.
            .fault([d(0), d(1), d(2)])
            .fault([d(3), d(4), d(5)])
            .fault([d(0), d(3)])
            .fault([d(1), d(4)])
            .fault([d(2), d(5)])
            // B's narrow defects: singletons, slow to hit.
            .fault([d(0)])
            .fault([d(1)])
            .fault([d(2)])
            .fault([d(3)])
            .fault([d(4)])
            .fault([d(5)])
            .build()
            .expect("valid"),
    );
    let props_a = vec![0.5, 0.5, 0.35, 0.35, 0.35, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
    let props_b = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.06, 0.06, 0.06, 0.06, 0.06, 0.06];
    let pop_a = BernoulliPopulation::new(Arc::clone(&model), props_a).expect("valid");
    let pop_b = BernoulliPopulation::new(model, props_b).expect("valid");
    World::forced("asymmetric", pop_a, pop_b, UsageProfile::uniform(space))
}

/// A medium simulation world with fault-region cascades: 200 demands, 60
/// faults of region size 1–4, Zipf(0.8) usage, Bernoulli propensities in
/// [0.05, 0.5]. Too large to enumerate; exercised by Monte Carlo.
pub fn medium_cascade(seed: u64) -> World {
    let spec = UniverseSpec {
        n_demands: 200,
        n_faults: 60,
        region_size: RegionSize::Uniform { min: 1, max: 4 },
        profile: ProfileKind::Zipf(0.8),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (universe, pop) = spec
        .generate_with_population(&mut rng, PropensityKind::Uniform { lo: 0.05, hi: 0.5 })
        .expect("valid spec");
    World::from_universe("medium-cascade", &universe, pop)
}

/// A large simulation world for benchmarking throughput: 2000 demands,
/// 400 faults, geometric regions (mean 3), harmonic propensities.
pub fn large(seed: u64) -> World {
    let spec = UniverseSpec {
        n_demands: 2000,
        n_faults: 400,
        region_size: RegionSize::Geometric { mean: 3.0 },
        profile: ProfileKind::Zipf(1.0),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (universe, pop) = spec
        .generate_with_population(&mut rng, PropensityKind::Harmonic { hi: 0.5 })
        .expect("valid spec");
    World::from_universe("large", &universe, pop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::population::Population;

    #[test]
    fn worlds_construct_and_are_consistent() {
        for world in [
            small_graded(),
            graded_with_spread(0.5),
            mirrored(0.5, 0.05),
            negative_coupling(),
            asymmetric(),
            medium_cascade(1),
            large(2),
        ] {
            assert_eq!(world.pop_a.model().space(), world.profile.space());
            assert_eq!(world.pop_b.model().space(), world.profile.space());
            assert!(!world.label().is_empty());
        }
    }

    #[test]
    fn labels_are_derived_from_parameters() {
        assert_eq!(
            small_graded().label(),
            "small-graded (6 demands, 6 faults, singleton, uniform Q)"
        );
        assert_eq!(
            negative_coupling().label(),
            "negative-coupling (3 demands, 2 faults, regions ≤2, uniform Q)"
        );
        let medium = medium_cascade(1);
        assert!(medium
            .label()
            .starts_with("medium-cascade (200 demands, 60 faults,"));
        assert!(medium.label().ends_with("skewed Q)"));
    }

    #[test]
    fn asymmetric_world_makes_a_the_buggier_version() {
        let w = asymmetric();
        let a: f64 = w.pop_a.theta_vector().iter().sum();
        let b: f64 = w.pop_b.theta_vector().iter().sum();
        assert!(a > 4.0 * b, "A must be markedly buggier: {a} vs {b}");
    }

    #[test]
    fn spread_zero_gives_constant_difficulty() {
        let w = graded_with_spread(0.0);
        let thetas = w.pop_a.theta_vector();
        for t in &thetas {
            assert!((t - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn spread_one_varies_difficulty() {
        let w = graded_with_spread(1.0);
        let thetas = w.pop_a.theta_vector();
        assert!(thetas.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 0.5);
        assert!(thetas.iter().cloned().fold(f64::INFINITY, f64::min) < 0.1);
    }
}
