//! Standard universes used across the experiments, so that every binary
//! states its workload in one line and the reports stay comparable.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use diversim_testing::generation::ProfileGenerator;
use diversim_universe::demand::DemandSpace;
use diversim_universe::fault::{FaultModel, FaultModelBuilder};
use diversim_universe::generator::{
    mirrored_pair, ProfileKind, PropensityKind, RegionSize, UniverseSpec,
};
use diversim_universe::population::BernoulliPopulation;
use diversim_universe::profile::UsageProfile;

/// A ready-to-run world: population(s), usage profile and suite generator.
#[derive(Debug, Clone)]
pub struct World {
    /// Methodology A.
    pub pop_a: BernoulliPopulation,
    /// Methodology B (equal to A for unforced worlds).
    pub pop_b: BernoulliPopulation,
    /// The operational profile `Q(·)`.
    pub profile: UsageProfile,
    /// Operational-profile suite generator.
    pub generator: ProfileGenerator,
    /// Short description for reports.
    pub label: &'static str,
}

fn singleton_model(n: usize) -> Arc<FaultModel> {
    let space = DemandSpace::new(n).expect("non-empty");
    Arc::new(
        FaultModelBuilder::new(space)
            .singleton_faults()
            .build()
            .expect("valid"),
    )
}

/// The canonical small exact world: 6 demands, singleton faults, graded
/// difficulty 0.02–0.6, uniform usage. Fully enumerable.
pub fn small_graded() -> World {
    let model = singleton_model(6);
    let props = vec![0.02, 0.05, 0.1, 0.2, 0.4, 0.6];
    let pop = BernoulliPopulation::new(Arc::clone(&model), props).expect("valid");
    let profile = UsageProfile::uniform(model.space());
    World {
        pop_a: pop.clone(),
        pop_b: pop,
        generator: ProfileGenerator::new(profile.clone()),
        profile,
        label: "small-graded (6 demands, singleton, uniform Q)",
    }
}

/// A graded singleton world with a constant-difficulty twin: used to show
/// the EL equality case. `spread` interpolates between constant difficulty
/// (0.0) and strongly varying difficulty (1.0) at fixed mean 0.3.
pub fn graded_with_spread(spread: f64) -> World {
    let model = singleton_model(6);
    let mean = 0.3;
    // Difficulty points symmetric around the mean, scaled by `spread`.
    let offsets = [-0.25, -0.15, -0.05, 0.05, 0.15, 0.25];
    let props: Vec<f64> = offsets
        .iter()
        .map(|o| (mean + o * spread).clamp(0.0, 1.0))
        .collect();
    let pop = BernoulliPopulation::new(Arc::clone(&model), props).expect("valid");
    let profile = UsageProfile::uniform(model.space());
    World {
        pop_a: pop.clone(),
        pop_b: pop,
        generator: ProfileGenerator::new(profile.clone()),
        profile,
        label: "graded-spread (6 demands, singleton, mean difficulty 0.3)",
    }
}

/// A forced-diversity world: mirrored methodologies over 8 singleton
/// faults (negative difficulty covariance).
pub fn mirrored(hi: f64, lo: f64) -> World {
    let model = singleton_model(8);
    let (pop_a, pop_b) = mirrored_pair(&model, hi, lo).expect("valid propensities");
    let profile = UsageProfile::uniform(model.space());
    World {
        pop_a,
        pop_b,
        generator: ProfileGenerator::new(profile.clone()),
        profile,
        label: "mirrored forced diversity (8 demands, singleton)",
    }
}

/// The engineered negative-eq-25-coupling world: two faults with
/// overlapping regions, each prone for one methodology only.
pub fn negative_coupling() -> World {
    use diversim_universe::demand::DemandId;
    let space = DemandSpace::new(3).expect("non-empty");
    let model = Arc::new(
        FaultModelBuilder::new(space)
            .fault([DemandId::new(0), DemandId::new(1)])
            .fault([DemandId::new(0), DemandId::new(2)])
            .build()
            .expect("valid"),
    );
    let pop_a = BernoulliPopulation::new(Arc::clone(&model), vec![0.9, 0.0]).expect("valid");
    let pop_b = BernoulliPopulation::new(Arc::clone(&model), vec![0.0, 0.9]).expect("valid");
    let profile = UsageProfile::uniform(space);
    World {
        pop_a,
        pop_b,
        generator: ProfileGenerator::new(profile.clone()),
        profile,
        label: "negative-coupling (3 demands, overlapping regions)",
    }
}

/// A medium simulation world with fault-region cascades: 200 demands, 60
/// faults of region size 1–4, Zipf(0.8) usage, Bernoulli propensities in
/// [0.05, 0.5]. Too large to enumerate; exercised by Monte Carlo.
pub fn medium_cascade(seed: u64) -> World {
    let spec = UniverseSpec {
        n_demands: 200,
        n_faults: 60,
        region_size: RegionSize::Uniform { min: 1, max: 4 },
        profile: ProfileKind::Zipf(0.8),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (universe, pop) = spec
        .generate_with_population(&mut rng, PropensityKind::Uniform { lo: 0.05, hi: 0.5 })
        .expect("valid spec");
    let profile = universe.profile().clone();
    World {
        pop_a: pop.clone(),
        pop_b: pop,
        generator: ProfileGenerator::new(profile.clone()),
        profile,
        label: "medium-cascade (200 demands, 60 faults, Zipf usage)",
    }
}

/// A large simulation world for benchmarking throughput: 2000 demands,
/// 400 faults, geometric regions (mean 3), harmonic propensities.
pub fn large(seed: u64) -> World {
    let spec = UniverseSpec {
        n_demands: 2000,
        n_faults: 400,
        region_size: RegionSize::Geometric { mean: 3.0 },
        profile: ProfileKind::Zipf(1.0),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (universe, pop) = spec
        .generate_with_population(&mut rng, PropensityKind::Harmonic { hi: 0.5 })
        .expect("valid spec");
    let profile = universe.profile().clone();
    World {
        pop_a: pop.clone(),
        pop_b: pop,
        generator: ProfileGenerator::new(profile.clone()),
        profile,
        label: "large (2000 demands, 400 faults)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diversim_universe::population::Population;

    #[test]
    fn worlds_construct_and_are_consistent() {
        for world in [
            small_graded(),
            graded_with_spread(0.5),
            mirrored(0.5, 0.05),
            negative_coupling(),
            medium_cascade(1),
            large(2),
        ] {
            assert_eq!(world.pop_a.model().space(), world.profile.space());
            assert_eq!(world.pop_b.model().space(), world.profile.space());
            assert!(!world.label.is_empty());
        }
    }

    #[test]
    fn spread_zero_gives_constant_difficulty() {
        let w = graded_with_spread(0.0);
        let thetas = w.pop_a.theta_vector();
        for t in &thetas {
            assert!((t - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn spread_one_varies_difficulty() {
        let w = graded_with_spread(1.0);
        let thetas = w.pop_a.theta_vector();
        assert!(thetas.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 0.5);
        assert!(thetas.iter().cloned().fold(f64::INFINITY, f64::min) < 0.1);
    }
}
