//! A minimal JSON parse+emit module for the engine's own documents and
//! the `diversim serve` wire protocol.
//!
//! The workspace's vendored `serde` is a no-op derive stub (the build
//! image has no crates.io access), so both sides of the engine's JSON
//! handling live here: a small recursive-descent parser covering
//! exactly the JSON the engine emits — objects, arrays, strings with
//! escapes, numbers, booleans and null — and a strict, deterministic
//! writer ([`Value::to_json`]) that the parser round-trips. The reader
//! serves `diversim report` (rebuilding a report book from previously
//! written `results/*.json` files) and the serve protocol's *tolerant*
//! request side (member order is free, unknown members are ignored by
//! [`Value::get`]-based consumers); the writer renders the protocol's
//! *strict* response side (fixed member order, stable escaping), so
//! responses are byte-deterministic.

/// A parsed JSON value. Object members keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (as `f64` — ample for the result schema).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders this value as a compact JSON document.
    ///
    /// The writer is strict and deterministic: object members keep
    /// their stored order, strings are escaped exactly like
    /// [`crate::report::json_escape`], numbers with an exact integer
    /// value inside the `f64`-safe range print without a fraction, and
    /// everything else uses Rust's shortest round-tripping `f64`
    /// display. Non-finite numbers (which JSON cannot represent)
    /// render as `null`.
    ///
    /// `parse(v.to_json()) == v` holds for every value free of
    /// non-finite numbers — the round-trip property tests pin this.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => {
                out.push('"');
                out.push_str(&crate::report::json_escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&crate::report::json_escape(key));
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders one JSON number: integers without a fraction inside the
/// exactly-representable range, shortest round-tripping decimal
/// otherwise, `null` for non-finite values.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    const SAFE: f64 = 9_007_199_254_740_992.0; // 2^53
    if n.trunc() == n && n.abs() < SAFE {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// A parse failure: what went wrong and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser { input, pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.bytes().get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes()[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes()
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates never appear in the engine's own
                            // output (it escapes only control characters);
                            // map them to U+FFFD rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // The cursor only ever advances past ASCII bytes or
                    // whole characters, so it sits on a char boundary.
                    let ch = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e-3").unwrap(), Value::Number(-0.0125));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let doc = parse(r#"{"b":[1,2,{"c":"d"}],"a":null}"#).unwrap();
        let Value::Object(members) = &doc else {
            panic!("object expected")
        };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        let items = doc.get("b").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[2].get("c").unwrap().as_str(), Some("d"));
        assert_eq!(doc.get("a"), Some(&Value::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse(r#""a\"b\\c\nd\tAé""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nd\tAé"));
    }

    #[test]
    fn round_trips_the_engines_own_escaping() {
        let original = "say \"hi\"\nand\ttabs \\ plus \u{1} control";
        let escaped = format!("\"{}\"", crate::report::json_escape(original));
        assert_eq!(parse(&escaped).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\":}", "tru", "1 2", "{]"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
    }

    #[test]
    fn emits_compact_deterministic_documents() {
        let value = Value::Object(vec![
            (
                "b".into(),
                Value::Array(vec![Value::Number(1.0), Value::Null]),
            ),
            ("a".into(), Value::String("x\"y".into())),
            ("c".into(), Value::Bool(false)),
        ]);
        assert_eq!(value.to_json(), r#"{"b":[1,null],"a":"x\"y","c":false}"#);
        assert_eq!(parse(&value.to_json()).unwrap(), value);
    }

    #[test]
    fn number_formatting_round_trips() {
        for n in [
            0.0,
            -0.0,
            1.0,
            -17.0,
            0.1,
            -12.5e-3,
            1.5e300,
            f64::MIN_POSITIVE,
            9_007_199_254_740_991.0,
            9_007_199_254_740_993.0,
        ] {
            let text = Value::Number(n).to_json();
            assert_eq!(
                parse(&text).unwrap(),
                Value::Number(n),
                "{n} did not round-trip via {text}"
            );
        }
        assert_eq!(Value::Number(3.0).to_json(), "3");
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn emit_parse_round_trips_nested_structures() {
        let doc = parse(r#"{"b":[1,2,{"c":"d\n\t"}],"a":null,"e":[[],{}]}"#).unwrap();
        assert_eq!(parse(&doc.to_json()).unwrap(), doc);
    }
}
