//! Content-addressed LRU cache of prepared worlds.
//!
//! Building a [`World`] and its scenario precomputation (demand
//! marginals, region masses, the packed-bitset kernel tables) is the
//! expensive part of answering an evaluation request; varying regime,
//! suite size or seed on a built [`Scenario`] is cheap `Arc` sharing.
//! The cache therefore keys *base scenarios* by the
//! [`WorldSpec::content_hash`] of the request's world spec: requests
//! for the same world — from any client, in any order — share one
//! prepared world, while the LRU bound keeps a long-running server's
//! memory proportional to its working set, not its uptime.
//!
//! Cache state never leaks into responses (a response is a pure
//! function of its request); [`WorldCache::stats`] exists for
//! observability and the eviction-correctness tests.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use diversim_sim::scenario::Scenario;
use diversim_universe::generator::{ProfileKind, PropensityKind, RegionSize, UniverseSpec};

use crate::worlds::World;

use super::error::ServeError;
use super::request::WorldSpec;

/// A built world held by the cache: the base [`Scenario`] (default
/// regime/suite/seed — callers vary it per request via the cheap
/// `with_*` methods) plus the label responses report.
#[derive(Debug)]
pub struct CachedWorld {
    /// The world's parameter-derived label.
    pub label: String,
    /// The base scenario owning the prepared world.
    pub scenario: Scenario,
}

/// Counters describing the cache's lifetime behaviour (server-side
/// observability only; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from a cached world.
    pub hits: u64,
    /// Requests that had to build their world.
    pub misses: u64,
    /// Worlds dropped to respect the capacity bound.
    pub evictions: u64,
    /// Worlds currently held.
    pub len: usize,
}

struct Inner {
    /// Most-recently-used first. Linear scan is fine: capacities are
    /// small (worlds are megabytes, not thousands).
    entries: Vec<(u64, Arc<CachedWorld>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The LRU world cache; see the [module docs](self).
pub struct WorldCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for WorldCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WorldCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl WorldCache {
    /// A cache holding at most `capacity` worlds (minimum 1).
    pub fn new(capacity: usize) -> Self {
        WorldCache {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// The world for `spec`, built on miss. The build runs *outside*
    /// the cache lock, so a slow world construction never blocks
    /// requests for already-cached worlds; if two requests race on the
    /// same miss, the first insertion wins and the loser's build is
    /// dropped (both get the same `Arc`).
    ///
    /// # Errors
    ///
    /// The [`WorldSpec`] build errors ([`ServeError::World`],
    /// [`ServeError::Scenario`], [`ServeError::UnknownFixture`]).
    pub fn get(&self, spec: &WorldSpec) -> Result<Arc<CachedWorld>, ServeError> {
        let hash = spec.content_hash();
        {
            let mut inner = self.inner.lock().expect("world cache poisoned");
            if let Some(pos) = inner.entries.iter().position(|(h, _)| *h == hash) {
                let entry = inner.entries.remove(pos);
                let world = Arc::clone(&entry.1);
                inner.entries.insert(0, entry);
                inner.hits += 1;
                return Ok(world);
            }
            inner.misses += 1;
        }

        let built = Arc::new(build_world(spec)?);

        let mut inner = self.inner.lock().expect("world cache poisoned");
        if let Some(pos) = inner.entries.iter().position(|(h, _)| *h == hash) {
            // Lost the build race; keep the incumbent so every request
            // for this spec shares one prepared world.
            let entry = inner.entries.remove(pos);
            let world = Arc::clone(&entry.1);
            inner.entries.insert(0, entry);
            return Ok(world);
        }
        inner.entries.insert(0, (hash, Arc::clone(&built)));
        while inner.entries.len() > self.capacity {
            inner.entries.pop();
            inner.evictions += 1;
        }
        Ok(built)
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("world cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.entries.len(),
        }
    }
}

/// Builds the world a spec describes and its base scenario.
fn build_world(spec: &WorldSpec) -> Result<CachedWorld, ServeError> {
    let world: World = match spec {
        WorldSpec::Singleton { props } => World::singleton_uniform("request", props.clone())?,
        WorldSpec::Fixture { name } => match name.as_str() {
            "small-graded" => crate::worlds::small_graded(),
            "mirrored" => crate::worlds::mirrored(0.5, 0.05),
            "negative-coupling" => crate::worlds::negative_coupling(),
            "medium-cascade" => crate::worlds::medium_cascade(1),
            "large" => crate::worlds::large(2),
            other => {
                return Err(ServeError::UnknownFixture {
                    name: other.to_string(),
                })
            }
        },
        WorldSpec::Generated {
            demands,
            faults,
            region_max,
            zipf,
            prop_lo,
            prop_hi,
            seed,
        } => {
            let universe_spec = UniverseSpec {
                n_demands: *demands,
                n_faults: *faults,
                region_size: RegionSize::Uniform {
                    min: 1,
                    max: *region_max,
                },
                profile: if *zipf > 0.0 {
                    ProfileKind::Zipf(*zipf)
                } else {
                    ProfileKind::Uniform
                },
            };
            let mut rng = StdRng::seed_from_u64(*seed);
            let (universe, pop) = universe_spec.generate_with_population(
                &mut rng,
                PropensityKind::Uniform {
                    lo: *prop_lo,
                    hi: *prop_hi,
                },
            )?;
            World::from_universe("generated", &universe, pop)
        }
    };
    let label = world.label().to_string();
    let scenario = world.scenario().build()?;
    Ok(CachedWorld { label, scenario })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn singleton(props: &[f64]) -> WorldSpec {
        WorldSpec::Singleton {
            props: props.to_vec(),
        }
    }

    #[test]
    fn hits_share_the_built_world() {
        let cache = WorldCache::new(4);
        let a1 = cache.get(&singleton(&[0.1, 0.3])).unwrap();
        let a2 = cache.get(&singleton(&[0.1, 0.3])).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                len: 1
            }
        );
    }

    #[test]
    fn capacity_one_evicts_and_rebuilds() {
        let cache = WorldCache::new(1);
        let a1 = cache.get(&singleton(&[0.1])).unwrap();
        cache.get(&singleton(&[0.2])).unwrap();
        let a2 = cache.get(&singleton(&[0.1])).unwrap();
        assert!(!Arc::ptr_eq(&a1, &a2), "eviction must force a rebuild");
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn lru_keeps_the_recently_used_world() {
        let cache = WorldCache::new(2);
        let a = cache.get(&singleton(&[0.1])).unwrap();
        cache.get(&singleton(&[0.2])).unwrap();
        cache.get(&singleton(&[0.1])).unwrap(); // refresh a
        cache.get(&singleton(&[0.3])).unwrap(); // evicts 0.2, not a
        let a2 = cache.get(&singleton(&[0.1])).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn fixtures_and_generated_worlds_build() {
        let cache = WorldCache::new(8);
        let fixture = cache
            .get(&WorldSpec::Fixture {
                name: "small-graded".into(),
            })
            .unwrap();
        assert!(fixture.label.starts_with("small-graded"));
        let generated = cache
            .get(&WorldSpec::Generated {
                demands: 32,
                faults: 8,
                region_max: 2,
                zipf: 0.8,
                prop_lo: 0.05,
                prop_hi: 0.5,
                seed: 7,
            })
            .unwrap();
        assert!(generated.label.contains("32 demands"));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let cache = WorldCache::new(0);
        cache.get(&singleton(&[0.1])).unwrap();
        assert_eq!(cache.stats().len, 1);
    }
}
