//! Request execution: one validated entry into the engine for the
//! server, the CLI and the experiment binaries.
//!
//! [`EvaluationService::handle`] maps one [`EvaluationRequest`] to one
//! [`EvaluationResponse`] as a *pure function of the request* (plus the
//! immutable experiment registry): cache state, arrival order,
//! connection interleaving and the service's thread count never change
//! a response byte. [`execute_experiment`] is the experiment arm of the
//! same surface — `diversim run` and the `eNN_*` binaries call it too,
//! so a request rejected over the wire is rejected identically on the
//! command line.

use diversim_stats::seed::SeedSequence;

use diversim_sim::estimate::Estimate;
use diversim_sim::scenario::SeedPolicy;

use crate::engine::{run_experiment, RunOutcome};
use crate::json::{self, Value};
use crate::registry;

use super::cache::{CacheStats, WorldCache};
use super::error::ServeError;
use super::request::{
    EstimateResult, EvaluateRequest, EvaluationRequest, EvaluationResponse, ExperimentRequest,
    ExperimentResult, GrowthResult, RequestKind, ResponseBody, StudySpec, SystemResult,
    WireEstimate,
};

/// The effective seed root of a request: the module-documented
/// derivation `SeedSequence::new(seed).child(stream).root()`, exposed
/// so clients and tests can state the contract in one place.
pub fn derive_root_seed(seed: u64, stream: u64) -> u64 {
    SeedSequence::new(seed).child(stream).root()
}

/// Resolves and runs one registered experiment. The single entry the
/// CLI, the experiment binaries and the server share.
///
/// # Errors
///
/// [`ServeError::UnknownExperiment`] if `request.key` is not a
/// registered slug, binary name or id.
pub fn execute_experiment(
    request: &ExperimentRequest,
    threads: usize,
    quiet: bool,
) -> Result<RunOutcome, ServeError> {
    let spec = registry::find(&request.key).ok_or_else(|| ServeError::UnknownExperiment {
        key: request.key.clone(),
    })?;
    Ok(run_experiment(spec, request.profile, threads, quiet))
}

/// A long-running evaluation service: a world cache plus a worker
/// budget. Shared across connections behind an `Arc`; all methods take
/// `&self`.
#[derive(Debug)]
pub struct EvaluationService {
    cache: WorldCache,
    threads: usize,
}

impl EvaluationService {
    /// A service answering requests with `threads` workers and caching
    /// at most `cache_capacity` prepared worlds.
    pub fn new(threads: usize, cache_capacity: usize) -> Self {
        EvaluationService {
            cache: WorldCache::new(cache_capacity),
            threads: threads.max(1),
        }
    }

    /// The worker budget each request's replications are batched onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// World-cache counters (server-side observability; never part of
    /// a response).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Answers one request. Infallible by construction: failures
    /// become protocol error responses.
    pub fn handle(&self, request: &EvaluationRequest) -> EvaluationResponse {
        let body = match &request.kind {
            RequestKind::Ping => Ok(ResponseBody::Pong),
            RequestKind::Evaluate(e) => self.evaluate(e, request.seed, request.stream),
            RequestKind::Experiment(x) => execute_experiment(x, self.threads, true).map(|o| {
                ResponseBody::Experiment(ExperimentResult {
                    name: o.spec.name.to_string(),
                    profile: o.profile.name().to_string(),
                    passed: o.passed,
                    checks: o
                        .checks
                        .iter()
                        .map(|c| (c.label.clone(), c.passed))
                        .collect(),
                })
            }),
        };
        match body {
            Ok(body) => EvaluationResponse {
                id: request.id.clone(),
                body,
            },
            Err(e) => EvaluationResponse::error(request.id.clone(), &e),
        }
    }

    /// Answers one raw request line with one response line (without
    /// the trailing newline). Unparseable lines get an error response
    /// carrying whatever `id` can be salvaged from the line.
    pub fn handle_line(&self, line: &str) -> String {
        match EvaluationRequest::parse(line) {
            Ok(request) => self.handle(&request).to_json(),
            Err(e) => EvaluationResponse::error(salvage_id(line), &e).to_json(),
        }
    }

    fn evaluate(
        &self,
        request: &EvaluateRequest,
        seed: u64,
        stream: u64,
    ) -> Result<ResponseBody, ServeError> {
        let cached = self.cache.get(&request.world)?;
        let root = derive_root_seed(seed, stream);
        let scenario = cached
            .scenario
            .with_regime(request.regime.to_regime())
            .with_suite_size(request.suite_size)
            .with_seeds(SeedPolicy::Sequence(root));
        let world = cached.label.clone();
        let world_hash = format!("{:016x}", request.world.content_hash());
        if let Some(system) = &request.system {
            // Validation pinned the study to `estimate`; the scenario
            // rejects regimes the structure cannot run under.
            let scenario = scenario.with_structure(system.to_structure())?;
            let est = scenario.system_estimate(request.replications, self.threads)?;
            return Ok(ResponseBody::System(SystemResult {
                world,
                world_hash,
                root_seed: root,
                replications: request.replications,
                structure: system.clone(),
                system_pfd: wire(&est.system_pfd),
                system_pfd_before: wire(&est.system_pfd_before),
                component_pfds: est.component_pfds.iter().map(wire).collect(),
            }));
        }
        match &request.study {
            StudySpec::Estimate => {
                let est = scenario.estimate(request.replications, self.threads);
                Ok(ResponseBody::Estimate(EstimateResult {
                    world,
                    world_hash,
                    root_seed: root,
                    replications: request.replications,
                    system_pfd: wire(&est.system_pfd),
                    version_a_pfd: wire(&est.version_a_pfd),
                    version_b_pfd: wire(&est.version_b_pfd),
                }))
            }
            StudySpec::Growth { checkpoints } => {
                let curve = scenario.growth(checkpoints, request.replications, self.threads)?;
                let series = |accs: &[diversim_stats::online::MeanVar]| {
                    accs.iter()
                        .map(|acc| WireEstimate {
                            mean: acc.mean(),
                            se: acc.standard_error(),
                        })
                        .collect()
                };
                Ok(ResponseBody::Growth(GrowthResult {
                    world,
                    world_hash,
                    root_seed: root,
                    replications: request.replications,
                    checkpoints: curve.checkpoints.clone(),
                    system: series(&curve.system),
                    version_a: series(&curve.version_a),
                    version_b: series(&curve.version_b),
                }))
            }
        }
    }
}

fn wire(estimate: &Estimate) -> WireEstimate {
    WireEstimate {
        mean: estimate.mean,
        se: estimate.standard_error,
    }
}

/// Best-effort `id` extraction from a line that failed request
/// parsing, so even malformed-request errors stay correlatable.
fn salvage_id(line: &str) -> String {
    json::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Profile;

    fn estimate_line(id: &str, seed: u64, stream: u64) -> String {
        format!(
            concat!(
                r#"{{"api":"diversim/v1","id":"{}","kind":"evaluate","seed":{},"stream":{},"#,
                r#""world":{{"kind":"singleton","props":[0.1,0.3,0.5]}},"#,
                r#""regime":"shared","suite_size":4,"replications":64,"study":"estimate"}}"#
            ),
            id, seed, stream
        )
    }

    #[test]
    fn ping_pongs() {
        let service = EvaluationService::new(1, 4);
        let line = service.handle_line(r#"{"api":"diversim/v1","id":"p","kind":"ping"}"#);
        assert_eq!(
            line,
            r#"{"api":"diversim/v1","id":"p","ok":true,"result":{"kind":"pong"}}"#
        );
    }

    #[test]
    fn responses_are_pure_functions_of_the_request() {
        let service = EvaluationService::new(2, 4);
        let first = service.handle_line(&estimate_line("a", 42, 7));
        // Different id: everything but the echoed id is identical.
        let other_id = service.handle_line(&estimate_line("b", 42, 7));
        assert_eq!(first.replace(r#""id":"a""#, r#""id":"b""#), other_id);
        // Same request again (now a cache hit): byte-identical.
        assert_eq!(service.handle_line(&estimate_line("a", 42, 7)), first);
        assert!(service.cache_stats().hits >= 2);
        // Different stream: a different replication stream.
        assert_ne!(
            service.handle_line(&estimate_line("a", 42, 8)),
            first,
            "streams must decorrelate"
        );
    }

    #[test]
    fn thread_count_does_not_change_bytes() {
        let line = estimate_line("t", 9, 1);
        let base = EvaluationService::new(1, 2).handle_line(&line);
        for threads in [2, 4, 8] {
            assert_eq!(
                EvaluationService::new(threads, 2).handle_line(&line),
                base,
                "{threads} threads must match 1 thread"
            );
        }
    }

    #[test]
    fn responses_document_the_derived_root_seed() {
        let service = EvaluationService::new(1, 2);
        let response = service.handle_line(&estimate_line("r", 42, 7));
        let expected = derive_root_seed(42, 7);
        assert!(
            response.contains(&format!(r#""root_seed":"{expected}""#)),
            "response must expose the documented derivation: {response}"
        );
    }

    #[test]
    fn growth_studies_answer_per_checkpoint_series() {
        let service = EvaluationService::new(2, 2);
        let line = concat!(
            r#"{"api":"diversim/v1","id":"g","kind":"evaluate","seed":1,"#,
            r#""world":{"kind":"fixture","name":"small-graded"},"regime":"independent","#,
            r#""suite_size":8,"replications":32,"#,
            r#""study":{"kind":"growth","checkpoints":[0,4,8]}}"#
        );
        let response = service.handle_line(line);
        let (id, ok) = EvaluationResponse::parse_status(&response).unwrap();
        assert_eq!((id.as_str(), ok), ("g", true));
        let doc = json::parse(&response).unwrap();
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("kind").and_then(Value::as_str), Some("growth"));
        assert_eq!(
            result
                .get("system")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn adaptive_regimes_are_served_deterministically() {
        let line = |id: &str| {
            format!(
                concat!(
                    r#"{{"api":"diversim/v1","id":"{}","kind":"evaluate","seed":5,"stream":2,"#,
                    r#""world":{{"kind":"fixture","name":"small-graded"}},"#,
                    r#""regime":{{"kind":"adaptive","policy":{{"kind":"epsilon_greedy","epsilon":0.1}}}},"#,
                    r#""suite_size":8,"replications":32,"study":"estimate"}}"#
                ),
                id
            )
        };
        let base = EvaluationService::new(1, 2).handle_line(&line("a"));
        let (id, ok) = EvaluationResponse::parse_status(&base).unwrap();
        assert_eq!((id.as_str(), ok), ("a", true), "{base}");
        assert_eq!(
            EvaluationService::new(8, 2).handle_line(&line("a")),
            base,
            "8 threads must match 1 thread"
        );
        // Growth studies replay fixed demand streams, so adaptive
        // requests get a stable error, not a silent regime fallback.
        let growth = line("g").replace(
            r#""study":"estimate""#,
            r#""study":{"kind":"growth","checkpoints":[0,4]}"#,
        );
        let response = EvaluationService::new(1, 2).handle_line(&growth);
        let (id, ok) = EvaluationResponse::parse_status(&response).unwrap();
        assert_eq!((id.as_str(), ok), ("g", false));
        assert!(
            response.contains("studies require a static suite regime"),
            "{response}"
        );
    }

    #[test]
    fn system_requests_replay_the_pair_and_serve_deterministically() {
        let and2 = concat!(
            r#","system":{"kind":"and","children":[{"kind":"component","index":0},"#,
            r#"{"kind":"component","index":1}]}"#
        );
        let line = |id: &str, system: &str| {
            format!(
                concat!(
                    r#"{{"api":"diversim/v1","id":"{}","kind":"evaluate","seed":11,"stream":3,"#,
                    r#""world":{{"kind":"fixture","name":"small-graded"}},"regime":"shared","#,
                    r#""suite_size":4,"replications":64,"study":"estimate"{}}}"#
                ),
                id, system
            )
        };
        let service = EvaluationService::new(1, 2);
        let base = service.handle_line(&line("s", and2));
        let (id, ok) = EvaluationResponse::parse_status(&base).unwrap();
        assert_eq!((id.as_str(), ok), ("s", true), "{base}");
        let doc = json::parse(&base).unwrap();
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("kind").and_then(Value::as_str), Some("system"));
        assert_eq!(
            result
                .get("component_pfds")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
        // The two-component AND structure *is* the classic pair: its
        // system pfd estimate matches the plain estimate study's bytes.
        let pair = json::parse(&service.handle_line(&line("s", ""))).unwrap();
        assert_eq!(
            result.get("system_pfd"),
            pair.get("result").unwrap().get("system_pfd"),
            "and-2 must replay the pair estimate bit-for-bit"
        );
        // Thread count never changes a byte.
        assert_eq!(
            EvaluationService::new(8, 2).handle_line(&line("s", and2)),
            base
        );
    }

    #[test]
    fn incompatible_system_requests_get_stable_errors() {
        let service = EvaluationService::new(1, 2);
        // An adaptive regime needs exactly two components.
        let line = concat!(
            r#"{"api":"diversim/v1","id":"w","kind":"evaluate","#,
            r#""world":{"kind":"fixture","name":"small-graded"},"#,
            r#""regime":{"kind":"adaptive","policy":"greedy"},"#,
            r#""suite_size":4,"replications":32,"study":"estimate","#,
            r#""system":{"kind":"or","children":[{"kind":"component","index":0},"#,
            r#"{"kind":"component","index":1},{"kind":"component","index":2}]}}"#
        );
        let response = service.handle_line(line);
        let (id, ok) = EvaluationResponse::parse_status(&response).unwrap();
        assert_eq!((id.as_str(), ok), ("w", false));
        assert!(
            response.contains("require exactly two components"),
            "{response}"
        );
        // Growth studies do not compose with structures.
        let growth = line.replace(
            r#""study":"estimate""#,
            r#""study":{"kind":"growth","checkpoints":[0,4]}"#,
        );
        let response = service.handle_line(&growth);
        let (id, ok) = EvaluationResponse::parse_status(&response).unwrap();
        assert_eq!((id.as_str(), ok), ("w", false));
        assert!(
            response.contains("growth studies do not support system structures"),
            "{response}"
        );
        // Malformed structures name the offending field.
        let bad = line.replace(r#""regime":{"kind":"adaptive","policy":"greedy"},"#, "");
        let bad = bad.replace(r#""kind":"or""#, r#""kind":"k_of_n","k":9"#);
        let response = service.handle_line(&bad);
        let (id, ok) = EvaluationResponse::parse_status(&response).unwrap();
        assert_eq!((id.as_str(), ok), ("w", false), "{response}");
        assert!(
            response.contains(r#"invalid member "system""#) || response.contains("system"),
            "{response}"
        );
    }

    #[test]
    fn failures_become_error_responses_with_salvaged_ids() {
        let service = EvaluationService::new(1, 2);
        let line = service.handle_line(r#"{"id":"broken","world":7}"#);
        let (id, ok) = EvaluationResponse::parse_status(&line).unwrap();
        assert_eq!((id.as_str(), ok), ("broken", false));
        assert!(line.contains(r#""error":"protocol error:"#), "{line}");
        // Wholly unparseable input still answers (with an empty id).
        let (id, ok) = EvaluationResponse::parse_status(&service.handle_line("garbage")).unwrap();
        assert_eq!((id.as_str(), ok), ("", false));
    }

    #[test]
    fn experiment_requests_run_the_registry() {
        let outcome = execute_experiment(
            &ExperimentRequest {
                key: "e01".into(),
                profile: Profile::Smoke,
            },
            1,
            true,
        )
        .unwrap();
        assert_eq!(outcome.spec.slug, "e01");
        assert!(matches!(
            execute_experiment(
                &ExperimentRequest {
                    key: "e99".into(),
                    profile: Profile::Smoke,
                },
                1,
                true,
            )
            .unwrap_err(),
            ServeError::UnknownExperiment { .. }
        ));

        let service = EvaluationService::new(1, 2);
        let line = service.handle_line(
            r#"{"api":"diversim/v1","id":"x","kind":"experiment","experiment":"e01","profile":"smoke"}"#,
        );
        let (id, ok) = EvaluationResponse::parse_status(&line).unwrap();
        assert_eq!((id.as_str(), ok), ("x", true));
        let doc = json::parse(&line).unwrap();
        let result = doc.get("result").unwrap();
        assert_eq!(
            result.get("experiment").and_then(Value::as_str),
            Some("e01_el_model")
        );
        assert_eq!(result.get("passed").and_then(Value::as_bool), Some(true));
    }
}
