//! `diversim serve`: the typed evaluation-request API and its
//! long-running assessment service.
//!
//! The paper's central quantity — delivered system pfd after a testing
//! campaign — is served here as an on-demand query. The module tree
//! splits the service into:
//!
//! * [`request`] — the versioned `diversim/v1` wire types
//!   ([`request::EvaluationRequest`] / [`request::EvaluationResponse`],
//!   newline-delimited JSON; tolerant reader, strict writer);
//! * [`error`] — the typed failure surface whose `Display` strings are
//!   the wire `error` messages;
//! * [`cache`] — the content-addressed LRU cache of prepared worlds;
//! * [`service`] — request execution ([`service::EvaluationService`]),
//!   including [`service::execute_experiment`], the single validated
//!   entry the CLI and the `eNN_*` binaries share with the server;
//! * [`server`] — the stdin/stdout and TCP transports;
//! * [`loadgen`] — the mixed-workload load generator recording
//!   throughput and p50/p99 latency into `BENCH_serve_loadgen.json`.
//!
//! The determinism contract: a response is a pure function of its
//! request. Seeds derive as
//! `SeedSequence::new(seed).child(stream).root()`
//! ([`service::derive_root_seed`]), so concurrent clients get
//! reproducible, non-colliding replication streams, and the same
//! request set yields byte-identical responses over any number of
//! connections and server threads.

pub mod cache;
pub mod error;
pub mod loadgen;
pub mod request;
pub mod server;
pub mod service;

pub use error::ServeError;
pub use request::{EvaluationRequest, EvaluationResponse, ExperimentRequest};
pub use service::EvaluationService;
