//! The load generator behind the `loadgen` binary: hammers a running
//! `diversim serve` TCP endpoint with mixed workloads and reports
//! throughput and latency percentiles in the committed-trajectory
//! JSON schema (`BENCH_serve_loadgen.json`).
//!
//! Three workload classes interleave on every client connection:
//!
//! * `cache_hot/estimate` — the `small-graded` fixture under cycling
//!   regimes: the server answers from one cached prepared world;
//! * `cache_hot/growth` — per-checkpoint growth curves on the
//!   `mirrored` fixture, still cache-resident;
//! * `cache_cold/estimate` — a freshly generated world per request
//!   (the generation seed varies), forcing world builds and LRU churn.
//!
//! Every client runs a deterministic request schedule (ids `c{n}-r{i}`,
//! stream = client index), so a loadgen run is reproducible up to
//! timing; a response that fails to parse, reports `ok:false` or
//! answers the wrong id counts as a protocol error, and the binary
//! exits non-zero if any occurred.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use diversim_testing::oracle::IdenticalFailureModel;

use crate::json::Value;

use super::request::{
    EvaluateRequest, EvaluationRequest, EvaluationResponse, RegimeSpec, RequestKind, StudySpec,
    WorldSpec,
};

/// Schema string of the loadgen report document.
pub const LOADGEN_SCHEMA: &str = "diversim-serve-loadgen/v1";

/// The workload classes, in per-client schedule order.
const WORKLOADS: &[&str] = &[
    "serve_loadgen/cache_hot/estimate",
    "serve_loadgen/cache_hot/growth",
    "serve_loadgen/cache_cold/estimate",
];

/// What one loadgen run should do.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// The `host:port` of a running `diversim serve --tcp`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub requests: u64,
    /// Base seed of every request (streams separate the clients).
    pub seed: u64,
}

/// Latency summary of one workload class, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// The workload id (`serve_loadgen/...`).
    pub id: String,
    /// Requests measured.
    pub requests: u64,
    /// Fastest request.
    pub min_ns: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Slowest request.
    pub max_ns: u64,
}

/// The result of one loadgen run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Client connections used.
    pub clients: usize,
    /// Total requests sent.
    pub requests: u64,
    /// Protocol errors observed (see the module docs).
    pub errors: u64,
    /// Wall-clock duration of the measurement, in nanoseconds.
    pub wall_ns: u64,
    /// Aggregate requests per second.
    pub throughput_rps: f64,
    /// Per-workload latency summaries.
    pub workloads: Vec<WorkloadSummary>,
}

impl LoadgenReport {
    /// Renders the report in the committed-trajectory schema.
    pub fn to_json(&self) -> String {
        let workloads = self
            .workloads
            .iter()
            .map(|w| {
                Value::Object(vec![
                    ("id".into(), Value::String(w.id.clone())),
                    ("requests".into(), Value::Number(w.requests as f64)),
                    ("min_ns".into(), Value::Number(w.min_ns as f64)),
                    ("p50_ns".into(), Value::Number(w.p50_ns as f64)),
                    ("p99_ns".into(), Value::Number(w.p99_ns as f64)),
                    ("max_ns".into(), Value::Number(w.max_ns as f64)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".into(), Value::String(LOADGEN_SCHEMA.into())),
            ("clients".into(), Value::Number(self.clients as f64)),
            ("requests".into(), Value::Number(self.requests as f64)),
            ("errors".into(), Value::Number(self.errors as f64)),
            ("wall_ns".into(), Value::Number(self.wall_ns as f64)),
            ("throughput_rps".into(), Value::Number(self.throughput_rps)),
            ("workloads".into(), Value::Array(workloads)),
        ])
        .to_json()
    }
}

/// The deterministic request schedule of client `client`: request `i`
/// draws its workload class round-robin and its parameters from
/// `(seed, client, i)` only.
pub fn schedule(seed: u64, client: usize, i: u64) -> EvaluationRequest {
    let workload = (i % WORKLOADS.len() as u64) as usize;
    let kind = match workload {
        0 => RequestKind::Evaluate(EvaluateRequest {
            world: WorldSpec::Fixture {
                name: "small-graded".into(),
            },
            regime: match i % 3 {
                0 => RegimeSpec::Shared,
                1 => RegimeSpec::Independent,
                _ => RegimeSpec::BackToBack {
                    model: IdenticalFailureModel::Bernoulli(0.3),
                },
            },
            suite_size: 4,
            replications: 200,
            study: StudySpec::Estimate,
            system: None,
        }),
        1 => RequestKind::Evaluate(EvaluateRequest {
            world: WorldSpec::Fixture {
                name: "mirrored".into(),
            },
            regime: RegimeSpec::Independent,
            suite_size: 8,
            replications: 100,
            study: StudySpec::Growth {
                checkpoints: vec![0, 4, 8],
            },
            system: None,
        }),
        _ => RequestKind::Evaluate(EvaluateRequest {
            world: WorldSpec::Generated {
                demands: 64,
                faults: 16,
                region_max: 2,
                zipf: 0.8,
                prop_lo: 0.05,
                prop_hi: 0.5,
                // Unique per (client, i): every cold request builds a
                // distinct world, churning the server's LRU.
                seed: seed ^ (client as u64).wrapping_mul(1_000_003).wrapping_add(i),
            },
            regime: RegimeSpec::Shared,
            suite_size: 4,
            replications: 100,
            study: StudySpec::Estimate,
            system: None,
        }),
    };
    EvaluationRequest {
        id: format!("c{client}-r{i}"),
        seed,
        stream: client as u64,
        kind,
    }
}

/// One measured request: which workload class, how long, and whether
/// it failed the protocol.
struct Sample {
    workload: usize,
    ns: u64,
    error: bool,
}

fn run_client(addr: &str, seed: u64, client: usize, requests: u64) -> io::Result<Vec<Sample>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?; // measure the service, not Nagle stalls
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut samples = Vec::with_capacity(requests as usize);
    let mut line = String::new();
    for i in 0..requests {
        let request = schedule(seed, client, i);
        let started = Instant::now();
        writer.write_all(request.to_json().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        line.clear();
        let n = reader.read_line(&mut line)?;
        let ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let error = n == 0
            || !matches!(
                EvaluationResponse::parse_status(line.trim_end()),
                Ok((id, true)) if id == request.id
            );
        samples.push(Sample {
            workload: (i % WORKLOADS.len() as u64) as usize,
            ns,
            error,
        });
        if n == 0 {
            break; // server hung up
        }
    }
    Ok(samples)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs the load, one thread per client, and aggregates the report.
///
/// # Errors
///
/// Propagates connection failures (a client that cannot connect at
/// all); mid-run I/O problems surface as protocol errors instead.
pub fn run(opts: &LoadgenOptions) -> io::Result<LoadgenReport> {
    let clients = opts.clients.max(1);
    let started = Instant::now();
    let samples: Vec<Vec<Sample>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let addr = opts.addr.clone();
                scope.spawn(move || run_client(&addr, opts.seed, client, opts.requests))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread must not panic"))
            .collect::<io::Result<Vec<_>>>()
    })?;
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;

    let mut errors = 0u64;
    let mut total = 0u64;
    let mut by_workload: Vec<Vec<u64>> = vec![Vec::new(); WORKLOADS.len()];
    for sample in samples.iter().flatten() {
        total += 1;
        if sample.error {
            errors += 1;
        }
        by_workload[sample.workload].push(sample.ns);
    }
    let workloads = WORKLOADS
        .iter()
        .zip(&mut by_workload)
        .map(|(id, latencies)| {
            latencies.sort_unstable();
            WorkloadSummary {
                id: id.to_string(),
                requests: latencies.len() as u64,
                min_ns: latencies.first().copied().unwrap_or(0),
                p50_ns: percentile(latencies, 0.50),
                p99_ns: percentile(latencies, 0.99),
                max_ns: latencies.last().copied().unwrap_or(0),
            }
        })
        .collect();
    Ok(LoadgenReport {
        clients,
        requests: total,
        errors,
        wall_ns,
        throughput_rps: if wall_ns == 0 {
            0.0
        } else {
            total as f64 / (wall_ns as f64 / 1e9)
        },
        workloads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::server::spawn_tcp;
    use crate::serve::service::EvaluationService;
    use std::sync::Arc;

    #[test]
    fn schedule_is_deterministic_and_valid() {
        for client in 0..3 {
            for i in 0..6 {
                let a = schedule(42, client, i);
                let b = schedule(42, client, i);
                assert_eq!(a, b);
                assert_eq!(a.stream, client as u64);
                // Every scheduled request must survive its own wire
                // round trip (i.e. be a valid protocol line).
                assert_eq!(EvaluationRequest::parse(&a.to_json()).unwrap(), a);
            }
        }
        // Cold requests vary their world per (client, i).
        let RequestKind::Evaluate(a) = schedule(1, 0, 2).kind else {
            panic!()
        };
        let RequestKind::Evaluate(b) = schedule(1, 0, 5).kind else {
            panic!()
        };
        assert_ne!(a.world.content_hash(), b.world.content_hash());
    }

    #[test]
    fn percentile_picks_order_statistics() {
        let sorted = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&sorted, 0.0), 10);
        assert_eq!(percentile(&sorted, 0.5), 30);
        assert_eq!(percentile(&sorted, 1.0), 50);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn loadgen_round_trips_against_a_live_server() {
        let service = Arc::new(EvaluationService::new(2, 4));
        let (addr, _handle) = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let report = run(&LoadgenOptions {
            addr: addr.to_string(),
            clients: 2,
            requests: 3,
            seed: 7,
        })
        .unwrap();
        assert_eq!(report.requests, 6);
        assert_eq!(report.errors, 0, "no protocol errors expected");
        assert!(report.throughput_rps > 0.0);
        let json = report.to_json();
        assert!(json.starts_with(r#"{"schema":"diversim-serve-loadgen/v1""#));
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("workloads")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(3)
        );
    }
}
