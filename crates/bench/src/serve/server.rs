//! Transports of the evaluation service: stdin/stdout line mode and a
//! thread-per-connection TCP listener.
//!
//! Both transports speak the same newline-delimited protocol: one
//! request line in, one response line out, in request order per
//! connection. Responses are pure functions of their requests (see
//! [`super::service`]), so any interleaving of connections yields the
//! same bytes per request — the property the determinism suite pins.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;

use super::service::EvaluationService;

/// Answers requests from `input` onto `output` until end-of-input
/// (the `diversim serve --stdio` main loop, factored over generic
/// streams for testability). Empty lines are ignored; every non-empty
/// line gets exactly one response line, flushed immediately.
///
/// # Errors
///
/// Propagates I/O errors from either stream.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &EvaluationService,
    input: R,
    mut output: W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        output.write_all(service.handle_line(&line).as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(())
}

/// Runs the service over stdin/stdout until stdin closes.
///
/// # Errors
///
/// Propagates I/O errors from either stream.
pub fn serve_stdio(service: &EvaluationService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_lines(service, stdin.lock(), stdout.lock())
}

fn serve_connection(service: &EvaluationService, stream: TcpStream) -> io::Result<()> {
    // One-line request/response RPC: Nagle buffering only adds
    // delayed-ACK stalls (tens of ms per round trip on loopback).
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(service, reader, stream)
}

/// Binds `addr` and serves connections on a detached accept loop,
/// one thread per connection. Returns the bound address (useful with
/// port 0) and the accept-loop handle; the loop runs until the
/// process exits. Per-connection I/O errors (e.g. a client hanging
/// up mid-line) end that connection only.
///
/// # Errors
///
/// Propagates the bind error.
pub fn spawn_tcp<A: ToSocketAddrs>(
    service: Arc<EvaluationService>,
    addr: A,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let _ = serve_connection(&service, stream);
            });
        }
    });
    Ok((bound, handle))
}

/// Binds `addr`, prints the bound address, and serves forever (the
/// `diversim serve --tcp` main loop).
///
/// # Errors
///
/// Propagates the bind error.
pub fn serve_tcp<A: ToSocketAddrs>(
    service: Arc<EvaluationService>,
    addr: A,
    quiet: bool,
) -> io::Result<()> {
    let (bound, handle) = spawn_tcp(service, addr)?;
    if !quiet {
        println!("diversim serve listening on {bound}");
    }
    handle.join().expect("accept loop must not panic");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_loop_answers_and_skips_blanks() {
        let service = EvaluationService::new(1, 2);
        let input = concat!(
            r#"{"api":"diversim/v1","id":"a","kind":"ping"}"#,
            "\n\n   \n",
            "garbage\n"
        );
        let mut output = Vec::new();
        serve_lines(&service, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains(r#""id":"a","ok":true"#));
        assert!(lines[1].contains(r#""ok":false"#));
    }

    #[test]
    fn tcp_round_trips_a_ping() {
        let service = Arc::new(EvaluationService::new(1, 2));
        let (addr, _handle) = spawn_tcp(service, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"api\":\"diversim/v1\",\"id\":\"t\",\"kind\":\"ping\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            line.trim_end(),
            r#"{"api":"diversim/v1","id":"t","ok":true,"result":{"kind":"pong"}}"#
        );
    }
}
