//! The typed failure surface of the evaluation service.
//!
//! Every rejected request maps to one [`ServeError`], whose `Display`
//! rendering is the stable wire `error` string of the protocol's error
//! responses — tests and clients may match on its content, so changes
//! to the messages are breaking changes to the wire format.

use std::error::Error;
use std::fmt;

use diversim_sim::scenario::ScenarioError;
use diversim_universe::error::UniverseError;

/// Why the service rejected (or failed to execute) a request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request line is not a protocol document at all: malformed
    /// JSON, a non-object top level, or a missing/mis-typed required
    /// member.
    Protocol {
        /// What was wrong with the line.
        message: String,
    },
    /// The request named an API version this server does not speak.
    UnsupportedApi {
        /// The `api` member the client sent.
        found: String,
    },
    /// A request member parsed but failed validation.
    InvalidField {
        /// The offending member, named as on the wire (`"suite_size"`,
        /// `"world.props"`).
        field: &'static str,
        /// Why it was rejected.
        message: String,
    },
    /// An experiment request named an unregistered experiment.
    UnknownExperiment {
        /// The key the client sent.
        key: String,
    },
    /// A fixture world spec named an unknown fixture.
    UnknownFixture {
        /// The name the client sent.
        name: String,
    },
    /// World construction failed in the universe layer.
    World(UniverseError),
    /// Scenario assembly failed its cross-validation.
    Scenario(ScenarioError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol { message } => write!(f, "protocol error: {message}"),
            ServeError::UnsupportedApi { found } => {
                write!(f, "unsupported api version: {found}")
            }
            ServeError::InvalidField { field, message } => {
                write!(f, "invalid request field `{field}`: {message}")
            }
            ServeError::UnknownExperiment { key } => {
                write!(f, "unknown experiment: {key}")
            }
            ServeError::UnknownFixture { name } => {
                write!(f, "unknown world fixture: {name}")
            }
            ServeError::World(e) => write!(f, "world construction failed: {e}"),
            ServeError::Scenario(e) => write!(f, "scenario rejected: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::World(e) => Some(e),
            ServeError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UniverseError> for ServeError {
    fn from(e: UniverseError) -> Self {
        ServeError::World(e)
    }
}

impl From<ScenarioError> for ServeError {
    fn from(e: ScenarioError) -> Self {
        ServeError::Scenario(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_fields_and_sources_chain() {
        let e = ServeError::InvalidField {
            field: "suite_size",
            message: "exceeds the cap".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid request field `suite_size`: exceeds the cap"
        );
        assert!(e.source().is_none());

        let wrapped: ServeError = UniverseError::EmptyDemandSpace.into();
        assert!(wrapped.source().is_some());
        let wrapped: ServeError = ScenarioError::Missing { what: "profile" }.into();
        assert!(wrapped.to_string().contains("missing its profile"));
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
