//! The versioned request/response wire types of the evaluation API.
//!
//! One [`EvaluationRequest`] is one line of newline-delimited JSON; the
//! service answers each with one [`EvaluationResponse`] line. The
//! reader is *tolerant* (members in any order, unknown members
//! ignored, optional members defaulted), the writer is *strict* (fixed
//! member order, stable escaping via [`crate::json::Value::to_json`]),
//! so responses are byte-deterministic functions of the request.
//!
//! The same types are the internal API: `diversim run` and the twenty
//! thin `eNN_*` binaries construct an [`ExperimentRequest`] and enter
//! the engine through the exact code path the server dispatches to, so
//! CLI, service and tests share one validated surface.
//!
//! # Wire format (`diversim/v1`)
//!
//! ```json
//! {"api":"diversim/v1","id":"r1","kind":"evaluate","seed":42,"stream":7,
//!  "world":{"kind":"singleton","props":[0.1,0.3]},
//!  "regime":"shared","suite_size":4,"replications":500,"study":"estimate"}
//! ```
//!
//! Responses echo the request `id` and carry either `"ok":true` plus a
//! `result` object or `"ok":false` plus a stable `error` string (the
//! [`ServeError`] display rendering).
//!
//! # Seed-derivation contract
//!
//! A request's effective seed root is
//! `SeedSequence::new(seed).child(stream).root()` — a pure function of
//! the request, so responses never depend on arrival order, connection
//! interleaving or server thread count, while distinct `stream` values
//! give concurrent clients non-colliding replication streams from one
//! shared base seed.

use diversim_core::structure::Structure;
use diversim_sim::campaign::CampaignRegime;
use diversim_sim::policy::PolicySpec;
use diversim_sim::scenario::MAX_SUITE_SIZE;
use diversim_testing::oracle::IdenticalFailureModel;

use crate::hashing::fnv1a64;
use crate::json::{self, Value};
use crate::spec::Profile;

use super::error::ServeError;

/// The protocol version this build speaks, sent and required as the
/// `api` member of every request and response.
pub const API_VERSION: &str = "diversim/v1";

/// Largest accepted Monte Carlo replication budget per request.
pub const MAX_REPLICATIONS: u64 = 1_000_000;

/// Largest accepted demand-space size for generated worlds.
pub const MAX_DEMANDS: usize = 1 << 20;

/// Largest accepted fault count for generated worlds.
pub const MAX_FAULTS: usize = 1 << 16;

/// A world described *by value* on the wire, so the server can build
/// (and cache) it without any out-of-band state.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldSpec {
    /// `props.len()` demands with one singleton fault each, uniform
    /// usage — the paper's abstract score model.
    Singleton {
        /// Per-fault propensities, each in `[0, 1]`.
        props: Vec<f64>,
    },
    /// A named standard fixture from [`crate::worlds`].
    Fixture {
        /// `"small-graded"`, `"mirrored"`, `"negative-coupling"`,
        /// `"medium-cascade"` or `"large"`.
        name: String,
    },
    /// A generated universe (the cache-cold workload): Zipf or uniform
    /// usage over `demands` demands, `faults` faults with region sizes
    /// `1..=region_max`, propensities uniform in `[prop_lo, prop_hi]`.
    Generated {
        /// Demand-space size (`1..=`[`MAX_DEMANDS`]).
        demands: usize,
        /// Fault count (`1..=`[`MAX_FAULTS`]).
        faults: usize,
        /// Largest failure-region size (`1..=64`).
        region_max: usize,
        /// Zipf exponent of the usage profile; `0` means uniform.
        zipf: f64,
        /// Lower propensity bound.
        prop_lo: f64,
        /// Upper propensity bound.
        prop_hi: f64,
        /// Generation seed — part of the world's identity (and hash).
        seed: u64,
    },
}

impl WorldSpec {
    /// The content hash that keys the server's world cache:
    /// [`crate::hashing::fnv1a64`] (the same primitive that names sweep
    /// cell files) over a canonical encoding of the spec (floats by
    /// their bit patterns), so equal specs — and only equal specs, up
    /// to hash collision — share a cache entry.
    pub fn content_hash(&self) -> u64 {
        let mut canon = String::new();
        match self {
            WorldSpec::Singleton { props } => {
                canon.push_str("singleton;");
                for p in props {
                    canon.push_str(&format!("{:016x};", p.to_bits()));
                }
            }
            WorldSpec::Fixture { name } => {
                canon.push_str("fixture;");
                canon.push_str(name);
            }
            WorldSpec::Generated {
                demands,
                faults,
                region_max,
                zipf,
                prop_lo,
                prop_hi,
                seed,
            } => {
                canon.push_str(&format!(
                    "generated;{demands};{faults};{region_max};{:016x};{:016x};{:016x};{seed}",
                    zipf.to_bits(),
                    prop_lo.to_bits(),
                    prop_hi.to_bits()
                ));
            }
        }
        fnv1a64(canon.as_bytes())
    }

    /// Validates the spec's parameters, naming the offending wire
    /// field on rejection.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidField`] for out-of-range parameters,
    /// [`ServeError::UnknownFixture`] for unknown fixture names.
    pub fn validate(&self) -> Result<(), ServeError> {
        match self {
            WorldSpec::Singleton { props } => {
                if props.is_empty() || props.len() > MAX_DEMANDS {
                    return Err(ServeError::InvalidField {
                        field: "world.props",
                        message: format!(
                            "need between 1 and {MAX_DEMANDS} propensities, got {}",
                            props.len()
                        ),
                    });
                }
                for &p in props {
                    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                        return Err(ServeError::InvalidField {
                            field: "world.props",
                            message: format!("propensity {p} is outside [0, 1]"),
                        });
                    }
                }
            }
            WorldSpec::Fixture { name } => {
                if !FIXTURES.contains(&name.as_str()) {
                    return Err(ServeError::UnknownFixture { name: name.clone() });
                }
            }
            WorldSpec::Generated {
                demands,
                faults,
                region_max,
                zipf,
                prop_lo,
                prop_hi,
                ..
            } => {
                if *demands == 0 || *demands > MAX_DEMANDS {
                    return Err(ServeError::InvalidField {
                        field: "world.demands",
                        message: format!("must be in 1..={MAX_DEMANDS}, got {demands}"),
                    });
                }
                if *faults == 0 || *faults > MAX_FAULTS {
                    return Err(ServeError::InvalidField {
                        field: "world.faults",
                        message: format!("must be in 1..={MAX_FAULTS}, got {faults}"),
                    });
                }
                if *region_max == 0 || *region_max > 64 {
                    return Err(ServeError::InvalidField {
                        field: "world.region_max",
                        message: format!("must be in 1..=64, got {region_max}"),
                    });
                }
                if !zipf.is_finite() || !(0.0..=8.0).contains(zipf) {
                    return Err(ServeError::InvalidField {
                        field: "world.zipf",
                        message: format!("must be in [0, 8], got {zipf}"),
                    });
                }
                if !prop_lo.is_finite()
                    || !prop_hi.is_finite()
                    || !(0.0..=1.0).contains(prop_lo)
                    || !(0.0..=1.0).contains(prop_hi)
                    || prop_lo > prop_hi
                {
                    return Err(ServeError::InvalidField {
                        field: "world.prop_lo",
                        message: format!(
                            "need 0 <= prop_lo <= prop_hi <= 1, got [{prop_lo}, {prop_hi}]"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The strict wire rendering of this spec.
    pub fn to_value(&self) -> Value {
        match self {
            WorldSpec::Singleton { props } => Value::Object(vec![
                ("kind".into(), Value::String("singleton".into())),
                (
                    "props".into(),
                    Value::Array(props.iter().map(|&p| Value::Number(p)).collect()),
                ),
            ]),
            WorldSpec::Fixture { name } => Value::Object(vec![
                ("kind".into(), Value::String("fixture".into())),
                ("name".into(), Value::String(name.clone())),
            ]),
            WorldSpec::Generated {
                demands,
                faults,
                region_max,
                zipf,
                prop_lo,
                prop_hi,
                seed,
            } => Value::Object(vec![
                ("kind".into(), Value::String("generated".into())),
                ("demands".into(), Value::Number(*demands as f64)),
                ("faults".into(), Value::Number(*faults as f64)),
                ("region_max".into(), Value::Number(*region_max as f64)),
                ("zipf".into(), Value::Number(*zipf)),
                ("prop_lo".into(), Value::Number(*prop_lo)),
                ("prop_hi".into(), Value::Number(*prop_hi)),
                ("seed".into(), Value::Number(*seed as f64)),
            ]),
        }
    }

    /// The tolerant wire reader for a `world` member.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on structural problems, the
    /// [`WorldSpec::validate`] errors on out-of-range parameters.
    pub fn from_value(value: &Value) -> Result<Self, ServeError> {
        let kind = require_str(value, "world.kind")?;
        let spec = match kind {
            "singleton" => {
                let props = value
                    .get("props")
                    .and_then(Value::as_array)
                    .ok_or_else(|| protocol("world.props must be an array of numbers"))?
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| protocol("world.props must contain only numbers"))
                    })
                    .collect::<Result<Vec<f64>, ServeError>>()?;
                WorldSpec::Singleton { props }
            }
            "fixture" => WorldSpec::Fixture {
                name: require_member_str(value, "name", "world.name")?.to_string(),
            },
            "generated" => WorldSpec::Generated {
                demands: read_usize(value, "demands", "world.demands")?,
                faults: read_usize(value, "faults", "world.faults")?,
                region_max: opt_usize(value, "region_max", "world.region_max")?.unwrap_or(1),
                zipf: opt_f64(value, "zipf", "world.zipf")?.unwrap_or(0.0),
                prop_lo: opt_f64(value, "prop_lo", "world.prop_lo")?.unwrap_or(0.05),
                prop_hi: opt_f64(value, "prop_hi", "world.prop_hi")?.unwrap_or(0.5),
                seed: opt_u64(value, "seed", "world.seed")?.unwrap_or(0),
            },
            other => {
                return Err(protocol(format!(
                    "world.kind must be singleton, fixture or generated, got {other:?}"
                )))
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// The fixture names [`WorldSpec::Fixture`] accepts, in wire spelling.
pub const FIXTURES: &[&str] = &[
    "small-graded",
    "mirrored",
    "negative-coupling",
    "medium-cascade",
    "large",
];

/// The testing regime of an evaluation request.
///
/// Every [`CampaignRegime`] — including every identical-failure model
/// of back-to-back testing and every adaptive allocation policy — has
/// exactly one spec, so regimes round-trip across the wire without
/// silent coercion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegimeSpec {
    /// Both versions debugged on one shared suite.
    Shared,
    /// Each version debugged on its own independent suite.
    Independent,
    /// Back-to-back testing under the given identical-failure model.
    BackToBack {
        /// How coincident failures compare.
        model: IdenticalFailureModel,
    },
    /// Policy-driven adaptive allocation of a shared test budget.
    Adaptive {
        /// The allocation policy.
        policy: PolicySpec,
    },
}

impl RegimeSpec {
    /// The simulation regime this spec denotes.
    pub fn to_regime(self) -> CampaignRegime {
        match self {
            RegimeSpec::Shared => CampaignRegime::SharedSuite,
            RegimeSpec::Independent => CampaignRegime::IndependentSuites,
            RegimeSpec::BackToBack { model } => CampaignRegime::BackToBack(model),
            RegimeSpec::Adaptive { policy } => CampaignRegime::Adaptive(policy),
        }
    }

    /// The wire spec denoting `regime` — a total inverse of
    /// [`RegimeSpec::to_regime`], so every simulation regime can be
    /// expressed on the wire and recovered exactly.
    pub fn from_regime(regime: CampaignRegime) -> Self {
        match regime {
            CampaignRegime::SharedSuite => RegimeSpec::Shared,
            CampaignRegime::IndependentSuites => RegimeSpec::Independent,
            CampaignRegime::BackToBack(model) => RegimeSpec::BackToBack { model },
            CampaignRegime::Adaptive(policy) => RegimeSpec::Adaptive { policy },
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        match self {
            RegimeSpec::BackToBack {
                model: IdenticalFailureModel::Bernoulli(gamma),
            } if !gamma.is_finite() || !(0.0..=1.0).contains(gamma) => {
                return Err(ServeError::InvalidField {
                    field: "regime.gamma",
                    message: format!("must be a probability in [0, 1], got {gamma}"),
                });
            }
            RegimeSpec::Adaptive { policy } => match *policy {
                PolicySpec::EpsilonGreedy { epsilon } if policy.validate().is_err() => {
                    return Err(ServeError::InvalidField {
                        field: "regime.epsilon",
                        message: format!("must be a probability in [0, 1], got {epsilon}"),
                    });
                }
                PolicySpec::UcbIndex { c } if policy.validate().is_err() => {
                    return Err(ServeError::InvalidField {
                        field: "regime.c",
                        message: format!("must be a finite non-negative number, got {c}"),
                    });
                }
                _ => {}
            },
            _ => {}
        }
        Ok(())
    }

    /// The strict wire rendering of this regime.
    ///
    /// Bernoulli back-to-back regimes render with a `gamma` member —
    /// byte-identical to the historical wire form — while `Never` /
    /// `Always` render with a `model` member.
    pub fn to_value(&self) -> Value {
        match self {
            RegimeSpec::Shared => Value::String("shared".into()),
            RegimeSpec::Independent => Value::String("independent".into()),
            RegimeSpec::BackToBack { model } => {
                let payload = match model {
                    IdenticalFailureModel::Bernoulli(gamma) => {
                        ("gamma".to_string(), Value::Number(*gamma))
                    }
                    IdenticalFailureModel::Never => {
                        ("model".to_string(), Value::String("never".into()))
                    }
                    IdenticalFailureModel::Always => {
                        ("model".to_string(), Value::String("always".into()))
                    }
                };
                Value::Object(vec![
                    ("kind".into(), Value::String("back_to_back".into())),
                    payload,
                ])
            }
            RegimeSpec::Adaptive { policy } => Value::Object(vec![
                ("kind".into(), Value::String("adaptive".into())),
                ("policy".into(), policy_to_value(*policy)),
            ]),
        }
    }

    fn from_value(value: &Value) -> Result<Self, ServeError> {
        let kind = value.get("kind").and_then(Value::as_str);
        let spec = match value {
            Value::String(s) if s == "shared" => RegimeSpec::Shared,
            Value::String(s) if s == "independent" => RegimeSpec::Independent,
            Value::Object(_) if kind == Some("back_to_back") => {
                let model = match value.get("model") {
                    None => IdenticalFailureModel::Bernoulli(
                        opt_f64(value, "gamma", "regime.gamma")?.unwrap_or(0.0),
                    ),
                    Some(_) if value.get("gamma").is_some() => {
                        return Err(protocol("regime cannot carry both \"gamma\" and \"model\""))
                    }
                    Some(m) => match m.as_str() {
                        Some("never") => IdenticalFailureModel::Never,
                        Some("always") => IdenticalFailureModel::Always,
                        _ => return Err(protocol("regime.model must be \"never\" or \"always\"")),
                    },
                };
                RegimeSpec::BackToBack { model }
            }
            Value::Object(_) if kind == Some("adaptive") => {
                let policy = value
                    .get("policy")
                    .ok_or_else(|| protocol("adaptive regimes need a \"policy\" member"))?;
                RegimeSpec::Adaptive {
                    policy: policy_from_value(policy)?,
                }
            }
            _ => {
                return Err(protocol(
                    "regime must be \"shared\", \"independent\", \
                     {\"kind\":\"back_to_back\",...} or {\"kind\":\"adaptive\",...}",
                ))
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// The strict wire rendering of an adaptive allocation policy.
fn policy_to_value(policy: PolicySpec) -> Value {
    match policy {
        PolicySpec::RoundRobin => Value::String("round_robin".into()),
        PolicySpec::GreedyOnFailures => Value::String("greedy".into()),
        PolicySpec::EpsilonGreedy { epsilon } => Value::Object(vec![
            ("kind".into(), Value::String("epsilon_greedy".into())),
            ("epsilon".into(), Value::Number(epsilon)),
        ]),
        PolicySpec::UcbIndex { c } => Value::Object(vec![
            ("kind".into(), Value::String("ucb".into())),
            ("c".into(), Value::Number(c)),
        ]),
    }
}

/// The tolerant wire reader for a `regime.policy` member.
fn policy_from_value(value: &Value) -> Result<PolicySpec, ServeError> {
    match value {
        Value::String(s) if s == "round_robin" => Ok(PolicySpec::RoundRobin),
        Value::String(s) if s == "greedy" => Ok(PolicySpec::GreedyOnFailures),
        Value::Object(_) => match require_str(value, "regime.policy.kind")? {
            "epsilon_greedy" => Ok(PolicySpec::EpsilonGreedy {
                epsilon: opt_f64(value, "epsilon", "regime.epsilon")?.unwrap_or(0.0),
            }),
            "ucb" => Ok(PolicySpec::UcbIndex {
                c: opt_f64(value, "c", "regime.c")?.unwrap_or(0.0),
            }),
            other => Err(protocol(format!(
                "regime.policy.kind must be epsilon_greedy or ucb, got {other:?}"
            ))),
        },
        _ => Err(protocol(
            "regime.policy must be \"round_robin\", \"greedy\" or {\"kind\":...}",
        )),
    }
}

/// Which study an evaluation request runs.
#[derive(Debug, Clone, PartialEq)]
pub enum StudySpec {
    /// Replicated campaigns → pfd estimates of the tested pair (the
    /// paper's central delivered-reliability query).
    Estimate,
    /// Replicated reliability-growth trajectories recorded at the
    /// given testing-effort checkpoints.
    Growth {
        /// Strictly increasing demand counts; `0` records the
        /// untested pair.
        checkpoints: Vec<usize>,
    },
}

impl StudySpec {
    fn validate(&self) -> Result<(), ServeError> {
        if let StudySpec::Growth { checkpoints } = self {
            if checkpoints.is_empty() || checkpoints.len() > 256 {
                return Err(ServeError::InvalidField {
                    field: "study.checkpoints",
                    message: format!("need 1..=256 checkpoints, got {}", checkpoints.len()),
                });
            }
            if !checkpoints.windows(2).all(|w| w[0] < w[1]) {
                return Err(ServeError::InvalidField {
                    field: "study.checkpoints",
                    message: "checkpoints must be strictly increasing".into(),
                });
            }
            if *checkpoints.last().expect("non-empty") > MAX_SUITE_SIZE {
                return Err(ServeError::InvalidField {
                    field: "study.checkpoints",
                    message: format!("checkpoints must not exceed {MAX_SUITE_SIZE}"),
                });
            }
        }
        Ok(())
    }

    /// The strict wire rendering of this study.
    pub fn to_value(&self) -> Value {
        match self {
            StudySpec::Estimate => Value::String("estimate".into()),
            StudySpec::Growth { checkpoints } => Value::Object(vec![
                ("kind".into(), Value::String("growth".into())),
                (
                    "checkpoints".into(),
                    Value::Array(
                        checkpoints
                            .iter()
                            .map(|&c| Value::Number(c as f64))
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    fn from_value(value: &Value) -> Result<Self, ServeError> {
        let spec = match value {
            Value::String(s) if s == "estimate" => StudySpec::Estimate,
            Value::Object(_) if value.get("kind").and_then(Value::as_str) == Some("growth") => {
                let checkpoints = value
                    .get("checkpoints")
                    .and_then(Value::as_array)
                    .ok_or_else(|| protocol("study.checkpoints must be an array of integers"))?
                    .iter()
                    .map(|v| {
                        as_index(v).ok_or_else(|| {
                            protocol("study.checkpoints must contain non-negative integers")
                        })
                    })
                    .collect::<Result<Vec<usize>, ServeError>>()?;
                StudySpec::Growth { checkpoints }
            }
            _ => {
                return Err(protocol(
                    "study must be \"estimate\" or {\"kind\":\"growth\",...}",
                ))
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Largest accepted node count of a wire system structure.
pub const MAX_STRUCTURE_NODES: usize = 256;

/// A system structure function described *by value* on the wire, in
/// [`RegimeSpec`]'s style: every [`Structure`] tree has exactly one
/// spec, so structures round-trip without silent coercion.
///
/// ```json
/// {"kind":"k_of_n","k":2,"children":[
///   {"kind":"component","index":0},
///   {"kind":"component","index":1},
///   {"kind":"component","index":2}]}
/// ```
///
/// Component indices map onto the world's two development processes
/// alternately (even indices sample the A population, odd indices the
/// B population — see `Scenario::with_structure`), so the
/// two-component `{"kind":"and",...}` reproduces the classic pair.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemSpec {
    /// A component leaf.
    Component {
        /// The component's index.
        index: usize,
    },
    /// Fails iff all children fail (parallel redundancy).
    And {
        /// The child subsystems.
        children: Vec<SystemSpec>,
    },
    /// Fails iff any child fails (series).
    Or {
        /// The child subsystems.
        children: Vec<SystemSpec>,
    },
    /// Works iff at least `k` children work.
    KOutOfN {
        /// Number of children that must work.
        k: usize,
        /// The child subsystems.
        children: Vec<SystemSpec>,
    },
}

impl SystemSpec {
    /// The structure tree this spec denotes.
    pub fn to_structure(&self) -> Structure {
        match self {
            SystemSpec::Component { index } => Structure::component(*index),
            SystemSpec::And { children } => {
                Structure::and(children.iter().map(SystemSpec::to_structure).collect())
            }
            SystemSpec::Or { children } => {
                Structure::or(children.iter().map(SystemSpec::to_structure).collect())
            }
            SystemSpec::KOutOfN { k, children } => {
                Structure::k_out_of_n(*k, children.iter().map(SystemSpec::to_structure).collect())
            }
        }
    }

    /// The wire spec denoting `structure` — a total inverse of
    /// [`SystemSpec::to_structure`], so every structure tree can be
    /// expressed on the wire and recovered exactly.
    pub fn from_structure(structure: &Structure) -> Self {
        let specs =
            |children: &[Structure]| children.iter().map(SystemSpec::from_structure).collect();
        match structure {
            Structure::Component(index) => SystemSpec::Component { index: *index },
            Structure::And(children) => SystemSpec::And {
                children: specs(children),
            },
            Structure::Or(children) => SystemSpec::Or {
                children: specs(children),
            },
            Structure::KOutOfN { k, children } => SystemSpec::KOutOfN {
                k: *k,
                children: specs(children),
            },
        }
    }

    fn node_count(&self) -> usize {
        match self {
            SystemSpec::Component { .. } => 1,
            SystemSpec::And { children }
            | SystemSpec::Or { children }
            | SystemSpec::KOutOfN { children, .. } => {
                1 + children.iter().map(SystemSpec::node_count).sum::<usize>()
            }
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.node_count() > MAX_STRUCTURE_NODES {
            return Err(ServeError::InvalidField {
                field: "system",
                message: format!("structure exceeds the sanity cap of {MAX_STRUCTURE_NODES} nodes"),
            });
        }
        let structure = self.to_structure();
        structure
            .validate(structure.component_count().max(1))
            .map_err(|e| ServeError::InvalidField {
                field: "system",
                message: e.to_string(),
            })
    }

    /// The strict wire rendering of this structure.
    pub fn to_value(&self) -> Value {
        let array = |children: &[SystemSpec]| {
            Value::Array(children.iter().map(SystemSpec::to_value).collect())
        };
        match self {
            SystemSpec::Component { index } => Value::Object(vec![
                ("kind".into(), Value::String("component".into())),
                ("index".into(), Value::Number(*index as f64)),
            ]),
            SystemSpec::And { children } => Value::Object(vec![
                ("kind".into(), Value::String("and".into())),
                ("children".into(), array(children)),
            ]),
            SystemSpec::Or { children } => Value::Object(vec![
                ("kind".into(), Value::String("or".into())),
                ("children".into(), array(children)),
            ]),
            SystemSpec::KOutOfN { k, children } => Value::Object(vec![
                ("kind".into(), Value::String("k_of_n".into())),
                ("k".into(), Value::Number(*k as f64)),
                ("children".into(), array(children)),
            ]),
        }
    }

    /// The tolerant wire reader for a `system` member.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on structural problems,
    /// [`ServeError::InvalidField`] for malformed structures (bad `k`,
    /// empty gates, node-count cap).
    pub fn from_value(value: &Value) -> Result<Self, ServeError> {
        let spec = Self::read_node(value)?;
        spec.validate()?;
        Ok(spec)
    }

    fn read_node(value: &Value) -> Result<Self, ServeError> {
        let children = |value: &Value| {
            value
                .get("children")
                .and_then(Value::as_array)
                .ok_or_else(|| protocol("system gates need a \"children\" array"))?
                .iter()
                .map(SystemSpec::read_node)
                .collect::<Result<Vec<SystemSpec>, ServeError>>()
        };
        match require_str(value, "system.kind")? {
            "component" => Ok(SystemSpec::Component {
                index: read_usize(value, "index", "system.index")?,
            }),
            "and" => Ok(SystemSpec::And {
                children: children(value)?,
            }),
            "or" => Ok(SystemSpec::Or {
                children: children(value)?,
            }),
            "k_of_n" => Ok(SystemSpec::KOutOfN {
                k: read_usize(value, "k", "system.k")?,
                children: children(value)?,
            }),
            other => Err(protocol(format!(
                "system.kind must be component, and, or or k_of_n, got {other:?}"
            ))),
        }
    }
}

/// The body of a world-evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateRequest {
    /// The world to evaluate in (cached by content hash).
    pub world: WorldSpec,
    /// The testing regime.
    pub regime: RegimeSpec,
    /// Demands per generated suite.
    pub suite_size: usize,
    /// Monte Carlo replication budget (`1..=`[`MAX_REPLICATIONS`]).
    pub replications: u64,
    /// The study to run.
    pub study: StudySpec,
    /// Optional structure function scoring the campaign; `None` keeps
    /// the classic 1-out-of-2 pair queries.
    pub system: Option<SystemSpec>,
}

impl EvaluateRequest {
    fn validate(&self) -> Result<(), ServeError> {
        self.world.validate()?;
        self.regime.validate()?;
        self.study.validate()?;
        if let Some(system) = &self.system {
            system.validate()?;
            if !matches!(self.study, StudySpec::Estimate) {
                return Err(ServeError::InvalidField {
                    field: "study",
                    message: "growth studies do not support system structures".into(),
                });
            }
        }
        if self.suite_size > MAX_SUITE_SIZE {
            return Err(ServeError::InvalidField {
                field: "suite_size",
                message: format!("exceeds the sanity cap {MAX_SUITE_SIZE}"),
            });
        }
        if self.replications == 0 || self.replications > MAX_REPLICATIONS {
            return Err(ServeError::InvalidField {
                field: "replications",
                message: format!(
                    "must be in 1..={MAX_REPLICATIONS}, got {}",
                    self.replications
                ),
            });
        }
        Ok(())
    }
}

/// The body of a run-registered-experiment request — also the value
/// `diversim run` and the thin `eNN_*` binaries construct internally,
/// so every entry into the engine passes this validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRequest {
    /// Experiment key: slug (`"e01"`), binary name or id.
    pub key: String,
    /// The replication profile to run under.
    pub profile: Profile,
}

/// What an [`EvaluationRequest`] asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Evaluate a world under a regime.
    Evaluate(EvaluateRequest),
    /// Run a registered reproduction experiment.
    Experiment(ExperimentRequest),
    /// Liveness probe; answered with `pong`.
    Ping,
}

/// One request line of the `diversim/v1` protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationRequest {
    /// Client-chosen identifier, echoed verbatim in the response.
    pub id: String,
    /// Base seed of the request's replication streams.
    pub seed: u64,
    /// Client stream number; distinct streams derive non-colliding
    /// seed sequences from the same base seed (see the module docs).
    pub stream: u64,
    /// The request body.
    pub kind: RequestKind,
}

impl EvaluationRequest {
    /// Parses one request line (tolerant reader; see the module docs).
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for lines that are not well-formed
    /// protocol documents, [`ServeError::UnsupportedApi`] for foreign
    /// `api` versions, and the spec validation errors for out-of-range
    /// parameters.
    pub fn parse(line: &str) -> Result<Self, ServeError> {
        let doc = json::parse(line).map_err(|e| protocol(format!("malformed JSON: {e}")))?;
        if !matches!(doc, Value::Object(_)) {
            return Err(protocol("request must be a JSON object"));
        }
        let api = doc
            .get("api")
            .and_then(Value::as_str)
            .ok_or_else(|| protocol("missing string member \"api\""))?;
        if api != API_VERSION {
            return Err(ServeError::UnsupportedApi { found: api.into() });
        }
        let id = doc
            .get("id")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let seed = opt_u64(&doc, "seed", "seed")?.unwrap_or(0);
        let stream = opt_u64(&doc, "stream", "stream")?.unwrap_or(0);
        let kind = match require_member_str(&doc, "kind", "kind")? {
            "ping" => RequestKind::Ping,
            "evaluate" => {
                let world = doc
                    .get("world")
                    .ok_or_else(|| protocol("evaluate requests need a \"world\" member"))?;
                let request = EvaluateRequest {
                    world: WorldSpec::from_value(world)?,
                    regime: match doc.get("regime") {
                        Some(v) => RegimeSpec::from_value(v)?,
                        None => RegimeSpec::Shared,
                    },
                    suite_size: opt_usize(&doc, "suite_size", "suite_size")?.unwrap_or(0),
                    replications: opt_u64(&doc, "replications", "replications")?.unwrap_or(0),
                    study: match doc.get("study") {
                        Some(v) => StudySpec::from_value(v)?,
                        None => StudySpec::Estimate,
                    },
                    system: match doc.get("system") {
                        Some(v) => Some(SystemSpec::from_value(v)?),
                        None => None,
                    },
                };
                request.validate()?;
                RequestKind::Evaluate(request)
            }
            "experiment" => RequestKind::Experiment(ExperimentRequest {
                key: require_member_str(&doc, "experiment", "experiment")?.to_string(),
                profile: match doc.get("profile") {
                    None => Profile::Full,
                    Some(v) => {
                        let name = v
                            .as_str()
                            .ok_or_else(|| protocol("profile must be a string"))?;
                        Profile::from_name(name).ok_or(ServeError::InvalidField {
                            field: "profile",
                            message: format!("must be smoke, fast or full, got {name:?}"),
                        })?
                    }
                },
            }),
            other => {
                return Err(protocol(format!(
                    "kind must be evaluate, experiment or ping, got {other:?}"
                )))
            }
        };
        Ok(EvaluationRequest {
            id,
            seed,
            stream,
            kind,
        })
    }

    /// The strict one-line wire rendering of this request.
    pub fn to_json(&self) -> String {
        let mut members = vec![
            ("api".to_string(), Value::String(API_VERSION.into())),
            ("id".to_string(), Value::String(self.id.clone())),
        ];
        match &self.kind {
            RequestKind::Ping => {
                members.push(("kind".into(), Value::String("ping".into())));
            }
            RequestKind::Evaluate(e) => {
                members.push(("kind".into(), Value::String("evaluate".into())));
                members.push(("seed".into(), Value::Number(self.seed as f64)));
                members.push(("stream".into(), Value::Number(self.stream as f64)));
                members.push(("world".into(), e.world.to_value()));
                members.push(("regime".into(), e.regime.to_value()));
                members.push(("suite_size".into(), Value::Number(e.suite_size as f64)));
                members.push(("replications".into(), Value::Number(e.replications as f64)));
                members.push(("study".into(), e.study.to_value()));
                if let Some(system) = &e.system {
                    members.push(("system".into(), system.to_value()));
                }
            }
            RequestKind::Experiment(x) => {
                members.push(("kind".into(), Value::String("experiment".into())));
                members.push(("experiment".into(), Value::String(x.key.clone())));
                members.push((
                    "profile".into(),
                    Value::String(x.profile.name().to_string()),
                ));
            }
        }
        Value::Object(members).to_json()
    }
}

/// A `(mean, standard error)` pair of one estimated quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireEstimate {
    /// Sample mean across replications.
    pub mean: f64,
    /// Standard error of the mean.
    pub se: f64,
}

impl WireEstimate {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("mean".into(), Value::Number(self.mean)),
            ("se".into(), Value::Number(self.se)),
        ])
    }
}

/// The result payload of an estimate study.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateResult {
    /// The world's parameter-derived label.
    pub world: String,
    /// The world's content hash, as 16 hex digits.
    pub world_hash: String,
    /// The derived seed root actually used (see the module docs).
    /// Emitted as a decimal *string*: it is a full 64-bit value, and
    /// JSON numbers only carry 53 bits exactly.
    pub root_seed: u64,
    /// Replications spent.
    pub replications: u64,
    /// 1-out-of-2 system pfd of the tested pair.
    pub system_pfd: WireEstimate,
    /// Version A pfd after testing.
    pub version_a_pfd: WireEstimate,
    /// Version B pfd after testing.
    pub version_b_pfd: WireEstimate,
}

/// The result payload of a growth study.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthResult {
    /// The world's parameter-derived label.
    pub world: String,
    /// The world's content hash, as 16 hex digits.
    pub world_hash: String,
    /// The derived seed root actually used.
    pub root_seed: u64,
    /// Replications spent.
    pub replications: u64,
    /// The testing-effort checkpoints.
    pub checkpoints: Vec<usize>,
    /// System pfd per checkpoint.
    pub system: Vec<WireEstimate>,
    /// Version A pfd per checkpoint.
    pub version_a: Vec<WireEstimate>,
    /// Version B pfd per checkpoint.
    pub version_b: Vec<WireEstimate>,
}

/// The result payload of a structure-scored estimate study.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemResult {
    /// The world's parameter-derived label.
    pub world: String,
    /// The world's content hash, as 16 hex digits.
    pub world_hash: String,
    /// The derived seed root actually used.
    pub root_seed: u64,
    /// Replications spent.
    pub replications: u64,
    /// The structure that scored the campaign, echoed.
    pub structure: SystemSpec,
    /// System pfd after testing, through the structure.
    pub system_pfd: WireEstimate,
    /// System pfd of the untested components, through the structure.
    pub system_pfd_before: WireEstimate,
    /// Per-component pfd after testing, in component order.
    pub component_pfds: Vec<WireEstimate>,
}

/// The result payload of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The experiment's binary/result-file name.
    pub name: String,
    /// The profile it ran under.
    pub profile: String,
    /// Whether the run passed (failed checks under an enforcing
    /// profile fail the run).
    pub passed: bool,
    /// Every reproduction check: `(label, passed)`.
    pub checks: Vec<(String, bool)>,
}

/// What a response carries.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// The request was rejected or failed; `message` is the stable
    /// [`ServeError`] rendering.
    Error {
        /// Why (stable wire text).
        message: String,
    },
    /// Answer to a ping.
    Pong,
    /// Answer to an estimate study.
    Estimate(EstimateResult),
    /// Answer to a growth study.
    Growth(GrowthResult),
    /// Answer to a structure-scored estimate study.
    System(SystemResult),
    /// Answer to an experiment run.
    Experiment(ExperimentResult),
}

/// One response line of the `diversim/v1` protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationResponse {
    /// The request id, echoed.
    pub id: String,
    /// The payload.
    pub body: ResponseBody,
}

impl EvaluationResponse {
    /// An error response for `id`.
    pub fn error(id: impl Into<String>, error: &ServeError) -> Self {
        EvaluationResponse {
            id: id.into(),
            body: ResponseBody::Error {
                message: error.to_string(),
            },
        }
    }

    /// Whether this response reports success.
    pub fn is_ok(&self) -> bool {
        !matches!(self.body, ResponseBody::Error { .. })
    }

    /// The strict one-line wire rendering of this response: a pure
    /// function of `self`, so equal responses are byte-identical.
    pub fn to_json(&self) -> String {
        let mut members = vec![
            ("api".to_string(), Value::String(API_VERSION.into())),
            ("id".to_string(), Value::String(self.id.clone())),
            ("ok".to_string(), Value::Bool(self.is_ok())),
        ];
        match &self.body {
            ResponseBody::Error { message } => {
                members.push(("error".into(), Value::String(message.clone())));
            }
            ResponseBody::Pong => {
                members.push((
                    "result".into(),
                    Value::Object(vec![("kind".into(), Value::String("pong".into()))]),
                ));
            }
            ResponseBody::Estimate(r) => {
                members.push((
                    "result".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::String("estimate".into())),
                        ("world".into(), Value::String(r.world.clone())),
                        ("world_hash".into(), Value::String(r.world_hash.clone())),
                        ("root_seed".into(), Value::String(r.root_seed.to_string())),
                        ("replications".into(), Value::Number(r.replications as f64)),
                        ("system_pfd".into(), r.system_pfd.to_value()),
                        ("version_a_pfd".into(), r.version_a_pfd.to_value()),
                        ("version_b_pfd".into(), r.version_b_pfd.to_value()),
                    ]),
                ));
            }
            ResponseBody::Growth(r) => {
                let series = |estimates: &[WireEstimate]| {
                    Value::Array(estimates.iter().map(|e| e.to_value()).collect())
                };
                members.push((
                    "result".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::String("growth".into())),
                        ("world".into(), Value::String(r.world.clone())),
                        ("world_hash".into(), Value::String(r.world_hash.clone())),
                        ("root_seed".into(), Value::String(r.root_seed.to_string())),
                        ("replications".into(), Value::Number(r.replications as f64)),
                        (
                            "checkpoints".into(),
                            Value::Array(
                                r.checkpoints
                                    .iter()
                                    .map(|&c| Value::Number(c as f64))
                                    .collect(),
                            ),
                        ),
                        ("system".into(), series(&r.system)),
                        ("version_a".into(), series(&r.version_a)),
                        ("version_b".into(), series(&r.version_b)),
                    ]),
                ));
            }
            ResponseBody::System(r) => {
                members.push((
                    "result".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::String("system".into())),
                        ("world".into(), Value::String(r.world.clone())),
                        ("world_hash".into(), Value::String(r.world_hash.clone())),
                        ("root_seed".into(), Value::String(r.root_seed.to_string())),
                        ("replications".into(), Value::Number(r.replications as f64)),
                        ("structure".into(), r.structure.to_value()),
                        ("system_pfd".into(), r.system_pfd.to_value()),
                        ("system_pfd_before".into(), r.system_pfd_before.to_value()),
                        (
                            "component_pfds".into(),
                            Value::Array(r.component_pfds.iter().map(|e| e.to_value()).collect()),
                        ),
                    ]),
                ));
            }
            ResponseBody::Experiment(r) => {
                members.push((
                    "result".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::String("experiment".into())),
                        ("experiment".into(), Value::String(r.name.clone())),
                        ("profile".into(), Value::String(r.profile.clone())),
                        ("passed".into(), Value::Bool(r.passed)),
                        (
                            "checks".into(),
                            Value::Array(
                                r.checks
                                    .iter()
                                    .map(|(label, passed)| {
                                        Value::Object(vec![
                                            ("label".into(), Value::String(label.clone())),
                                            ("passed".into(), Value::Bool(*passed)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                ));
            }
        }
        Value::Object(members).to_json()
    }

    /// Minimal client-side reader: extracts `(id, ok)` from a response
    /// line. Used by `loadgen` to count protocol errors without
    /// modelling every result payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if the line is not a well-formed
    /// response document.
    pub fn parse_status(line: &str) -> Result<(String, bool), ServeError> {
        let doc = json::parse(line).map_err(|e| protocol(format!("malformed response: {e}")))?;
        let api = doc
            .get("api")
            .and_then(Value::as_str)
            .ok_or_else(|| protocol("response missing \"api\""))?;
        if api != API_VERSION {
            return Err(ServeError::UnsupportedApi { found: api.into() });
        }
        let id = doc
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| protocol("response missing \"id\""))?;
        let ok = doc
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| protocol("response missing \"ok\""))?;
        Ok((id.to_string(), ok))
    }
}

// --- tolerant-reader helpers ------------------------------------------

fn protocol(message: impl Into<String>) -> ServeError {
    ServeError::Protocol {
        message: message.into(),
    }
}

/// A non-negative integer exactly representable in an `f64`.
fn as_index(value: &Value) -> Option<usize> {
    let n = value.as_f64()?;
    if n.is_finite() && n >= 0.0 && n.trunc() == n && n < 9_007_199_254_740_992.0 {
        Some(n as usize)
    } else {
        None
    }
}

fn require_str<'a>(value: &'a Value, field: &'static str) -> Result<&'a str, ServeError> {
    let key = field.rsplit('.').next().expect("non-empty field path");
    require_member_str(value, key, field)
}

fn require_member_str<'a>(
    value: &'a Value,
    key: &str,
    field: &'static str,
) -> Result<&'a str, ServeError> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| protocol(format!("missing string member \"{field}\"")))
}

fn opt_u64(value: &Value, key: &str, field: &'static str) -> Result<Option<u64>, ServeError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => as_index(v)
            .map(|n| Some(n as u64))
            .ok_or_else(|| protocol(format!("member \"{field}\" must be a non-negative integer"))),
    }
}

fn opt_usize(value: &Value, key: &str, field: &'static str) -> Result<Option<usize>, ServeError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => as_index(v)
            .map(Some)
            .ok_or_else(|| protocol(format!("member \"{field}\" must be a non-negative integer"))),
    }
}

fn opt_f64(value: &Value, key: &str, field: &'static str) -> Result<Option<f64>, ServeError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| protocol(format!("member \"{field}\" must be a number"))),
    }
}

fn read_usize(value: &Value, key: &str, field: &'static str) -> Result<usize, ServeError> {
    opt_usize(value, key, field)?
        .ok_or_else(|| protocol(format!("missing integer member \"{field}\"")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluate_line() -> String {
        concat!(
            r#"{"api":"diversim/v1","id":"r1","kind":"evaluate","seed":42,"stream":7,"#,
            r#""world":{"kind":"singleton","props":[0.1,0.3]},"regime":"independent","#,
            r#""suite_size":4,"replications":500,"study":"estimate"}"#
        )
        .to_string()
    }

    #[test]
    fn parses_a_full_evaluate_request() {
        let req = EvaluationRequest::parse(&evaluate_line()).unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.seed, 42);
        assert_eq!(req.stream, 7);
        let RequestKind::Evaluate(e) = &req.kind else {
            panic!("evaluate expected")
        };
        assert_eq!(
            e.world,
            WorldSpec::Singleton {
                props: vec![0.1, 0.3]
            }
        );
        assert_eq!(e.regime, RegimeSpec::Independent);
        assert_eq!(e.suite_size, 4);
        assert_eq!(e.replications, 500);
        assert_eq!(e.study, StudySpec::Estimate);
    }

    #[test]
    fn reader_is_tolerant_of_order_and_unknown_members() {
        let line = concat!(
            r#"{"replications":100,"bogus":{"deep":[1,2]},"world":{"kind":"fixture","#,
            r#""extra":true,"name":"small-graded"},"kind":"evaluate","api":"diversim/v1"}"#
        );
        let req = EvaluationRequest::parse(line).unwrap();
        let RequestKind::Evaluate(e) = &req.kind else {
            panic!("evaluate expected")
        };
        // Optional members defaulted.
        assert_eq!(req.id, "");
        assert_eq!((req.seed, req.stream), (0, 0));
        assert_eq!(e.regime, RegimeSpec::Shared);
        assert_eq!(e.suite_size, 0);
        assert_eq!(e.study, StudySpec::Estimate);
    }

    #[test]
    fn request_round_trips_through_its_own_writer() {
        let req = EvaluationRequest::parse(&evaluate_line()).unwrap();
        let reparsed = EvaluationRequest::parse(&req.to_json()).unwrap();
        assert_eq!(req, reparsed);

        let growth = EvaluationRequest {
            id: "g".into(),
            seed: 1,
            stream: 2,
            kind: RequestKind::Evaluate(EvaluateRequest {
                world: WorldSpec::Generated {
                    demands: 64,
                    faults: 16,
                    region_max: 3,
                    zipf: 0.8,
                    prop_lo: 0.05,
                    prop_hi: 0.5,
                    seed: 9,
                },
                regime: RegimeSpec::BackToBack {
                    model: IdenticalFailureModel::Bernoulli(0.3),
                },
                suite_size: 8,
                replications: 50,
                study: StudySpec::Growth {
                    checkpoints: vec![0, 4, 8],
                },
                system: None,
            }),
        };
        assert_eq!(EvaluationRequest::parse(&growth.to_json()).unwrap(), growth);

        let experiment = EvaluationRequest {
            id: "x".into(),
            seed: 0,
            stream: 0,
            kind: RequestKind::Experiment(ExperimentRequest {
                key: "e01".into(),
                profile: Profile::Smoke,
            }),
        };
        assert_eq!(
            EvaluationRequest::parse(&experiment.to_json()).unwrap(),
            experiment
        );
    }

    #[test]
    fn rejects_bad_lines_with_protocol_errors() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            r#"{"id":"x"}"#,
            r#"{"api":"diversim/v1"}"#,
            r#"{"api":"diversim/v1","kind":"bogus"}"#,
            r#"{"api":"diversim/v1","kind":"evaluate"}"#,
        ] {
            let err = EvaluationRequest::parse(bad).unwrap_err();
            assert!(
                matches!(err, ServeError::Protocol { .. }),
                "{bad:?} → {err}"
            );
        }
        assert!(matches!(
            EvaluationRequest::parse(r#"{"api":"diversim/v2","kind":"ping"}"#).unwrap_err(),
            ServeError::UnsupportedApi { .. }
        ));
    }

    #[test]
    fn validation_names_the_offending_field() {
        let line = |body: &str| {
            format!(
                r#"{{"api":"diversim/v1","kind":"evaluate","world":{{"kind":"singleton","props":[0.5]}},"replications":10{body}}}"#
            )
        };
        let err = EvaluationRequest::parse(&line(r#","suite_size":99999999999"#)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidField {
                field: "suite_size",
                ..
            }
        ));
        let err =
            EvaluationRequest::parse(&line(r#","regime":{"kind":"back_to_back","gamma":1.5}"#))
                .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidField {
                field: "regime.gamma",
                ..
            }
        ));
        let err = EvaluationRequest::parse(&line(
            r#","regime":{"kind":"adaptive","policy":{"kind":"epsilon_greedy","epsilon":1.5}}"#,
        ))
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidField {
                field: "regime.epsilon",
                ..
            }
        ));
        let err = EvaluationRequest::parse(&line(
            r#","regime":{"kind":"adaptive","policy":{"kind":"ucb","c":-1}}"#,
        ))
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidField {
                field: "regime.c",
                ..
            }
        ));
        let err =
            EvaluationRequest::parse(&line(r#","study":{"kind":"growth","checkpoints":[3,1]}"#))
                .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidField {
                field: "study.checkpoints",
                ..
            }
        ));
        let err = EvaluationRequest::parse(
            r#"{"api":"diversim/v1","kind":"evaluate","world":{"kind":"singleton","props":[2.0]},"replications":10}"#,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidField {
                field: "world.props",
                ..
            }
        ));
        let err = EvaluationRequest::parse(
            r#"{"api":"diversim/v1","kind":"evaluate","world":{"kind":"fixture","name":"nope"},"replications":10}"#,
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::UnknownFixture { .. }));
    }

    #[test]
    fn every_regime_round_trips_without_coercion() {
        let regimes = [
            CampaignRegime::SharedSuite,
            CampaignRegime::IndependentSuites,
            CampaignRegime::BackToBack(IdenticalFailureModel::Never),
            CampaignRegime::BackToBack(IdenticalFailureModel::Always),
            CampaignRegime::BackToBack(IdenticalFailureModel::Bernoulli(0.3)),
            CampaignRegime::Adaptive(PolicySpec::RoundRobin),
            CampaignRegime::Adaptive(PolicySpec::GreedyOnFailures),
            CampaignRegime::Adaptive(PolicySpec::EpsilonGreedy { epsilon: 0.1 }),
            CampaignRegime::Adaptive(PolicySpec::UcbIndex { c: 0.5 }),
        ];
        for regime in regimes {
            let spec = RegimeSpec::from_regime(regime);
            assert_eq!(spec.to_regime(), regime, "{regime:?}");
            assert_eq!(
                RegimeSpec::from_value(&spec.to_value()).unwrap(),
                spec,
                "{regime:?}"
            );
        }
    }

    #[test]
    fn back_to_back_wire_forms_are_faithful() {
        // The historical gamma member still reads as Bernoulli and
        // renders back to the identical wire value.
        let legacy = json::parse(r#"{"kind":"back_to_back","gamma":0.3}"#).unwrap();
        let spec = RegimeSpec::from_value(&legacy).unwrap();
        assert_eq!(
            spec,
            RegimeSpec::BackToBack {
                model: IdenticalFailureModel::Bernoulli(0.3)
            }
        );
        assert_eq!(spec.to_value(), legacy);

        // Never / Always are expressible, not coerced to Bernoulli.
        for (wire, model) in [
            ("never", IdenticalFailureModel::Never),
            ("always", IdenticalFailureModel::Always),
        ] {
            let value =
                json::parse(&format!(r#"{{"kind":"back_to_back","model":"{wire}"}}"#)).unwrap();
            let spec = RegimeSpec::from_value(&value).unwrap();
            assert_eq!(spec, RegimeSpec::BackToBack { model });
            assert_eq!(spec.to_regime(), CampaignRegime::BackToBack(model));
            assert_eq!(spec.to_value(), value);
        }

        // Ambiguous and unknown forms are rejected, never guessed at.
        for bad in [
            r#"{"kind":"back_to_back","gamma":0.3,"model":"never"}"#,
            r#"{"kind":"back_to_back","model":"sometimes"}"#,
            r#"{"kind":"back_to_back","model":7}"#,
        ] {
            let value = json::parse(bad).unwrap();
            assert!(RegimeSpec::from_value(&value).is_err(), "{bad}");
        }
    }

    #[test]
    fn adaptive_regimes_cross_the_wire() {
        let lines = [
            (
                r#"{"kind":"adaptive","policy":"round_robin"}"#,
                PolicySpec::RoundRobin,
            ),
            (
                r#"{"kind":"adaptive","policy":"greedy"}"#,
                PolicySpec::GreedyOnFailures,
            ),
            (
                r#"{"kind":"adaptive","policy":{"kind":"epsilon_greedy","epsilon":0.1}}"#,
                PolicySpec::EpsilonGreedy { epsilon: 0.1 },
            ),
            (
                r#"{"kind":"adaptive","policy":{"kind":"ucb","c":0.5}}"#,
                PolicySpec::UcbIndex { c: 0.5 },
            ),
        ];
        for (line, policy) in lines {
            let value = json::parse(line).unwrap();
            let spec = RegimeSpec::from_value(&value).unwrap();
            assert_eq!(spec, RegimeSpec::Adaptive { policy }, "{line}");
            assert_eq!(spec.to_value(), value, "{line}");
            assert_eq!(spec.to_regime(), CampaignRegime::Adaptive(policy));
        }
        for bad in [
            r#"{"kind":"adaptive"}"#,
            r#"{"kind":"adaptive","policy":"optimal"}"#,
            r#"{"kind":"adaptive","policy":{"kind":"thompson"}}"#,
            r#"{"kind":"adaptive","policy":7}"#,
        ] {
            let value = json::parse(bad).unwrap();
            assert!(RegimeSpec::from_value(&value).is_err(), "{bad}");
        }
    }

    #[test]
    fn zero_replications_are_rejected() {
        let err = EvaluationRequest::parse(
            r#"{"api":"diversim/v1","kind":"evaluate","world":{"kind":"singleton","props":[0.5]}}"#,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidField {
                field: "replications",
                ..
            }
        ));
    }

    #[test]
    fn content_hash_distinguishes_specs_and_is_stable() {
        let a = WorldSpec::Singleton {
            props: vec![0.1, 0.3],
        };
        let b = WorldSpec::Singleton {
            props: vec![0.3, 0.1],
        };
        assert_eq!(a.content_hash(), a.content_hash());
        assert_ne!(a.content_hash(), b.content_hash());
        let gen = |seed| WorldSpec::Generated {
            demands: 64,
            faults: 16,
            region_max: 3,
            zipf: 0.8,
            prop_lo: 0.05,
            prop_hi: 0.5,
            seed,
        };
        assert_ne!(gen(1).content_hash(), gen(2).content_hash());
        assert_ne!(
            WorldSpec::Fixture {
                name: "small-graded".into()
            }
            .content_hash(),
            WorldSpec::Fixture {
                name: "mirrored".into()
            }
            .content_hash()
        );
    }

    #[test]
    fn responses_render_stable_lines() {
        let ok = EvaluationResponse {
            id: "r1".into(),
            body: ResponseBody::Pong,
        };
        assert_eq!(
            ok.to_json(),
            r#"{"api":"diversim/v1","id":"r1","ok":true,"result":{"kind":"pong"}}"#
        );
        assert_eq!(
            EvaluationResponse::parse_status(&ok.to_json()).unwrap(),
            ("r1".to_string(), true)
        );
        let err =
            EvaluationResponse::error("r2", &ServeError::UnknownExperiment { key: "e99".into() });
        assert_eq!(
            err.to_json(),
            r#"{"api":"diversim/v1","id":"r2","ok":false,"error":"unknown experiment: e99"}"#
        );
        assert_eq!(
            EvaluationResponse::parse_status(&err.to_json()).unwrap(),
            ("r2".to_string(), false)
        );
    }
}
