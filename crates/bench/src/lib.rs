//! The experiment engine and shared infrastructure for the `diversim`
//! reproduction campaign (E1–E16) and the Criterion benchmarks.
//!
//! Each registered experiment regenerates one numbered result of Popov &
//! Littlewood (DSN 2004); see `EXPERIMENTS.md` at the workspace root for
//! the experiment ↔ paper-result index (generated from [`registry`]).
//!
//! * [`spec`] — declarative [`spec::ExperimentSpec`]s, replication
//!   [`spec::Profile`]s and the per-run [`spec::RunContext`];
//! * [`registry`] — the ordered list of all sixteen experiments;
//! * [`engine`] — deterministic execution and JSON/CSV result rendering;
//! * [`cli`] — the `diversim` binary (`list` / `run` / `docs`) and the
//!   entry point shared by the thin `eNN_*` binaries;
//! * [`report`] — table rendering (text, TSV, CSV, JSON);
//! * [`worlds`] — the standard universes the experiments run on.

#![deny(missing_docs)]

pub mod cli;
pub mod engine;
mod experiments;
pub mod registry;
pub mod report;
pub mod spec;
pub mod worlds;

pub use report::Table;
