//! The experiment engine and shared infrastructure for the `diversim`
//! reproduction campaign (E1–E16) and the Criterion benchmarks.
//!
//! Each registered experiment regenerates one numbered result of Popov &
//! Littlewood (DSN 2004); see `EXPERIMENTS.md` at the workspace root for
//! the experiment ↔ paper-result index (generated from [`registry`]).
//!
//! * [`spec`] — declarative [`spec::ExperimentSpec`]s (including their
//!   [`spec::FigureSpec`] plot declarations), replication
//!   [`spec::Profile`]s and the per-run [`spec::RunContext`];
//! * [`registry`] — the ordered list of all twenty experiments;
//! * [`engine`] — deterministic execution and JSON/CSV result rendering;
//! * [`cli`] — the `diversim` binary (`list` / `run` / `sweep` /
//!   `serve` / `report` / `docs`) and the entry point shared by the
//!   thin `eNN_*` binaries;
//! * [`report`] — table rendering (text, TSV, CSV, JSON);
//! * [`render`] — deterministic SVG line/band plots for the report book;
//! * [`book`] — the reproduction report: `REPORT.md` + per-experiment
//!   chapters generated from result documents;
//! * [`json`] — the hand-rolled JSON reader/writer shared by the
//!   engine's result files and the serve wire protocol;
//! * [`hashing`] — the FNV-1a content hash shared by the serve world
//!   cache and the sweep cell store;
//! * [`sweep`] — sharded, resumable sweeps: cell decomposition,
//!   content-addressed cell caching and the `diversim sweep` driver;
//! * [`serve`] — the typed evaluation-request API, the `diversim
//!   serve` service (stdin/stdout + TCP) and the `loadgen` binary;
//! * [`worlds`] — the standard universes the experiments run on.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod book;
pub mod cli;
pub mod engine;
mod experiments;
pub mod hashing;
pub mod json;
pub mod registry;
pub mod render;
pub mod report;
pub mod serve;
pub mod spec;
pub mod sweep;
pub mod worlds;

pub use report::Table;
