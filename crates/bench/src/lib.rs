//! Shared infrastructure for the experiment binaries (E1–E12) and the
//! Criterion benchmarks.
//!
//! Each binary `eNN_*` regenerates one numbered result of Popov &
//! Littlewood (DSN 2004); see `EXPERIMENTS.md` at the workspace root for
//! the experiment ↔ paper-result index.

#![deny(missing_docs)]

pub mod report;
pub mod worlds;

pub use report::Table;
