//! Deterministic, dependency-free SVG line/band plots for the
//! reproduction report.
//!
//! The renderer draws the figures declared by each experiment's
//! [`crate::spec::FigureSpec`] from data extracted out of its recorded
//! [`crate::report::Table`]s. Everything is computed with plain `f64`
//! arithmetic and formatted with fixed precision, so the emitted SVG is
//! byte-identical across machines and thread counts — the same property
//! the engine guarantees for its JSON/CSV result files, extended to the
//! figures.
//!
//! Design follows the data-viz ground rules: a fixed-order categorical
//! palette (validated for adjacent-pair colour-vision safety), one y
//! axis per figure, thin 2 px lines with ≥ 8 px markers, recessive
//! hairline grid, a legend whenever two or more series are drawn, and
//! muted text tokens for all labels. Confidence bands are translucent
//! fills of their own series colour.

use std::fmt::Write as _;

use crate::spec::Scale;

/// The fixed-order categorical palette (light surface). Series are
/// assigned slots in declaration order, never cycled by value.
pub const PALETTE: [&str; 8] = [
    "#2a78d6", // blue
    "#eb6834", // orange
    "#1baf7a", // aqua
    "#eda100", // yellow
    "#e87ba4", // magenta
    "#008300", // green
    "#4a3aa7", // violet
    "#e34948", // red
];

const SURFACE: &str = "#fcfcfb";
const INK_PRIMARY: &str = "#0b0b0b";
const INK_SECONDARY: &str = "#52514e";
const INK_MUTED: &str = "#898781";
const GRID: &str = "#e1e0d9";
const AXIS: &str = "#c3c2b7";
const FONT: &str = "system-ui, sans-serif";

const WIDTH: f64 = 720.0;
const PLOT_X: f64 = 74.0;
const PLOT_Y: f64 = 40.0;
const PLOT_W: f64 = 620.0;
const PLOT_H: f64 = 300.0;
/// Vertical space under the plot for x tick labels + axis title.
const X_AXIS_BAND: f64 = 46.0;
const LEGEND_ROW_H: f64 = 20.0;
/// Estimated glyph advance at font-size 11.5 (deterministic layout
/// without text measurement).
const CHAR_W: f64 = 6.6;

/// One plotted series: a label, its points, and an optional confidence
/// band (as `(x, lo, hi)` triples).
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, in any order; the renderer sorts by x and skips
    /// non-finite values (and non-positive ones on log axes).
    pub points: Vec<(f64, f64)>,
    /// `(x, lo, hi)` band triples; empty means no band.
    pub band: Vec<(f64, f64, f64)>,
}

/// A complete figure ready to render.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title (drawn above the plot).
    pub title: String,
    /// X-axis title.
    pub x_label: String,
    /// Y-axis title.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The series, in palette order.
    pub series: Vec<Series>,
}

impl Figure {
    /// An empty figure with linear axes.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }
}

/// Escapes text for XML content and attribute values.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a pixel coordinate with fixed (deterministic) precision.
fn px(v: f64) -> String {
    format!("{v:.2}")
}

/// A value usable on `scale`: finite, and positive on log axes.
fn placeable(v: f64, scale: Scale) -> bool {
    v.is_finite() && (scale == Scale::Linear || v > 0.0)
}

/// The axis-space transform of a data value (identity or log10).
fn to_axis(v: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => v,
        Scale::Log => v.log10(),
    }
}

/// One axis: data range (in axis space) plus tick positions/labels.
struct AxisLayout {
    lo: f64,
    hi: f64,
    ticks: Vec<(f64, String)>,
}

impl AxisLayout {
    fn project(&self, axis_value: f64, origin: f64, extent: f64) -> f64 {
        origin + (axis_value - self.lo) / (self.hi - self.lo) * extent
    }
}

/// `⌊log10(v)⌋` for `v > 0`, computed from Rust's exact scientific
/// float formatting rather than libm.
///
/// Tick layout sits on `floor`/`ceil` decade boundaries, where a 1-ulp
/// libm difference in `log10` between platforms could flip a whole
/// decade and break the byte-for-byte golden/drift guards. Float→
/// decimal formatting in Rust is exact and platform-independent
/// (`{:e}` yields `m e p` with `m ∈ [1, 10)`), so the exponent *is*
/// the floored decade, on every target.
fn decade_floor(v: f64) -> i32 {
    debug_assert!(v > 0.0 && v.is_finite());
    let text = format!("{v:e}");
    let (_, exponent) = text.split_once('e').expect("{:e} always has an exponent");
    exponent.parse().expect("{:e} exponent is an integer")
}

/// `⌈log10(v)⌉` for `v > 0`, exact for powers of ten (same mechanism
/// as [`decade_floor`]).
fn decade_ceil(v: f64) -> i32 {
    let text = format!("{v:e}");
    let (mantissa, exponent) = text.split_once('e').expect("{:e} always has an exponent");
    let exponent: i32 = exponent.parse().expect("{:e} exponent is an integer");
    if mantissa == "1" || mantissa == "-1" {
        exponent
    } else {
        exponent + 1
    }
}

/// `10^k` via deterministic IEEE multiplications (no libm `powf`).
fn pow10(k: i32) -> f64 {
    10f64.powi(k)
}

/// Formats a linear tick value using the precision the step implies.
fn fmt_linear_tick(v: f64, step: f64) -> String {
    let abs = v.abs();
    if abs >= 1e6 || (abs > 0.0 && abs < 1e-4) {
        return format!("{v:.1e}");
    }
    let decimals = if step >= 1.0 {
        0
    } else {
        (-decade_floor(step)) as usize
    };
    format!("{v:.decimals$}")
}

/// Lays out a linear axis with ~5 "nice" (1/2/5 × 10^k) ticks.
fn linear_axis(mut lo: f64, mut hi: f64) -> AxisLayout {
    if lo == hi {
        let pad = if lo == 0.0 { 1.0 } else { lo.abs() * 0.5 };
        lo -= pad;
        hi += pad;
    }
    let pad = (hi - lo) * 0.05;
    lo -= pad;
    hi += pad;
    let raw = (hi - lo) / 5.0;
    let mag = pow10(decade_floor(raw));
    let norm = raw / mag;
    let step = mag
        * if norm <= 1.0 {
            1.0
        } else if norm <= 2.0 {
            2.0
        } else if norm <= 5.0 {
            5.0
        } else {
            10.0
        };
    let mut ticks = Vec::new();
    let first = (lo / step).ceil();
    let mut i = first;
    while i * step <= hi + step * 1e-9 {
        let v = i * step;
        // Snap -0.0 (and rounding dust below one thousandth of a step)
        // onto exact zero so labels never read "-0".
        let v = if v.abs() < step * 1e-3 { 0.0 } else { v };
        ticks.push((v, fmt_linear_tick(v, step)));
        i += 1.0;
    }
    AxisLayout { lo, hi, ticks }
}

/// Lays out a log axis with decade ticks (strided when crowded).
fn log_axis(lo_value: f64, hi_value: f64) -> AxisLayout {
    let mut lo = decade_floor(lo_value) as i64;
    let mut hi = decade_ceil(hi_value) as i64;
    if lo == hi {
        lo -= 1;
        hi += 1;
    }
    let decades = hi - lo;
    let stride = (decades + 5) / 6;
    let stride = stride.max(1);
    let mut ticks = Vec::new();
    let mut d = lo;
    while d <= hi {
        let label = if (-3..=3).contains(&d) {
            format!("{}", pow10(d as i32))
        } else {
            format!("1e{d}")
        };
        ticks.push((d as f64, label));
        d += stride;
    }
    AxisLayout {
        lo: lo as f64,
        hi: hi as f64,
        ticks,
    }
}

/// A series' placeable data in axis space: `(palette slot, points,
/// band triples)`.
type Drawable = (usize, Vec<(f64, f64)>, Vec<(f64, f64, f64)>);

/// Renders a [`Figure`] as a standalone SVG document.
///
/// Series are drawn in declaration order with palette colours assigned
/// by slot. Points that cannot be placed on the active scales (non-
/// finite, or non-positive on a log axis) are skipped; a series left
/// with a single point renders as a lone marker; a figure with no
/// placeable points at all renders an explicit "no plottable data"
/// notice instead of an empty frame.
pub fn render_svg(figure: &Figure) -> String {
    // --- collect placeable data (kept in raw data space; scales are
    // applied only at projection time, so decade-exact axis layout sees
    // the original values, never a log/exp round-trip) ----------------
    let mut drawable: Vec<Drawable> = Vec::new();
    for (slot, series) in figure.series.iter().enumerate() {
        let mut pts: Vec<(f64, f64)> = series
            .points
            .iter()
            .filter(|(x, y)| placeable(*x, figure.x_scale) && placeable(*y, figure.y_scale))
            .copied()
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite by construction"));
        let mut band: Vec<(f64, f64, f64)> = series
            .band
            .iter()
            .filter(|(x, lo, hi)| {
                placeable(*x, figure.x_scale)
                    && placeable(*lo, figure.y_scale)
                    && placeable(*hi, figure.y_scale)
            })
            .copied()
            .collect();
        band.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite by construction"));
        drawable.push((slot, pts, band));
    }

    let xs: Vec<f64> = drawable
        .iter()
        .flat_map(|(_, p, b)| {
            p.iter()
                .map(|&(x, _)| x)
                .chain(b.iter().map(|&(x, _, _)| x))
        })
        .collect();
    let ys: Vec<f64> = drawable
        .iter()
        .flat_map(|(_, p, b)| {
            p.iter()
                .map(|&(_, y)| y)
                .chain(b.iter().flat_map(|&(_, lo, hi)| [lo, hi]))
        })
        .collect();

    // --- axes --------------------------------------------------------
    let fold = |values: &[f64]| {
        values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    };
    let empty = xs.is_empty();
    let (x_axis, y_axis) = if empty {
        (linear_axis(0.0, 1.0), linear_axis(0.0, 1.0))
    } else {
        let (x_lo, x_hi) = fold(&xs);
        let (y_lo, y_hi) = fold(&ys);
        let x_axis = match figure.x_scale {
            Scale::Linear => linear_axis(x_lo, x_hi),
            Scale::Log => log_axis(x_lo, x_hi),
        };
        let y_axis = match figure.y_scale {
            Scale::Linear => linear_axis(y_lo, y_hi),
            Scale::Log => log_axis(y_lo, y_hi),
        };
        (x_axis, y_axis)
    };
    let plot_bottom = PLOT_Y + PLOT_H;
    // Tick positions are already in axis space (decades on a log axis);
    // data values go through `to_axis` first.
    let tick_x = |v: f64| x_axis.project(v, PLOT_X, PLOT_W);
    let tick_y = |v: f64| y_axis.project(v, plot_bottom, -PLOT_H);
    let sx = |v: f64| tick_x(to_axis(v, figure.x_scale));
    let sy = |v: f64| tick_y(to_axis(v, figure.y_scale));

    // --- legend layout (deterministic, estimated glyph widths) -------
    let legend: Vec<(usize, &str)> = if figure.series.len() >= 2 {
        figure
            .series
            .iter()
            .enumerate()
            .map(|(slot, s)| (slot, s.label.as_str()))
            .collect()
    } else {
        Vec::new()
    };
    let mut legend_rows: Vec<Vec<(usize, &str, f64)>> = Vec::new();
    {
        let mut cursor = 0.0;
        for (slot, label) in &legend {
            let w = 30.0 + label.chars().count() as f64 * CHAR_W + 18.0;
            if cursor + w > PLOT_W && cursor > 0.0 {
                cursor = 0.0;
                legend_rows.push(Vec::new());
            }
            if legend_rows.is_empty() {
                legend_rows.push(Vec::new());
            }
            legend_rows
                .last_mut()
                .expect("row pushed above")
                .push((*slot, label, cursor));
            cursor += w;
        }
    }
    let legend_h = legend_rows.len() as f64 * LEGEND_ROW_H;
    let height = plot_bottom + X_AXIS_BAND + legend_h + 10.0;

    // --- document ----------------------------------------------------
    let mut out = String::new();
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {} {}\" \
         width=\"{}\" height=\"{}\" role=\"img\" font-family=\"{FONT}\">",
        WIDTH,
        px(height),
        WIDTH,
        px(height)
    );
    let _ = write!(
        out,
        "<rect width=\"{}\" height=\"{}\" fill=\"{SURFACE}\"/>",
        WIDTH,
        px(height)
    );
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"24\" font-size=\"13.5\" font-weight=\"600\" fill=\"{INK_PRIMARY}\">{}</text>",
        px(PLOT_X),
        xml_escape(&figure.title)
    );

    // Grid + y ticks.
    for (v, label) in &y_axis.ticks {
        let y = tick_y(*v);
        let _ = write!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{GRID}\" stroke-width=\"1\"/>",
            px(PLOT_X),
            px(y),
            px(PLOT_X + PLOT_W),
            px(y)
        );
        let _ = write!(
            out,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"{INK_MUTED}\" text-anchor=\"end\">{}</text>",
            px(PLOT_X - 8.0),
            px(y + 3.5),
            xml_escape(label)
        );
    }
    // X ticks.
    for (v, label) in &x_axis.ticks {
        let x = tick_x(*v);
        let _ = write!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{AXIS}\" stroke-width=\"1\"/>",
            px(x),
            px(plot_bottom),
            px(x),
            px(plot_bottom + 4.0)
        );
        let _ = write!(
            out,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"{INK_MUTED}\" text-anchor=\"middle\">{}</text>",
            px(x),
            px(plot_bottom + 17.0),
            xml_escape(label)
        );
    }
    // Axis lines.
    let _ = write!(
        out,
        "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{AXIS}\" stroke-width=\"1\"/>",
        px(PLOT_X),
        px(plot_bottom),
        px(PLOT_X + PLOT_W),
        px(plot_bottom)
    );
    let _ = write!(
        out,
        "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{AXIS}\" stroke-width=\"1\"/>",
        px(PLOT_X),
        px(PLOT_Y),
        px(PLOT_X),
        px(plot_bottom)
    );
    // Axis titles.
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"{}\" font-size=\"11.5\" fill=\"{INK_SECONDARY}\" text-anchor=\"middle\">{}</text>",
        px(PLOT_X + PLOT_W / 2.0),
        px(plot_bottom + 36.0),
        xml_escape(&figure.x_label)
    );
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"{}\" font-size=\"11.5\" fill=\"{INK_SECONDARY}\" text-anchor=\"middle\" \
         transform=\"rotate(-90 {} {})\">{}</text>",
        px(16.0),
        px(PLOT_Y + PLOT_H / 2.0),
        px(16.0),
        px(PLOT_Y + PLOT_H / 2.0),
        xml_escape(&figure.y_label)
    );

    if empty {
        let _ = write!(
            out,
            "<text x=\"{}\" y=\"{}\" font-size=\"12\" fill=\"{INK_MUTED}\" text-anchor=\"middle\">no plottable data</text>",
            px(PLOT_X + PLOT_W / 2.0),
            px(PLOT_Y + PLOT_H / 2.0)
        );
    }

    // Bands first (under every line), then lines, then markers.
    for (slot, _, band) in &drawable {
        if band.len() < 2 {
            continue;
        }
        let color = PALETTE[slot % PALETTE.len()];
        let mut d = String::new();
        for (i, (x, _, hi)) in band.iter().enumerate() {
            let _ = write!(
                d,
                "{}{},{}",
                if i == 0 { "M" } else { " L" },
                px(sx(*x)),
                px(sy(*hi))
            );
        }
        for (x, lo, _) in band.iter().rev() {
            let _ = write!(d, " L{},{}", px(sx(*x)), px(sy(*lo)));
        }
        d.push('Z');
        let _ = write!(
            out,
            "<path d=\"{d}\" fill=\"{color}\" fill-opacity=\"0.13\" stroke=\"none\"/>"
        );
    }
    for (slot, pts, _) in &drawable {
        if pts.len() < 2 {
            continue;
        }
        let color = PALETTE[slot % PALETTE.len()];
        let coords: Vec<String> = pts
            .iter()
            .map(|&(x, y)| format!("{},{}", px(sx(x)), px(sy(y))))
            .collect();
        let _ = write!(
            out,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" \
             stroke-linejoin=\"round\" stroke-linecap=\"round\"/>",
            coords.join(" ")
        );
    }
    for (slot, pts, _) in &drawable {
        let color = PALETTE[slot % PALETTE.len()];
        for &(x, y) in pts {
            let _ = write!(
                out,
                "<circle cx=\"{}\" cy=\"{}\" r=\"4\" fill=\"{color}\" stroke=\"{SURFACE}\" stroke-width=\"2\"/>",
                px(sx(x)),
                px(sy(y))
            );
        }
    }

    // Legend.
    for (row, entries) in legend_rows.iter().enumerate() {
        let y = plot_bottom + X_AXIS_BAND + row as f64 * LEGEND_ROW_H + 8.0;
        for (slot, label, cursor) in entries {
            let color = PALETTE[slot % PALETTE.len()];
            let x = PLOT_X + cursor;
            let _ = write!(
                out,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{color}\" stroke-width=\"2\"/>",
                px(x),
                px(y),
                px(x + 18.0),
                px(y)
            );
            let _ = write!(
                out,
                "<circle cx=\"{}\" cy=\"{}\" r=\"3\" fill=\"{color}\"/>",
                px(x + 9.0),
                px(y)
            );
            let _ = write!(
                out,
                "<text x=\"{}\" y=\"{}\" font-size=\"11.5\" fill=\"{INK_SECONDARY}\">{}</text>",
                px(x + 24.0),
                px(y + 3.5),
                xml_escape(label)
            );
        }
    }

    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
            band: Vec::new(),
        }
    }

    #[test]
    fn renders_points_lines_and_legend() {
        let mut fig = Figure::new("demo", "x", "y");
        fig.series.push(line("a", vec![(0.0, 0.0), (1.0, 1.0)]));
        fig.series.push(line("b", vec![(0.0, 1.0), (1.0, 0.0)]));
        let svg = render_svg(&fig);
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.matches(PALETTE[0]).count() >= 2, "slot colours");
        assert!(svg.contains(">a</text>") && svg.contains(">b</text>"));
    }

    #[test]
    fn single_series_has_no_legend() {
        let mut fig = Figure::new("solo", "x", "y");
        fig.series.push(line("only", vec![(0.0, 1.0), (2.0, 3.0)]));
        let svg = render_svg(&fig);
        assert!(!svg.contains(">only</text>"), "title names a lone series");
    }

    #[test]
    fn single_point_series_renders_marker_without_line() {
        let mut fig = Figure::new("point", "x", "y");
        fig.series.push(line("p", vec![(1.0, 2.0)]));
        let svg = render_svg(&fig);
        assert!(!svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn empty_figure_renders_notice() {
        let fig = Figure::new("empty", "x", "y");
        let svg = render_svg(&fig);
        assert!(svg.contains("no plottable data"));
    }

    #[test]
    fn log_axis_skips_nonpositive_points() {
        let mut fig = Figure::new("log", "x", "y");
        fig.y_scale = Scale::Log;
        fig.series
            .push(line("s", vec![(1.0, 0.0), (2.0, 1e-6), (3.0, 1e-2)]));
        let svg = render_svg(&fig);
        // The zero point is dropped: two markers survive.
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains("1e-6") || svg.contains("1e-7"), "decade ticks");
    }

    #[test]
    fn band_renders_one_translucent_path() {
        let mut fig = Figure::new("band", "x", "y");
        fig.series.push(Series {
            label: "mc".into(),
            points: vec![(0.0, 0.5), (1.0, 0.6)],
            band: vec![(0.0, 0.45, 0.55), (1.0, 0.55, 0.65)],
        });
        let svg = render_svg(&fig);
        assert_eq!(svg.matches("fill-opacity=\"0.13\"").count(), 1);
    }

    #[test]
    fn output_is_stable_across_calls_and_escapes_xml() {
        let mut fig = Figure::new("a < b & \"c\"", "x", "y");
        fig.series.push(line("s<1>", vec![(0.0, 0.3), (1.0, 0.7)]));
        fig.series.push(line("s&2", vec![(0.0, 0.1)]));
        let first = render_svg(&fig);
        let second = render_svg(&fig);
        assert_eq!(first, second);
        assert!(first.contains("a &lt; b &amp; &quot;c&quot;"));
        assert!(first.contains("s&lt;1&gt;"));
        assert!(!first.contains("a < b"));
    }

    #[test]
    fn constant_series_degenerate_range_still_renders() {
        let mut fig = Figure::new("flat", "x", "y");
        fig.series.push(line("f", vec![(0.0, 0.5), (1.0, 0.5)]));
        let svg = render_svg(&fig);
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }

    #[test]
    fn unsorted_points_are_drawn_in_x_order() {
        let mut fig = Figure::new("sort", "x", "y");
        fig.series
            .push(line("s", vec![(2.0, 0.2), (0.0, 0.0), (1.0, 0.1)]));
        let svg = render_svg(&fig);
        let polyline = svg
            .split("points=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("polyline present");
        let xs: Vec<f64> = polyline
            .split(' ')
            .map(|pair| pair.split(',').next().unwrap().parse().unwrap())
            .collect();
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "{xs:?}");
    }
}
