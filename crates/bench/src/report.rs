//! Table rendering for experiment reports: aligned plain text for
//! humans, and TSV/CSV/JSON for machines.
//!
//! Every experiment emits one or more [`Table`]s. The experiment engine
//! (`crate::engine`) turns the collected tables of a run into one JSON
//! and one CSV result file per experiment; standalone callers can also
//! mirror tables to `DIVERSIM_TSV_DIR` as TSV (the legacy plotting
//! hook).
//!
//! The JSON writer is hand-rolled: the workspace's vendored `serde` is
//! a no-op derive stub (the build image has no crates.io access), so
//! the escaping lives here, in one audited place, until real
//! `serde_json` is available.

use std::fmt::Write as _;
use std::path::Path;

/// Errors from building a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// A row's cell count did not match the header count.
    RowArityMismatch {
        /// Number of header columns the table was created with.
        expected: usize,
        /// Number of cells in the offending row.
        got: usize,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::RowArityMismatch { expected, got } => {
                write!(
                    f,
                    "row width mismatch: expected {expected} cells, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// Escapes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are quoted, and embedded quotes are
/// doubled.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Escapes a string for inclusion inside a JSON string literal
/// (backslash, quote, and control characters below U+0020).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use diversim_bench::report::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(&["1".into(), "2".into()]);
/// let text = t.render();
/// assert!(text.contains('x'));
/// assert!(text.contains('1'));
/// assert_eq!(t.to_csv(), "x,y\n1,2\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row, or reports the arity mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::RowArityMismatch`] if the cell count
    /// differs from the header count.
    pub fn try_row(&mut self, cells: &[String]) -> Result<(), ReportError> {
        if cells.len() != self.headers.len() {
            return Err(ReportError::RowArityMismatch {
                expected: self.headers.len(),
                got: cells.len(),
            });
        }
        self.rows.push(cells.to_vec());
        Ok(())
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        self.try_row(cells).expect("row width mismatch");
    }

    /// Convenience: appends a row of formatted floats after a string key.
    pub fn row_key_floats(&mut self, key: impl std::fmt::Display, values: &[f64]) {
        let mut cells = vec![key.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.6}")));
        self.row(&cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ──", self.title);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", h, width = widths[i]);
        }
        out.push('\n');
        for (i, _) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders as TSV (headers + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Renders as RFC 4180 CSV (headers + rows, escaped).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape_line = |cells: &[String]| {
            cells
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&escape_line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&escape_line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON object `{"title", "headers", "rows"}` (all
    /// cells as strings, escaped).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"title\":\"{}\",", json_escape(&self.title));
        let quoted = |cells: &[String]| {
            cells
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = write!(out, "\"headers\":[{}],", quoted(&self.headers));
        out.push_str("\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{}]", quoted(row));
        }
        out.push_str("]}");
        out
    }

    /// Prints the table to stdout and, if `DIVERSIM_TSV_DIR` is set,
    /// writes `<dir>/<file_stem>.tsv`.
    pub fn emit(&self, file_stem: &str) {
        println!("{}", self.render());
        self.mirror_tsv(file_stem);
    }

    /// Writes `<dir>/<file_stem>.tsv` if `DIVERSIM_TSV_DIR` is set
    /// (without printing).
    pub fn mirror_tsv(&self, file_stem: &str) {
        if let Ok(dir) = std::env::var("DIVERSIM_TSV_DIR") {
            let path = Path::new(&dir).join(format!("{file_stem}.tsv"));
            if let Err(e) = std::fs::write(&path, self.to_tsv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Renders a set of tables as one long-format ("tidy") CSV with the
/// fixed schema `table,row,column,value` — uniform across experiments,
/// so result files can be concatenated and diffed by regression
/// tooling regardless of each table's own columns.
pub fn tables_to_long_csv(tables: &[Table]) -> String {
    let mut out = String::from("table,row,column,value\n");
    for table in tables {
        for (r, row) in table.rows.iter().enumerate() {
            for (header, cell) in table.headers.iter().zip(row) {
                let _ = writeln!(
                    out,
                    "{},{r},{},{}",
                    csv_escape(&table.title),
                    csv_escape(header),
                    csv_escape(cell)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", &["key", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-key".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("── t ──"));
        assert!(text.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_key_floats_formats() {
        let mut t = Table::new("t", &["n", "a", "b"]);
        t.row_key_floats(4, &[0.5, 0.25]);
        let tsv = t.to_tsv();
        assert!(tsv.contains("4\t0.500000\t0.250000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn try_row_reports_arity_mismatch() {
        let mut t = Table::new("t", &["a", "b"]);
        let err = t.try_row(&["only-one".into()]).unwrap_err();
        assert_eq!(
            err,
            ReportError::RowArityMismatch {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("expected 2 cells, got 1"));
        assert!(t.is_empty(), "failed row must not be stored");
        assert!(t.try_row(&["x".into(), "y".into()]).is_ok());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tsv_roundtrip_structure() {
        let mut t = Table::new("t", &["h1", "h2"]);
        t.row(&["x".into(), "y".into()]);
        let tsv = t.to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(lines.next(), Some("h1\th2"));
        assert_eq!(lines.next(), Some("x\ty"));
    }

    #[test]
    fn csv_escapes_quotes_commas_and_newlines() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");

        let mut t = Table::new("t", &["name", "note"]);
        t.row(&["x,y".into(), "he said \"go\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,note\n\"x,y\",\"he said \"\"go\"\"\"\n");
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_structure_is_well_formed() {
        let mut t = Table::new("joint \"pfd\"", &["n", "value"]);
        t.row(&["1".into(), "0.5".into()]);
        t.row(&["2".into(), "0.25".into()]);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"title\":\"joint \\\"pfd\\\"\",\"headers\":[\"n\",\"value\"],\
             \"rows\":[[\"1\",\"0.5\"],[\"2\",\"0.25\"]]}"
        );
    }

    #[test]
    fn long_csv_has_fixed_schema() {
        let mut a = Table::new("first", &["x", "y"]);
        a.row(&["1".into(), "2".into()]);
        let mut b = Table::new("second, part", &["k"]);
        b.row(&["v".into()]);
        let csv = tables_to_long_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "table,row,column,value");
        assert_eq!(lines[1], "first,0,x,1");
        assert_eq!(lines[2], "first,0,y,2");
        assert_eq!(lines[3], "\"second, part\",0,k,v");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn empty_table_serialises_cleanly() {
        let t = Table::new("empty", &["a"]);
        assert_eq!(t.to_csv(), "a\n");
        assert_eq!(
            t.to_json(),
            "{\"title\":\"empty\",\"headers\":[\"a\"],\"rows\":[]}"
        );
        assert_eq!(tables_to_long_csv(&[t]), "table,row,column,value\n");
    }
}
