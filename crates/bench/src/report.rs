//! Plain-text table rendering for experiment reports.
//!
//! Every experiment binary prints one or more aligned tables to stdout
//! and can emit the same rows as TSV (for plotting) when the
//! `DIVERSIM_TSV_DIR` environment variable points at a directory.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use diversim_bench::report::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(&["1".into(), "2".into()]);
/// let text = t.render();
/// assert!(text.contains('x'));
/// assert!(text.contains('1'));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of formatted floats after a string key.
    pub fn row_key_floats(&mut self, key: impl std::fmt::Display, values: &[f64]) {
        let mut cells = vec![key.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.6}")));
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ──", self.title);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", h, width = widths[i]);
        }
        out.push('\n');
        for (i, _) in self.headers.iter().enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders as TSV (headers + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and, if `DIVERSIM_TSV_DIR` is set,
    /// writes `<dir>/<file_stem>.tsv`.
    pub fn emit(&self, file_stem: &str) {
        println!("{}", self.render());
        if let Ok(dir) = std::env::var("DIVERSIM_TSV_DIR") {
            let path = Path::new(&dir).join(format!("{file_stem}.tsv"));
            if let Err(e) = std::fs::write(&path, self.to_tsv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", &["key", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-key".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("── t ──"));
        assert!(text.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_key_floats_formats() {
        let mut t = Table::new("t", &["n", "a", "b"]);
        t.row_key_floats(4, &[0.5, 0.25]);
        let tsv = t.to_tsv();
        assert!(tsv.contains("4\t0.500000\t0.250000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn tsv_roundtrip_structure() {
        let mut t = Table::new("t", &["h1", "h2"]);
        t.row(&["x".into(), "y".into()]);
        let tsv = t.to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(lines.next(), Some("h1\th2"));
        assert_eq!(lines.next(), Some("x\ty"));
    }
}
