//! The reproduction-report book: turns engine result documents into
//! `REPORT.md` plus one figure-rich chapter per experiment.
//!
//! The book is a pure function of the `diversim-result/v1` JSON
//! documents it is given — whether those were just produced by the
//! engine (`diversim report --run`) or loaded from a results directory
//! written by an earlier `diversim run --all --out` (`diversim report
//! --results DIR`). Both paths go through [`ResultDoc::from_json`], so
//! there is exactly one rendering code path, and the output inherits
//! the engine's byte-determinism across machines and thread counts.
//! Wall-clock timing is deliberately reported on stdout only, never in
//! the book, for the same reason.
//!
//! Every chapter carries the paper claim, the sweep grid, the figures
//! declared by the experiment's [`crate::spec::FigureSpec`]s (inline
//! SVG, rendered by [`crate::render`]), the full recorded tables, the
//! `ctx.check` verdict table and a reproduction-status badge; the book
//! is capped by a cross-experiment scoreboard in `REPORT.md`. The
//! committed smoke-profile book at the workspace root is drift-guarded
//! by an integration test in the style of the `EXPERIMENTS.md` guard.

use std::fmt::Write as _;

use crate::engine::{RunOutcome, RESULT_SCHEMA};
use crate::json;
use crate::registry;
use crate::render::{render_svg, Figure, Series};
use crate::report::Table;
use crate::spec::{Check, ExperimentSpec, FigureSpec};

/// File name of the book's summary page (at the output root).
pub const REPORT_FILE: &str = "REPORT.md";

/// Directory (under the output root) holding the chapter files.
pub const CHAPTER_DIR: &str = "report";

/// Why a book could not be rendered.
#[derive(Debug, Clone, PartialEq)]
pub enum BookError {
    /// A result document was not valid JSON.
    Parse {
        /// Where the document came from (file name or experiment name).
        source: String,
        /// The underlying parse failure.
        error: json::ParseError,
    },
    /// A result document was valid JSON but not a `diversim-result/v1`
    /// document (missing or mistyped field, wrong schema tag).
    Schema {
        /// Where the document came from.
        source: String,
        /// What was missing or malformed.
        what: String,
    },
    /// A result document names an experiment absent from the registry.
    UnknownExperiment {
        /// The unrecognised experiment name.
        name: String,
    },
    /// A figure declaration points at a table the run never emitted.
    MissingTable {
        /// The experiment whose figure is broken.
        name: String,
        /// The declared table index.
        table: usize,
        /// How many tables the run recorded.
        available: usize,
    },
    /// A figure declaration names a column the table does not have.
    MissingColumn {
        /// The experiment whose figure is broken.
        name: String,
        /// The missing column header.
        column: String,
        /// The table's title.
        table: String,
    },
}

impl std::fmt::Display for BookError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BookError::Parse { source, error } => {
                write!(f, "{source}: invalid JSON: {error}")
            }
            BookError::Schema { source, what } => {
                write!(f, "{source}: not a {RESULT_SCHEMA} document: {what}")
            }
            BookError::UnknownExperiment { name } => {
                write!(f, "result document for unregistered experiment '{name}'")
            }
            BookError::MissingTable {
                name,
                table,
                available,
            } => write!(
                f,
                "{name}: figure references table {table} but the run recorded {available}"
            ),
            BookError::MissingColumn {
                name,
                column,
                table,
            } => write!(f, "{name}: figure column '{column}' not in table '{table}'"),
        }
    }
}

impl std::error::Error for BookError {}

/// One parsed `diversim-result/v1` document.
#[derive(Debug, Clone)]
pub struct ResultDoc {
    /// Experiment ordinal.
    pub id: u64,
    /// Binary / result-file name (`"e01_el_model"`).
    pub name: String,
    /// Human title.
    pub title: String,
    /// The paper result(s) reproduced.
    pub paper_ref: String,
    /// The claim the run re-verified.
    pub claim: String,
    /// The sweep grid description.
    pub sweep: String,
    /// Profile the run used (`"smoke"` / `"fast"` / `"full"`).
    pub profile: String,
    /// Full-effort Monte Carlo budget (0 for exact experiments).
    pub full_replications: u64,
    /// The budget actually run under the profile.
    pub replication_budget: u64,
    /// Every recorded reproduction check.
    pub checks: Vec<Check>,
    /// The recorded tables with their result-file stems.
    pub tables: Vec<(String, Table)>,
}

fn field<'a>(
    value: &'a json::Value,
    key: &str,
    source: &str,
) -> Result<&'a json::Value, BookError> {
    value.get(key).ok_or_else(|| BookError::Schema {
        source: source.to_string(),
        what: format!("missing field '{key}'"),
    })
}

fn str_field(value: &json::Value, key: &str, source: &str) -> Result<String, BookError> {
    field(value, key, source)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| BookError::Schema {
            source: source.to_string(),
            what: format!("field '{key}' is not a string"),
        })
}

fn u64_field(value: &json::Value, key: &str, source: &str) -> Result<u64, BookError> {
    field(value, key, source)?
        .as_f64()
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| BookError::Schema {
            source: source.to_string(),
            what: format!("field '{key}' is not a non-negative integer"),
        })
}

impl ResultDoc {
    /// Parses one result document.
    ///
    /// `source` is used in error messages (a file path or experiment
    /// name).
    ///
    /// # Errors
    ///
    /// [`BookError::Parse`] for malformed JSON, [`BookError::Schema`]
    /// for anything that is not a `diversim-result/v1` document.
    pub fn from_json(text: &str, source: &str) -> Result<Self, BookError> {
        let doc = json::parse(text).map_err(|error| BookError::Parse {
            source: source.to_string(),
            error,
        })?;
        let schema = str_field(&doc, "schema", source)?;
        if schema != RESULT_SCHEMA {
            return Err(BookError::Schema {
                source: source.to_string(),
                what: format!("schema is '{schema}', expected '{RESULT_SCHEMA}'"),
            });
        }
        let mut checks = Vec::new();
        for check in field(&doc, "checks", source)?
            .as_array()
            .ok_or_else(|| BookError::Schema {
                source: source.to_string(),
                what: "field 'checks' is not an array".into(),
            })?
        {
            let passed =
                field(check, "passed", source)?
                    .as_bool()
                    .ok_or_else(|| BookError::Schema {
                        source: source.to_string(),
                        what: "check 'passed' is not a boolean".into(),
                    })?;
            checks.push(Check {
                label: str_field(check, "label", source)?,
                passed,
            });
        }
        let mut tables = Vec::new();
        for table in field(&doc, "tables", source)?
            .as_array()
            .ok_or_else(|| BookError::Schema {
                source: source.to_string(),
                what: "field 'tables' is not an array".into(),
            })?
        {
            let stem = str_field(table, "stem", source)?;
            let title = str_field(table, "title", source)?;
            let string_items = |key: &str, value: &json::Value| -> Result<Vec<String>, BookError> {
                value
                    .as_array()
                    .map(|items| {
                        items
                            .iter()
                            .map(|item| item.as_str().map(str::to_string))
                            .collect::<Option<Vec<String>>>()
                    })
                    .and_then(|v| v)
                    .ok_or_else(|| BookError::Schema {
                        source: source.to_string(),
                        what: format!("table '{key}' is not an array of strings"),
                    })
            };
            let headers = string_items("headers", field(table, "headers", source)?)?;
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut rebuilt = Table::new(&title, &header_refs);
            for row in
                field(table, "rows", source)?
                    .as_array()
                    .ok_or_else(|| BookError::Schema {
                        source: source.to_string(),
                        what: "table 'rows' is not an array".into(),
                    })?
            {
                let cells = string_items("rows", row)?;
                rebuilt.try_row(&cells).map_err(|e| BookError::Schema {
                    source: source.to_string(),
                    what: format!("table '{title}': {e}"),
                })?;
            }
            tables.push((stem, rebuilt));
        }
        Ok(ResultDoc {
            id: u64_field(&doc, "id", source)?,
            name: str_field(&doc, "name", source)?,
            title: str_field(&doc, "title", source)?,
            paper_ref: str_field(&doc, "paper_ref", source)?,
            claim: str_field(&doc, "claim", source)?,
            sweep: str_field(&doc, "sweep", source)?,
            profile: str_field(&doc, "profile", source)?,
            full_replications: u64_field(&doc, "full_replications", source)?,
            replication_budget: u64_field(&doc, "replication_budget", source)?,
            checks,
            tables,
        })
    }

    /// Parses the document an engine run just rendered.
    ///
    /// # Errors
    ///
    /// As for [`ResultDoc::from_json`] (which cannot fail on engine
    /// output unless the two sides drift — exactly what the error
    /// would reveal).
    pub fn from_outcome(outcome: &RunOutcome) -> Result<Self, BookError> {
        Self::from_json(&outcome.json, outcome.spec.name)
    }

    /// Number of failed checks.
    pub fn failed_checks(&self) -> usize {
        self.checks.iter().filter(|c| !c.passed).count()
    }

    /// Whether the run's profile enforces statistical checks.
    pub fn enforces_checks(&self) -> bool {
        self.profile != "smoke"
    }
}

/// One rendered chapter file.
#[derive(Debug, Clone)]
pub struct Chapter {
    /// File name under [`CHAPTER_DIR`] (`"e01_el_model.md"`).
    pub file_name: String,
    /// The chapter markdown (with inline SVG figures).
    pub markdown: String,
}

/// The rendered book: the summary page plus all chapters.
#[derive(Debug, Clone)]
pub struct Book {
    /// Contents of [`REPORT_FILE`].
    pub report: String,
    /// The chapter files, in experiment order.
    pub chapters: Vec<Chapter>,
}

/// Parses a table cell as a number, tolerating an identifier prefix
/// (demand ids render as `x3`). Returns `None` for narrative cells.
fn parse_cell(cell: &str) -> Option<f64> {
    let t = cell.trim();
    if let Ok(v) = t.parse::<f64>() {
        return Some(v);
    }
    let stripped = t.trim_start_matches(|c: char| !(c.is_ascii_digit() || "+-.".contains(c)));
    if stripped.len() == t.len() || stripped.is_empty() {
        return None;
    }
    stripped.parse::<f64>().ok()
}

/// Resolves one declared figure against the recorded tables.
fn build_figure(doc: &ResultDoc, spec: &FigureSpec) -> Result<Figure, BookError> {
    let (_, table) = doc
        .tables
        .get(spec.table)
        .ok_or_else(|| BookError::MissingTable {
            name: doc.name.clone(),
            table: spec.table,
            available: doc.tables.len(),
        })?;
    let column = |header: &str| -> Result<usize, BookError> {
        table
            .headers()
            .iter()
            .position(|h| h == header)
            .ok_or_else(|| BookError::MissingColumn {
                name: doc.name.clone(),
                column: header.to_string(),
                table: table.title().to_string(),
            })
    };
    let x_idx = column(spec.x)?;
    let mut figure = Figure::new(table.title(), spec.x_label, spec.y_label);
    figure.x_scale = spec.x_scale;
    figure.y_scale = spec.y_scale;
    for series_spec in spec.series {
        let y_idx = column(series_spec.y)?;
        let se_idx = series_spec.se.map(&column).transpose()?;
        let filter = series_spec
            .filter
            .map(|(col, value)| Ok::<_, BookError>((column(col)?, value)))
            .transpose()?;
        let mut series = Series {
            label: series_spec.label.to_string(),
            ..Series::default()
        };
        for row in table.rows() {
            if let Some((col, value)) = filter {
                if row[col] != value {
                    continue;
                }
            }
            let (Some(x), Some(y)) = (parse_cell(&row[x_idx]), parse_cell(&row[y_idx])) else {
                continue;
            };
            series.points.push((x, y));
            if let Some(se_idx) = se_idx {
                if let Some(se) = parse_cell(&row[se_idx]) {
                    series.band.push((x, y - 2.0 * se, y + 2.0 * se));
                }
            }
        }
        figure.series.push(series);
    }
    Ok(figure)
}

/// Escapes a string for use inside a GFM table cell.
fn md_cell(text: &str) -> String {
    text.replace('|', "\\|").replace('\n', " ")
}

/// Renders a recorded table as a GFM table.
fn table_to_markdown(table: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {} |",
        table
            .headers()
            .iter()
            .map(|h| md_cell(h))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let _ = writeln!(
        out,
        "|{}|",
        table
            .headers()
            .iter()
            .map(|_| "---")
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in table.rows() {
        let _ = writeln!(
            out,
            "| {} |",
            row.iter()
                .map(|c| md_cell(c))
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    out
}

/// The long status badge shown at the top of a chapter.
fn badge(doc: &ResultDoc) -> String {
    let total = doc.checks.len();
    let failed = doc.failed_checks();
    let passed = total - failed;
    if failed == 0 {
        format!("✅ **reproduced** — {passed}/{total} checks passed")
    } else if !doc.enforces_checks() {
        format!(
            "⚠️ **{passed}/{total} checks at smoke budget** — statistical checks are \
             recorded but not enforced at this effort; run `--fast` or `--full` to enforce them"
        )
    } else {
        format!("❌ **FAILED** — {passed}/{total} checks passed")
    }
}

/// The short status cell used in the scoreboard.
fn short_badge(doc: &ResultDoc) -> &'static str {
    if doc.failed_checks() == 0 {
        "✅ reproduced"
    } else if !doc.enforces_checks() {
        "⚠️ smoke noise"
    } else {
        "❌ failed"
    }
}

fn render_chapter(doc: &ResultDoc, spec: &'static ExperimentSpec) -> Result<Chapter, BookError> {
    let mut md = String::new();
    let _ = writeln!(md, "# E{} · {}", doc.id, doc.title);
    let _ = writeln!(md, "\n[← reproduction report](../{REPORT_FILE})\n");
    let _ = writeln!(md, "{}\n", badge(doc));
    let budget = if doc.full_replications == 0 {
        "exact / enumerative (no Monte Carlo budget)".to_string()
    } else {
        format!(
            "{} of {} full-effort replications",
            doc.replication_budget, doc.full_replications
        )
    };
    let _ = writeln!(md, "| | |");
    let _ = writeln!(md, "|---|---|");
    let _ = writeln!(md, "| **Paper result** | {} |", md_cell(&doc.paper_ref));
    let _ = writeln!(md, "| **Claim** | {} |", md_cell(&doc.claim));
    let _ = writeln!(md, "| **Sweep grid** | {} |", md_cell(&doc.sweep));
    let _ = writeln!(
        md,
        "| **Profile** | `{}` — {} |",
        doc.profile,
        md_cell(&budget)
    );

    if !spec.figures.is_empty() {
        let _ = writeln!(md, "\n## Figures");
        for (i, figure_spec) in spec.figures.iter().enumerate() {
            let figure = build_figure(doc, figure_spec)?;
            let _ = writeln!(md, "\n{}\n", render_svg(&figure));
            let _ = writeln!(md, "*Figure {}: {}*", i + 1, figure_spec.caption);
        }
    }

    let _ = writeln!(md, "\n## Recorded tables");
    for (stem, table) in &doc.tables {
        let _ = writeln!(md, "\n### {} (`{stem}`)\n", md_cell(table.title()));
        md.push_str(&table_to_markdown(table));
    }

    let _ = writeln!(md, "\n## Reproduction checks");
    let enforced = if doc.enforces_checks() {
        "enforced"
    } else {
        "recorded, not enforced at smoke effort"
    };
    let _ = writeln!(
        md,
        "\n{} checks, {} failed ({enforced}).\n",
        doc.checks.len(),
        doc.failed_checks()
    );
    let _ = writeln!(md, "| verdict | check |");
    let _ = writeln!(md, "|---|---|");
    for check in &doc.checks {
        let _ = writeln!(
            md,
            "| {} | {} |",
            if check.passed { "✅" } else { "❌" },
            md_cell(&check.label)
        );
    }
    let _ = writeln!(
        md,
        "\n---\n\n*Generated by `diversim report` from `{}` result data; do not edit by hand.*",
        RESULT_SCHEMA
    );
    Ok(Chapter {
        file_name: format!("{}.md", doc.name),
        markdown: md,
    })
}

/// Renders the whole book from parsed result documents.
///
/// Documents are rendered in the order given (the CLI passes registry
/// order); each must correspond to a registered experiment so its
/// figure declarations can be resolved.
///
/// # Errors
///
/// Any [`BookError`] from matching documents to the registry or
/// resolving figure declarations against the recorded tables.
pub fn render_book(docs: &[ResultDoc]) -> Result<Book, BookError> {
    let mut chapters = Vec::with_capacity(docs.len());
    let mut specs: Vec<&'static ExperimentSpec> = Vec::with_capacity(docs.len());
    for doc in docs {
        let spec = registry::find(&doc.name).ok_or_else(|| BookError::UnknownExperiment {
            name: doc.name.clone(),
        })?;
        specs.push(spec);
        chapters.push(render_chapter(doc, spec)?);
    }

    let total_checks: usize = docs.iter().map(|d| d.checks.len()).sum();
    let total_failed: usize = docs.iter().map(|d| d.failed_checks()).sum();
    let total_figures: usize = specs.iter().map(|s| s.figures.len()).sum();
    let profiles: Vec<&str> = {
        let mut names: Vec<&str> = docs.iter().map(|d| d.profile.as_str()).collect();
        names.dedup();
        names
    };
    let profile_label = if profiles.len() == 1 {
        format!("`{}`", profiles[0])
    } else {
        "mixed".to_string()
    };

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Reproduction report — Popov & Littlewood, *The Effect of Testing on \
         Reliability of Fault-Tolerant Software* (DSN 2004)"
    );
    let _ = writeln!(
        md,
        "\nOne chapter per registered experiment, generated from the engine's \
         deterministic `{RESULT_SCHEMA}` result documents at the {profile_label} \
         replication profile: the paper claim, the sweep grid, the figures with \
         Monte Carlo confidence bands, every recorded table, and the full check \
         verdict list. Start with any chapter in the scoreboard below, or read \
         `PAPER.md` for the notation the chapters use. Figures are embedded as \
         inline SVG so each chapter is a single self-contained file — most \
         markdown viewers (VS Code, IDEs, static-site renderers) draw them \
         in place; github.com's sanitizer strips inline SVG, so view the \
         chapters locally (or in the CI `reproduction-report` artifact) for \
         the plots."
    );
    let _ = writeln!(
        md,
        "\n**{}/{} reproduction checks passed across {} experiments ({} figures).**",
        total_checks - total_failed,
        total_checks,
        docs.len(),
        total_figures
    );
    if profiles == ["smoke"] && total_failed > 0 {
        let _ = writeln!(
            md,
            "\n> The committed book runs at the tiny smoke budget so it can be \
             regenerated (and drift-checked) on every CI run; at this effort a \
             few statistical checks are expected to sit outside their tolerance \
             bands and are recorded without being enforced. `diversim run --all \
             --fast` enforces all of them on every CI run."
        );
    }
    let _ = writeln!(md, "\n## Scoreboard\n");
    let _ = writeln!(md, "| id | experiment | paper result | checks | status |");
    let _ = writeln!(md, "|---:|---|---|---:|---|");
    for doc in docs {
        let _ = writeln!(
            md,
            "| {} | [{}]({CHAPTER_DIR}/{}.md) | {} | {}/{} | {} |",
            doc.id,
            md_cell(&doc.title),
            doc.name,
            md_cell(&doc.paper_ref),
            doc.checks.len() - doc.failed_checks(),
            doc.checks.len(),
            short_badge(doc)
        );
    }

    let _ = writeln!(md, "\n## Determinism and seed provenance\n");
    let _ = writeln!(
        md,
        "Every number in this book is a pure function of `(experiment, \
         profile)`. Replication seeds are compile-time constants inside each \
         experiment module, expanded by `SeedPolicy` (SplitMix64-mixed \
         sequences or consecutive offsets) into per-replication seeds for the \
         vendored xoshiro256++ generator, and the deterministic parallel \
         runner folds replications in a thread-count-independent order — so \
         `--threads 1` and `--threads 8` produce byte-identical result files, \
         figures and chapters. Wall-clock timing is intentionally excluded \
         from the book (it is printed to stdout at generation time); an \
         integration test regenerates this book and fails on any drift."
    );
    let _ = writeln!(md, "\n## Regenerating\n");
    let _ = writeln!(md, "```console");
    let _ = writeln!(
        md,
        "$ cargo run --release -p diversim-bench --bin diversim -- report --run --smoke"
    );
    let _ = writeln!(
        md,
        "$ cargo run --release -p diversim-bench --bin diversim -- report --results results/"
    );
    let _ = writeln!(md, "```");
    let _ = writeln!(
        md,
        "\nThe first form re-runs all registered experiments (pick `--fast` or \
         `--full` for tighter Monte Carlo bands); the second renders the book \
         from result files written earlier by `diversim run --all --out \
         results/`. *(Generated by `diversim report`; the committed book uses \
         the smoke profile and is kept in sync by the `report_sync` \
         integration test.)*"
    );

    Ok(Book {
        report: md,
        chapters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_experiment;
    use crate::spec::Profile;

    fn demo_doc() -> ResultDoc {
        let spec = registry::find("e01").expect("registered");
        let outcome = run_experiment(spec, Profile::Smoke, 2, true);
        ResultDoc::from_outcome(&outcome).expect("engine output parses")
    }

    #[test]
    fn engine_output_round_trips_through_the_parser() {
        let doc = demo_doc();
        assert_eq!(doc.id, 1);
        assert_eq!(doc.name, "e01_el_model");
        assert_eq!(doc.profile, "smoke");
        assert_eq!(doc.full_replications, 60_000);
        assert_eq!(doc.replication_budget, 300);
        assert!(!doc.checks.is_empty());
        assert_eq!(doc.tables.len(), 1);
        assert_eq!(doc.tables[0].0, "e01_el_model");
        assert!(!doc.enforces_checks());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = ResultDoc::from_json("{\"schema\":\"nope/v9\"}", "test").unwrap_err();
        assert!(matches!(err, BookError::Schema { .. }), "{err}");
        let err = ResultDoc::from_json("not json", "test").unwrap_err();
        assert!(matches!(err, BookError::Parse { .. }), "{err}");
    }

    #[test]
    fn parse_cell_handles_prefixes_and_narrative() {
        assert_eq!(parse_cell("0.25"), Some(0.25));
        assert_eq!(parse_cell("+0.5"), Some(0.5));
        assert_eq!(parse_cell("1.234e-12"), Some(1.234e-12));
        assert_eq!(parse_cell("x3"), Some(3.0));
        assert_eq!(parse_cell("YES"), None);
        assert_eq!(parse_cell("tie"), None);
        assert_eq!(parse_cell("-"), None);
        assert_eq!(parse_cell("12.3x"), None, "trailing junk is narrative");
    }

    #[test]
    fn chapter_contains_claim_figures_tables_and_checks() {
        let doc = demo_doc();
        let book = render_book(std::slice::from_ref(&doc)).expect("renders");
        assert_eq!(book.chapters.len(), 1);
        let md = &book.chapters[0].markdown;
        assert!(md.starts_with("# E1 · "));
        assert!(md.contains(&doc.claim));
        assert!(md.contains("<svg "), "inline SVG figure");
        assert!(md.contains("## Recorded tables"));
        assert!(md.contains("## Reproduction checks"));
        assert!(md.contains("| ✅ |") || md.contains("| ❌ |"));
        assert!(book.report.contains("## Scoreboard"));
        assert!(book.report.contains("report/e01_el_model.md"));
    }

    #[test]
    fn unknown_experiment_is_a_typed_error() {
        let mut doc = demo_doc();
        doc.name = "e99_unknown".into();
        let err = render_book(&[doc]).unwrap_err();
        assert_eq!(
            err,
            BookError::UnknownExperiment {
                name: "e99_unknown".into()
            }
        );
    }

    #[test]
    fn markdown_tables_escape_pipes() {
        let mut t = Table::new("t", &["a|b"]);
        t.row(&["1|2".into()]);
        let md = table_to_markdown(&t);
        assert!(md.contains("a\\|b"));
        assert!(md.contains("1\\|2"));
    }

    #[test]
    fn every_registered_figure_resolves_against_its_tables() {
        // The metadata-level guard: each experiment's figure declarations
        // must reference tables and columns its run actually emits.
        for spec in registry::all() {
            let outcome = run_experiment(spec, Profile::Smoke, 2, true);
            let doc = ResultDoc::from_outcome(&outcome).expect("parses");
            for figure_spec in spec.figures {
                let figure = build_figure(&doc, figure_spec)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                // Every declared series must extract points — a typoed
                // `.only()` filter value or y column would otherwise ship
                // a silently empty line behind a legend entry. (Points
                // are extracted before log-axis placement, so all-zero
                // log-scale series still count as non-empty here.)
                for series in &figure.series {
                    assert!(
                        !series.points.is_empty(),
                        "{}: series '{}' of the figure over table {} extracted no points \
                         (filter or column out of sync with the emitted rows?)",
                        spec.name,
                        series.label,
                        figure_spec.table
                    );
                }
            }
        }
    }
}
