//! Declarative experiment specifications and the per-run context.
//!
//! An [`ExperimentSpec`] is the single source of truth for one numbered
//! reproduction of Popov & Littlewood (DSN 2004): identity, the paper
//! result it regenerates, its sweep grid, its replication plan, and the
//! function that executes it. The registry (`crate::registry`) lists
//! all twenty; the engine (`crate::engine`) executes any of them
//! through `sim::runner`'s deterministic-parallel primitives; the CLI
//! (`crate::cli`) and the thin `eNN_*` binaries are fronts over that
//! one code path.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::sweep::cell::{CellData, CellExecutor, CellId, CellScope};

/// Replication profile: how much Monte Carlo effort a run spends.
///
/// Experiments state their replication budgets *at full effort*; the
/// profile scales them. Statistical tolerances inside experiments are
/// written in terms of standard errors, so they widen automatically as
/// budgets shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Profile {
    /// Tiny budgets (full/200, floor 50): exercises every code path in
    /// seconds. Claim checks are recorded but *not* enforced — at this
    /// effort the statistical ones are pure noise.
    Smoke,
    /// Reduced budgets (full/10, floor 400): the CI profile. All claim
    /// checks are enforced.
    Fast,
    /// The paper-faithful budgets. All claim checks are enforced.
    #[default]
    Full,
}

impl Profile {
    /// Scales a full-effort replication budget down to this profile.
    pub fn replications(self, full: u64) -> u64 {
        match self {
            Profile::Smoke => full.min((full / 200).max(50)),
            Profile::Fast => full.min((full / 10).max(400)),
            Profile::Full => full,
        }
    }

    /// Whether failed claim checks fail the run.
    pub fn enforces_checks(self) -> bool {
        !matches!(self, Profile::Smoke)
    }

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Fast => "fast",
            Profile::Full => "full",
        }
    }

    /// The inverse of [`Profile::name`]: resolves the CLI/wire
    /// spelling, `None` for anything else.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Profile::Smoke),
            "fast" => Some(Profile::Fast),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }
}

/// One reproduction claim verified during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// What was checked (shown in reports and result files).
    pub label: String,
    /// Whether it held.
    pub passed: bool,
}

/// Axis scale of a declared figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// A linear axis.
    #[default]
    Linear,
    /// A base-10 logarithmic axis. Non-positive values cannot be placed
    /// and are skipped by the renderer.
    Log,
}

/// One plotted series of a [`FigureSpec`]: which table column carries
/// the y values, how the series is labelled, and (optionally) which
/// column carries its Monte Carlo standard error and which rows belong
/// to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesSpec {
    /// Legend label.
    pub label: &'static str,
    /// Header of the column holding the y values.
    pub y: &'static str,
    /// Header of the column holding the standard error of `y`, drawn as
    /// a ±2·SE confidence band around the line.
    pub se: Option<&'static str>,
    /// Row filter `(column, value)`: the series uses only rows whose
    /// `column` cell equals `value` exactly. Lets one long-format table
    /// carry several series (per world, per regime, per grid level).
    pub filter: Option<(&'static str, &'static str)>,
}

impl SeriesSpec {
    /// A plain series: `label`, drawn from column `y`, no band, all rows.
    pub const fn new(label: &'static str, y: &'static str) -> Self {
        SeriesSpec {
            label,
            y,
            se: None,
            filter: None,
        }
    }

    /// The same series with a ±2·SE band read from column `se`.
    pub const fn band(mut self, se: &'static str) -> Self {
        self.se = Some(se);
        self
    }

    /// The same series restricted to rows where `column` equals `value`.
    pub const fn only(mut self, column: &'static str, value: &'static str) -> Self {
        self.filter = Some((column, value));
        self
    }
}

/// A declared figure: how one of an experiment's emitted tables is
/// plotted in the reproduction report.
///
/// The declaration is pure metadata — the `book` module resolves it
/// against the recorded table (by index), extracts `(x, y)` points per
/// series, and hands them to the `render` module. Cells that do not
/// parse as numbers (after stripping a leading identifier prefix such
/// as the `x` of demand ids) are skipped, so tables may freely mix
/// plottable and narrative columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigureSpec {
    /// Index into the experiment's emitted tables.
    pub table: usize,
    /// Figure caption (shown under the plot).
    pub caption: &'static str,
    /// Header of the column holding the x values.
    pub x: &'static str,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The plotted series, in palette order.
    pub series: &'static [SeriesSpec],
}

impl FigureSpec {
    /// A linear-scaled figure over table `table` with `x` on the x axis.
    pub const fn new(
        table: usize,
        caption: &'static str,
        x: &'static str,
        series: &'static [SeriesSpec],
    ) -> Self {
        FigureSpec {
            table,
            caption,
            x,
            x_label: x,
            y_label: "value",
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series,
        }
    }

    /// The same figure with explicit axis labels.
    pub const fn labels(mut self, x_label: &'static str, y_label: &'static str) -> Self {
        self.x_label = x_label;
        self.y_label = y_label;
        self
    }

    /// The same figure with a logarithmic y axis.
    pub const fn log_y(mut self) -> Self {
        self.y_scale = Scale::Log;
        self
    }

    /// The same figure with a logarithmic x axis.
    pub const fn log_x(mut self) -> Self {
        self.x_scale = Scale::Log;
        self
    }
}

/// The declarative description of one experiment.
///
/// Everything here is static metadata except `run`, which executes the
/// experiment against a [`RunContext`].
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Ordinal, 1–18.
    pub id: u8,
    /// Short handle accepted by the CLI (`"e01"`).
    pub slug: &'static str,
    /// Binary / result-file name (`"e01_el_model"`).
    pub name: &'static str,
    /// One-line human title.
    pub title: &'static str,
    /// The paper result(s) reproduced (`"eqs (6)-(7)"`).
    pub paper_ref: &'static str,
    /// The claim the run re-verifies.
    pub claim: &'static str,
    /// Human description of the sweep grid.
    pub sweep: &'static str,
    /// Total Monte Carlo replication budget at `--full` effort (`0` for
    /// purely exact/enumerative experiments).
    pub full_replications: u64,
    /// How the emitted tables are plotted in the reproduction report
    /// (`diversim report`). Indices refer to the tables in emission
    /// order; an empty slice renders a chapter without figures.
    pub figures: &'static [FigureSpec],
    /// Executes the experiment, recording tables and checks.
    pub run: fn(&mut RunContext),
}

/// Mutable state threaded through one experiment execution: the
/// profile and thread count in, tables and claim checks out.
#[derive(Debug)]
pub struct RunContext {
    profile: Profile,
    threads: usize,
    quiet: bool,
    experiment: &'static str,
    cells: Option<Box<dyn CellExecutor>>,
    tables: Vec<Table>,
    table_stems: Vec<String>,
    checks: Vec<Check>,
}

impl RunContext {
    /// Creates a context for one run. Cells compute inline (no
    /// executor) — the `diversim run` behaviour.
    pub fn new(profile: Profile, threads: usize, quiet: bool) -> Self {
        Self::for_experiment("", profile, threads, quiet, None)
    }

    /// Creates a context that attributes declared cells to
    /// `experiment` and routes them through `cells` (when given);
    /// `None` computes every cell inline.
    pub fn for_experiment(
        experiment: &'static str,
        profile: Profile,
        threads: usize,
        quiet: bool,
        cells: Option<Box<dyn CellExecutor>>,
    ) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        RunContext {
            profile,
            threads,
            quiet,
            experiment,
            cells,
            tables: Vec::new(),
            table_stems: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// The active replication profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Worker threads available to `sim::runner` calls.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Scales a full-effort replication budget to the active profile.
    pub fn replications(&self, full: u64) -> u64 {
        self.profile.replications(full)
    }

    /// Declares one **cell** — the shardable, cacheable unit of a
    /// sweep — and returns its payload.
    ///
    /// `key` canonically encodes the sweep point (world, regime, grid
    /// coordinates, replication budget, root seed) in `k=v|k=v` form;
    /// together with the experiment name and profile it is the cell's
    /// complete identity (see [`CellId`]). `compute` must be a pure
    /// function of that identity and the [`CellScope`] it receives,
    /// returning a flat vector of finite values; tables, checks and
    /// narration must be derived from the returned payload *outside*
    /// the closure.
    ///
    /// Without an installed executor (`diversim run`) the closure runs
    /// inline. Under `diversim sweep` the executor may instead serve
    /// the payload from the content-addressed cell store, or skip the
    /// cell entirely when it belongs to another shard — the returned
    /// [`CellData`] then yields `0.0` placeholders and the sweep engine
    /// discards everything derived from them.
    pub fn cell(
        &mut self,
        key: impl Into<String>,
        compute: impl FnOnce(&CellScope) -> Vec<f64>,
    ) -> CellData {
        let id = CellId::new(self.experiment, self.profile, key);
        let scope = CellScope::new(&id, self.threads);
        match self.cells.as_mut() {
            None => CellData::live(compute(&scope)),
            Some(executor) => {
                let mut once = Some(compute);
                let values = executor.execute(&id, &scope, &mut |s| {
                    (once.take().expect("cell compute closure called twice"))(s)
                });
                match values {
                    Some(values) => CellData::live(values),
                    None => CellData::skipped(),
                }
            }
        }
    }

    /// Prints a progress/narrative line unless the run is quiet.
    pub fn note(&self, message: impl AsRef<str>) {
        if !self.quiet {
            println!("{}", message.as_ref());
        }
    }

    /// Records a finished table under a result-file stem, printing it
    /// unless quiet and mirroring it to `DIVERSIM_TSV_DIR` if set (the
    /// legacy per-table plotting hook).
    pub fn emit(&mut self, table: Table, file_stem: &str) {
        if !self.quiet {
            println!("{}", table.render());
        }
        table.mirror_tsv(file_stem);
        self.table_stems.push(file_stem.to_string());
        self.tables.push(table);
    }

    /// Records one reproduction-claim check.
    ///
    /// Failures are collected, not thrown: the engine fails the run
    /// afterwards when the profile enforces checks, and the result
    /// files record every check either way.
    pub fn check(&mut self, passed: bool, label: impl Into<String>) {
        let label = label.into();
        if !passed && !self.quiet {
            eprintln!("CHECK FAILED: {label}");
        }
        self.checks.push(Check { passed, label });
    }

    /// The tables recorded so far.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The per-table result-file stems (parallel to [`tables`](Self::tables)).
    pub fn table_stems(&self) -> &[String] {
        &self.table_stems
    }

    /// The checks recorded so far.
    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    /// Labels of the failed checks.
    pub fn failed_checks(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| c.label.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_scaling_is_monotone_and_floored() {
        assert_eq!(Profile::Full.replications(60_000), 60_000);
        assert_eq!(Profile::Fast.replications(60_000), 6_000);
        assert_eq!(Profile::Smoke.replications(60_000), 300);
        // Floors kick in for small budgets…
        assert_eq!(Profile::Fast.replications(2_000), 400);
        assert_eq!(Profile::Smoke.replications(2_000), 50);
        // …but never exceed the full budget.
        assert_eq!(Profile::Fast.replications(100), 100);
        assert_eq!(Profile::Smoke.replications(30), 30);
    }

    #[test]
    fn profile_names_and_enforcement() {
        assert_eq!(Profile::Smoke.name(), "smoke");
        assert_eq!(Profile::Fast.name(), "fast");
        assert_eq!(Profile::Full.name(), "full");
        assert!(!Profile::Smoke.enforces_checks());
        assert!(Profile::Fast.enforces_checks());
        assert!(Profile::Full.enforces_checks());
        assert_eq!(Profile::default(), Profile::Full);
    }

    #[test]
    fn context_collects_tables_and_checks() {
        let mut ctx = RunContext::new(Profile::Smoke, 2, true);
        assert_eq!(ctx.replications(10_000), 50);
        assert_eq!(ctx.threads(), 2);
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into()]);
        ctx.emit(t, "stem");
        ctx.check(true, "holds");
        ctx.check(false, "broken");
        assert_eq!(ctx.tables().len(), 1);
        assert_eq!(ctx.table_stems(), ["stem".to_string()]);
        assert_eq!(ctx.checks().len(), 2);
        assert_eq!(ctx.failed_checks(), vec!["broken"]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_context_panics() {
        let _ = RunContext::new(Profile::Full, 0, true);
    }

    #[test]
    fn cells_compute_inline_without_an_executor() {
        let mut ctx = RunContext::new(Profile::Fast, 3, true);
        let cell = ctx.cell("k=1", |scope| {
            assert_eq!(scope.threads(), 3);
            vec![1.0, 2.0]
        });
        assert!(cell.is_live());
        assert_eq!(cell.values(), &[1.0, 2.0]);
    }

    /// An executor that skips every other cell and records what it saw.
    #[derive(Debug, Default)]
    struct EveryOther {
        seen: Vec<String>,
    }

    impl CellExecutor for EveryOther {
        fn execute(
            &mut self,
            id: &CellId,
            scope: &CellScope,
            compute: &mut dyn FnMut(&CellScope) -> Vec<f64>,
        ) -> Option<Vec<f64>> {
            self.seen.push(id.canonical());
            if self.seen.len().is_multiple_of(2) {
                None
            } else {
                Some(compute(scope))
            }
        }
    }

    #[test]
    fn executor_sees_full_identity_and_can_skip() {
        let mut ctx = RunContext::for_experiment(
            "e99_demo",
            Profile::Smoke,
            1,
            true,
            Some(Box::<EveryOther>::default()),
        );
        let first = ctx.cell("k=a", |_| vec![7.0]);
        let second = ctx.cell("k=b", |_| panic!("skipped cells must not compute"));
        assert!(first.is_live());
        assert_eq!(first.get(0), 7.0);
        assert!(!second.is_live());
        assert_eq!(second.get(0), 0.0);
    }

    #[test]
    fn figure_metadata_const_builders_compose() {
        const MC: SeriesSpec = SeriesSpec::new("MC joint", "MC joint")
            .band("MC se")
            .only("world", "mirrored");
        const FIG: FigureSpec = FigureSpec::new(1, "caption", "n", &[MC])
            .labels("suite size n", "system pfd")
            .log_y();
        assert_eq!(MC.label, "MC joint");
        assert_eq!(MC.se, Some("MC se"));
        assert_eq!(MC.filter, Some(("world", "mirrored")));
        assert_eq!(FIG.table, 1);
        assert_eq!(FIG.x, "n");
        assert_eq!(FIG.x_label, "suite size n");
        assert_eq!(FIG.y_label, "system pfd");
        assert_eq!(FIG.x_scale, Scale::Linear);
        assert_eq!(FIG.y_scale, Scale::Log);
        // Defaults: axis labels fall back to the x column / "value".
        const PLAIN: FigureSpec = FigureSpec::new(0, "c", "x", &[]);
        assert_eq!(PLAIN.x_label, "x");
        assert_eq!(PLAIN.y_label, "value");
        assert_eq!(PLAIN.y_scale, Scale::Linear);
        assert_eq!(Scale::default(), Scale::Linear);
    }
}
