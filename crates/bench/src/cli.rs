//! The `diversim` command-line interface, and the entry point shared by
//! the thin `eNN_*` experiment binaries.
//!
//! ```console
//! $ diversim list
//! $ diversim run e01
//! $ diversim run --all --fast --threads 4 --out results/
//! $ diversim sweep --all --fast --shard 0/2 --cells results/cells
//! $ diversim sweep --all --fast --resume --out results/ --verify
//! $ diversim report --run --smoke
//! $ diversim report --results results/
//! $ diversim docs --write
//! ```
//!
//! Exit codes: `0` success, `1` at least one reproduction check failed,
//! `2` usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use diversim_sim::runner::default_threads;

use crate::book::{self, ResultDoc};
use crate::engine::{run_experiment, write_outcome, RunOutcome};
use crate::registry;
use crate::report::Table;
use crate::serve::server::{serve_stdio, serve_tcp};
use crate::serve::service::{execute_experiment, EvaluationService};
use crate::serve::ExperimentRequest;
use crate::spec::{ExperimentSpec, Profile};
use crate::sweep::{
    render_scaling_json, sweep_experiment, verify_against_direct_run, CellStore, Shard,
    SweepOptions, SweepRun, SweepStats,
};

const USAGE: &str = "diversim — unified driver for the 20 Popov & Littlewood reproductions

USAGE:
    diversim list
    diversim run [EXPERIMENT...] [--all] [--smoke|--fast|--full]
                 [--threads N] [--out DIR] [--quiet]
    diversim sweep [EXPERIMENT...] [--all] [--smoke|--fast|--full]
                   [--threads N] [--cells DIR] [--out DIR]
                   [--shard I/N] [--resume] [--verify]
                   [--bench-out FILE] [--quiet]
    diversim serve [--stdio | --tcp ADDR] [--threads N] [--cache N]
                   [--quiet]
    diversim report [--run | --results DIR] [--smoke|--fast|--full]
                    [--threads N] [--out DIR] [--quiet]
    diversim docs [--write]
    diversim help

EXPERIMENT may be a slug (e01), a binary name (e01_el_model) or an id (1).

OPTIONS:
    --all          run every registered experiment
    --smoke        tiny replication budgets; checks recorded, not enforced
    --fast         1/10 replication budgets (the CI profile)
    --full         paper-faithful replication budgets [default]
    --threads N    worker threads (default: available CPUs, capped at 16)
    --out DIR      run: write one JSON and one CSV result file per experiment
                   report: book output root (default: the workspace root,
                   i.e. the committed REPORT.md + report/ book)
    --quiet        suppress experiment narration and tables

`sweep` runs experiments cell-by-cell against a content-addressed cell
store (--cells, default <out>/cells or results/cells). Unsharded
sweeps merge to the exact bytes `diversim run` emits; --shard I/N
computes only this shard's cells (no merged output — the store is the
product); --resume serves verified cached cells and recomputes only
missing or corrupt ones, printing a cache-hit summary; --verify
byte-compares every merged result against a direct engine run;
--bench-out FILE times one cold and one warm pass and writes the
sweep-scaling trajectory JSON.

`serve` answers diversim/v1 evaluation requests (one JSON object per
line; see README \"Serving\") on stdin/stdout (--stdio, the default) or
a TCP listener (--tcp HOST:PORT). --cache bounds the LRU of prepared
worlds [default: 8]. Responses are pure functions of their requests:
byte-identical for any --threads count, connection count or arrival
order.

`report` renders the reproduction book — REPORT.md plus one figure-rich
chapter per experiment under report/ — either by re-running every
registered experiment (--run, at the chosen profile) or from the result
files a previous `diversim run --all --out DIR` wrote (--results DIR,
the default, reading results/). The book is byte-identical for any
--threads count; the committed book uses `--run --smoke`.
";

/// The flags `diversim run` and `diversim report` share. Values stay
/// `Option` so each command can apply its own defaults and reject
/// flags that are meaningless in its mode.
#[derive(Debug, Clone, Default)]
struct CommonFlags {
    profile: Option<Profile>,
    threads: Option<usize>,
    out: Option<PathBuf>,
    quiet: bool,
}

impl CommonFlags {
    /// Consumes `arg` (pulling values from `it` as needed) if it is one
    /// of the shared flags; returns `Ok(false)` if it is not.
    fn consume(
        &mut self,
        arg: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match arg {
            "--smoke" => self.profile = Some(Profile::Smoke),
            "--fast" => self.profile = Some(Profile::Fast),
            "--full" => self.profile = Some(Profile::Full),
            "--quiet" => self.quiet = true,
            "--threads" => {
                let value = it.next().ok_or("--threads needs a value")?;
                self.threads = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid thread count: {value}"))?,
                );
            }
            "--out" => {
                let value = it.next().ok_or("--out needs a directory")?;
                self.out = Some(PathBuf::from(value));
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Options shared by `diversim run` and the standalone binaries.
#[derive(Debug, Clone)]
struct RunOptions {
    profile: Profile,
    threads: usize,
    out: Option<PathBuf>,
    quiet: bool,
}

fn parse_run_args(args: &[String]) -> Result<(Vec<String>, bool, RunOptions), String> {
    let mut keys = Vec::new();
    let mut all = false;
    let mut flags = CommonFlags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if flags.consume(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--all" => all = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            key => keys.push(key.to_string()),
        }
    }
    let opts = RunOptions {
        profile: flags.profile.unwrap_or(Profile::Full),
        threads: flags.threads.unwrap_or_else(default_threads),
        out: flags.out,
        quiet: flags.quiet,
    };
    Ok((keys, all, opts))
}

/// Resolves CLI experiment keys into the typed requests the engine
/// accepts — the same [`ExperimentRequest`] values the serve protocol
/// constructs, so CLI and wire enter through one validated surface.
fn resolve(keys: &[String], all: bool, profile: Profile) -> Result<Vec<ExperimentRequest>, String> {
    let request = |key: &str| ExperimentRequest {
        key: key.to_string(),
        profile,
    };
    if all {
        if !keys.is_empty() {
            return Err("pass either experiment names or --all, not both".into());
        }
        return Ok(registry::all().iter().map(|s| request(s.slug)).collect());
    }
    if keys.is_empty() {
        return Err("specify at least one experiment, or --all (see `diversim list`)".into());
    }
    keys.iter()
        .map(|key| {
            registry::find(key)
                .map(|spec| request(spec.slug))
                .ok_or_else(|| format!("unknown experiment: {key} (see `diversim list`)"))
        })
        .collect()
}

fn run_requests(requests: &[ExperimentRequest], opts: &RunOptions) -> ExitCode {
    let started = Instant::now();
    let mut outcomes: Vec<RunOutcome> = Vec::with_capacity(requests.len());
    for (position, request) in requests.iter().enumerate() {
        if !opts.quiet && requests.len() > 1 {
            println!(
                "━━━ {} ({}/{}) ━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━",
                request.key,
                position + 1,
                requests.len()
            );
        }
        let outcome = match execute_experiment(request, opts.threads, opts.quiet) {
            Ok(outcome) => outcome,
            Err(e) => {
                // Unreachable after `resolve`, but the typed surface
                // reports it properly for any future caller.
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(dir) = &opts.out {
            match write_outcome(dir, &outcome) {
                Ok((json_path, csv_path)) => {
                    if !opts.quiet {
                        println!("results: {} + {}", json_path.display(), csv_path.display());
                    }
                }
                Err(e) => {
                    eprintln!(
                        "error: could not write results for {}: {e}",
                        outcome.spec.name
                    );
                    return ExitCode::from(2);
                }
            }
        }
        outcomes.push(outcome);
    }

    let mut summary = Table::new(
        &format!(
            "campaign summary ({} profile, {} threads)",
            opts.profile.name(),
            opts.threads
        ),
        &["experiment", "checks", "failed", "status", "wall"],
    );
    let mut failed_experiments = 0;
    for outcome in &outcomes {
        let failed = outcome.checks.iter().filter(|c| !c.passed).count();
        if !outcome.passed {
            failed_experiments += 1;
        }
        summary.row(&[
            outcome.spec.name.to_string(),
            outcome.checks.len().to_string(),
            failed.to_string(),
            if outcome.passed { "ok" } else { "FAILED" }.to_string(),
            format!("{:.2}s", outcome.wall.as_secs_f64()),
        ]);
    }
    println!("{}", summary.render());
    println!(
        "{} experiment(s), {} failed, {:.2}s total",
        outcomes.len(),
        failed_experiments,
        started.elapsed().as_secs_f64()
    );
    for outcome in &outcomes {
        for check in outcome.checks.iter().filter(|c| !c.passed) {
            eprintln!("FAILED [{}]: {}", outcome.spec.name, check.label);
        }
    }
    if failed_experiments > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Options of `diversim sweep`.
#[derive(Debug, Clone)]
struct SweepCliOptions {
    profile: Profile,
    threads: usize,
    /// The cell store directory.
    cells: PathBuf,
    /// Where merged result files go (unsharded passes only).
    out: Option<PathBuf>,
    shard: Option<Shard>,
    resume: bool,
    verify: bool,
    /// Write the cold/warm sweep-scaling trajectory here.
    bench_out: Option<PathBuf>,
    quiet: bool,
}

fn parse_sweep_args(args: &[String]) -> Result<(Vec<String>, bool, SweepCliOptions), String> {
    let mut keys = Vec::new();
    let mut all = false;
    let mut cells: Option<PathBuf> = None;
    let mut shard = None;
    let mut resume = false;
    let mut verify = false;
    let mut bench_out: Option<PathBuf> = None;
    let mut flags = CommonFlags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if flags.consume(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--all" => all = true,
            "--cells" => {
                let value = it.next().ok_or("--cells needs a directory")?;
                cells = Some(PathBuf::from(value));
            }
            "--shard" => {
                let value = it.next().ok_or("--shard needs i/n (e.g. 0/2)")?;
                shard = Some(Shard::parse(value)?);
            }
            "--resume" => resume = true,
            "--verify" => verify = true,
            "--bench-out" => {
                let value = it.next().ok_or("--bench-out needs a file path")?;
                bench_out = Some(PathBuf::from(value));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown sweep flag: {flag}")),
            key => keys.push(key.to_string()),
        }
    }
    if shard.is_some() {
        if flags.out.is_some() {
            return Err("--shard passes produce no merged output; drop --out".into());
        }
        if verify {
            return Err("--verify compares merged output and needs an unsharded pass".into());
        }
        if bench_out.is_some() {
            return Err("--bench-out times full passes and needs an unsharded sweep".into());
        }
    }
    if bench_out.is_some() && resume {
        return Err("--bench-out runs its own cold and warm passes; drop --resume".into());
    }
    let cells = cells.unwrap_or_else(|| {
        flags
            .out
            .as_ref()
            .map(|out| out.join("cells"))
            .unwrap_or_else(|| PathBuf::from("results/cells"))
    });
    Ok((
        keys,
        all,
        SweepCliOptions {
            profile: flags.profile.unwrap_or(Profile::Full),
            threads: flags.threads.unwrap_or_else(default_threads),
            cells,
            out: flags.out,
            shard,
            resume,
            verify,
            bench_out,
            quiet: flags.quiet,
        },
    ))
}

/// Runs one sweep pass over `specs`, printing per-experiment cache
/// accounting unless `opts.quiet`. Returns the runs plus the
/// accumulated stats.
fn sweep_pass(
    specs: &[&'static ExperimentSpec],
    store: &CellStore,
    opts: &SweepOptions,
) -> (Vec<SweepRun>, SweepStats) {
    let mut runs = Vec::with_capacity(specs.len());
    let mut total = SweepStats::default();
    for spec in specs {
        let run = sweep_experiment(spec, store, opts);
        if !opts.quiet {
            println!("{}: {}", spec.name, run.stats.summary());
        }
        total.add(run.stats);
        runs.push(run);
    }
    (runs, total)
}

fn sweep(args: &[String]) -> ExitCode {
    let parsed = parse_sweep_args(args).and_then(|(keys, all, opts)| {
        resolve(&keys, all, opts.profile).map(|requests| (requests, opts))
    });
    let (requests, opts) = match parsed {
        Ok(ok) => ok,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let specs: Vec<&'static ExperimentSpec> = requests
        .iter()
        .map(|r| registry::find(&r.key).expect("resolve returns registered keys"))
        .collect();
    let store = CellStore::new(&opts.cells);
    let started = Instant::now();

    if let Some(bench_path) = &opts.bench_out {
        return sweep_bench(&specs, &store, &opts, bench_path);
    }

    let pass = SweepOptions {
        profile: opts.profile,
        threads: opts.threads,
        shard: opts.shard,
        resume: opts.resume,
        quiet: opts.quiet,
    };
    let (runs, total) = sweep_pass(&specs, &store, &pass);
    println!(
        "sweep [{}{}]: {} ({:.2}s)",
        opts.profile.name(),
        opts.shard
            .map(|s| format!(", shard {}/{}", s.index, s.count))
            .unwrap_or_default(),
        total.summary(),
        started.elapsed().as_secs_f64()
    );
    if opts.shard.is_some() {
        // Sharded passes only populate the store; merged outputs (and
        // check enforcement) belong to the unsharded merge pass.
        println!("cells: {}", store.dir().display());
        return ExitCode::SUCCESS;
    }

    let mut failed_experiments = 0;
    let mut drifted = 0;
    for run in &runs {
        if let Some(dir) = &opts.out {
            if let Err(e) = write_outcome(dir, &run.outcome) {
                eprintln!(
                    "error: could not write results for {}: {e}",
                    run.outcome.spec.name
                );
                return ExitCode::from(2);
            }
        }
        if !run.outcome.passed {
            failed_experiments += 1;
            for check in run.outcome.checks.iter().filter(|c| !c.passed) {
                eprintln!("FAILED [{}]: {}", run.outcome.spec.name, check.label);
            }
        }
        if opts.verify {
            match verify_against_direct_run(run) {
                Ok(()) => {
                    if !opts.quiet {
                        println!(
                            "verified {}: byte-identical to a direct run",
                            run.outcome.spec.name
                        );
                    }
                }
                Err(message) => {
                    drifted += 1;
                    eprintln!("DRIFT: {message}");
                }
            }
        }
    }
    if let Some(dir) = &opts.out {
        println!("results: {}", dir.display());
    }
    if drifted > 0 {
        eprintln!("{drifted} experiment(s) drifted from the direct engine");
        return ExitCode::from(1);
    }
    if failed_experiments > 0 {
        eprintln!("{failed_experiments} experiment(s) failed enforced checks");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// `--bench-out`: one cold pass (compute and persist every cell), one
/// warm `--resume` pass (everything cached), byte-equality between the
/// two, then the sweep-scaling trajectory JSON.
fn sweep_bench(
    specs: &[&'static ExperimentSpec],
    store: &CellStore,
    opts: &SweepCliOptions,
    bench_path: &Path,
) -> ExitCode {
    let pass = |resume: bool| SweepOptions {
        profile: opts.profile,
        threads: opts.threads,
        shard: None,
        resume,
        quiet: true,
    };
    let cold_started = Instant::now();
    let (cold_runs, cold) = sweep_pass(specs, store, &pass(false));
    let cold_ns = cold_started.elapsed().as_nanos();
    let warm_started = Instant::now();
    let (warm_runs, warm) = sweep_pass(specs, store, &pass(true));
    let warm_ns = warm_started.elapsed().as_nanos();

    for (a, b) in cold_runs.iter().zip(&warm_runs) {
        if a.outcome.json != b.outcome.json || a.outcome.csv != b.outcome.csv {
            eprintln!(
                "DRIFT: {}: warm-cache pass is not byte-identical to the cold pass",
                a.outcome.spec.name
            );
            return ExitCode::from(1);
        }
    }
    if let Some(dir) = &opts.out {
        for run in &warm_runs {
            if let Err(e) = write_outcome(dir, &run.outcome) {
                eprintln!(
                    "error: could not write results for {}: {e}",
                    run.outcome.spec.name
                );
                return ExitCode::from(2);
            }
        }
    }
    let doc = render_scaling_json(
        opts.profile,
        opts.threads,
        specs.len() as u64,
        cold_ns,
        warm_ns,
        cold,
        warm,
    );
    if let Err(e) = std::fs::write(bench_path, &doc) {
        eprintln!("error: could not write {}: {e}", bench_path.display());
        return ExitCode::from(2);
    }
    println!(
        "sweep bench [{}]: cold {:.2}s ({} cells computed), warm {:.2}s ({} cached), {:.1}x",
        opts.profile.name(),
        cold_ns as f64 / 1e9,
        cold.computed,
        warm_ns as f64 / 1e9,
        warm.hits,
        cold_ns as f64 / (warm_ns as f64).max(1.0)
    );
    println!("wrote {}", bench_path.display());
    ExitCode::SUCCESS
}

/// Options of `diversim serve`.
#[derive(Debug, Clone, PartialEq)]
struct ServeOptions {
    /// `None` serves stdin/stdout; `Some(addr)` binds a TCP listener.
    tcp: Option<String>,
    threads: usize,
    cache: usize,
    quiet: bool,
}

fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut tcp = None;
    let mut stdio = false;
    let mut threads = None;
    let mut cache = 8usize;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--tcp" => {
                let value = it.next().ok_or("--tcp needs an address (HOST:PORT)")?;
                tcp = Some(value.clone());
            }
            "--threads" => {
                let value = it.next().ok_or("--threads needs a value")?;
                threads = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("invalid thread count: {value}"))?,
                );
            }
            "--cache" => {
                let value = it.next().ok_or("--cache needs a value")?;
                cache = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid cache capacity: {value}"))?;
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown serve argument: {other}")),
        }
    }
    if stdio && tcp.is_some() {
        return Err("pass either --stdio or --tcp ADDR, not both".into());
    }
    Ok(ServeOptions {
        tcp,
        threads: threads.unwrap_or_else(default_threads),
        cache,
        quiet,
    })
}

fn serve(args: &[String]) -> ExitCode {
    let opts = match parse_serve_args(args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let service = std::sync::Arc::new(EvaluationService::new(opts.threads, opts.cache));
    let served = match &opts.tcp {
        Some(addr) => serve_tcp(service, addr.as_str(), opts.quiet),
        None => serve_stdio(&service),
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn list() -> ExitCode {
    let mut table = Table::new(
        "registered experiments",
        &["slug", "binary", "paper result", "title", "full MC budget"],
    );
    for spec in registry::all() {
        table.row(&[
            spec.slug.to_string(),
            spec.name.to_string(),
            spec.paper_ref.to_string(),
            spec.title.to_string(),
            if spec.full_replications == 0 {
                "exact".to_string()
            } else {
                spec.full_replications.to_string()
            },
        ]);
    }
    println!("{}", table.render());
    println!("run one with `diversim run <slug>`; all with `diversim run --all --fast`.");
    ExitCode::SUCCESS
}

/// Options of `diversim report`.
#[derive(Debug, Clone)]
struct ReportOptions {
    /// Re-run every experiment instead of loading result files.
    run: bool,
    /// Where result files are loaded from when not re-running.
    results: PathBuf,
    profile: Option<Profile>,
    threads: usize,
    /// Book output root; `None` means the workspace root (the committed
    /// book).
    out: Option<PathBuf>,
    quiet: bool,
}

fn parse_report_args(args: &[String]) -> Result<ReportOptions, String> {
    let mut run = false;
    let mut results: Option<PathBuf> = None;
    let mut flags = CommonFlags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if flags.consume(arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--run" => run = true,
            "--results" => {
                let value = it.next().ok_or("--results needs a directory")?;
                results = Some(PathBuf::from(value));
            }
            other => return Err(format!("unknown report argument: {other}")),
        }
    }
    if run && results.is_some() {
        return Err("pass either --run or --results DIR, not both".into());
    }
    if !run && flags.profile.is_some() {
        return Err("--smoke/--fast/--full select the re-run effort and require --run".into());
    }
    if !run && flags.threads.is_some() {
        return Err("--threads selects the re-run parallelism and requires --run".into());
    }
    Ok(ReportOptions {
        run,
        results: results.unwrap_or_else(|| PathBuf::from("results")),
        profile: flags.profile,
        threads: flags.threads.unwrap_or_else(default_threads),
        out: flags.out,
        quiet: flags.quiet,
    })
}

/// The workspace root (two levels above this crate's manifest), so
/// `diversim report` regenerates the committed book from any cwd.
fn workspace_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn load_or_run_docs(opts: &ReportOptions) -> Result<Vec<ResultDoc>, String> {
    let mut docs = Vec::new();
    for spec in registry::all() {
        let doc = if opts.run {
            if !opts.quiet {
                println!("running {} …", spec.name);
            }
            let outcome =
                run_experiment(spec, opts.profile.unwrap_or_default(), opts.threads, true);
            ResultDoc::from_outcome(&outcome).map_err(|e| e.to_string())?
        } else {
            let path = opts.results.join(format!("{}.json", spec.name));
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "could not read {}: {e}\n(write result files with `diversim run --all --out {}`, \
                     or re-run the experiments with `diversim report --run`)",
                    path.display(),
                    opts.results.display()
                )
            })?;
            ResultDoc::from_json(&text, &path.display().to_string()).map_err(|e| e.to_string())?
        };
        docs.push(doc);
    }
    Ok(docs)
}

fn write_book(root: &Path, book: &book::Book) -> std::io::Result<()> {
    std::fs::create_dir_all(root.join(book::CHAPTER_DIR))?;
    std::fs::write(root.join(book::REPORT_FILE), &book.report)?;
    for chapter in &book.chapters {
        std::fs::write(
            root.join(book::CHAPTER_DIR).join(&chapter.file_name),
            &chapter.markdown,
        )?;
    }
    Ok(())
}

fn report(args: &[String]) -> ExitCode {
    let opts = match parse_report_args(args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let started = Instant::now();
    let docs = match load_or_run_docs(&opts) {
        Ok(docs) => docs,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let book = match book::render_book(&docs) {
        Ok(book) => book,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let root = opts.out.clone().unwrap_or_else(workspace_root);
    if let Err(e) = write_book(&root, &book) {
        eprintln!(
            "error: could not write the book under {}: {e}",
            root.display()
        );
        return ExitCode::from(2);
    }
    let total: usize = docs.iter().map(|d| d.checks.len()).sum();
    let failed: usize = docs.iter().map(|d| d.failed_checks()).sum();
    let failed_experiments = docs
        .iter()
        .filter(|d| d.failed_checks() > 0 && d.enforces_checks())
        .count();
    if !opts.quiet {
        println!(
            "wrote {} + {} chapter(s) under {}",
            book::REPORT_FILE,
            book.chapters.len(),
            root.display()
        );
        println!(
            "{}/{} reproduction checks passed; wall-clock {:.2}s (stdout only — the book itself is \
             byte-deterministic)",
            total - failed,
            total,
            started.elapsed().as_secs_f64()
        );
    }
    if failed_experiments > 0 {
        eprintln!("{failed_experiments} experiment(s) failed enforced checks");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn docs(args: &[String]) -> ExitCode {
    let md = registry::experiments_md();
    match args {
        [] => {
            print!("{md}");
            ExitCode::SUCCESS
        }
        [flag] if flag == "--write" => {
            // Anchor at the workspace root (two levels above this
            // crate's manifest) so the command works from any cwd.
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
            if let Err(e) = std::fs::write(path, &md) {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("wrote {path} ({} bytes)", md.len());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: diversim docs [--write]");
            ExitCode::from(2)
        }
    }
}

/// Entry point of the `diversim` binary.
pub fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first().map(|(cmd, rest)| (cmd.as_str(), rest)) {
        Some(("list", [])) => list(),
        Some(("list", _)) => {
            eprintln!("usage: diversim list");
            ExitCode::from(2)
        }
        Some(("run", rest)) => match parse_run_args(rest).and_then(|(keys, all, opts)| {
            resolve(&keys, all, opts.profile).map(|requests| (requests, opts))
        }) {
            Ok((requests, opts)) => run_requests(&requests, &opts),
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        },
        Some(("sweep", rest)) => sweep(rest),
        Some(("serve", rest)) => serve(rest),
        Some(("report", rest)) => report(rest),
        Some(("docs", rest)) => docs(rest),
        Some(("help", _)) | Some(("--help", _)) | Some(("-h", _)) | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some((other, _)) => {
            eprintln!("error: unknown command: {other}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Entry point shared by the thin `eNN_*` binaries: runs one experiment
/// (at `--full` effort unless flags say otherwise), forwarding any CLI
/// flags of `diversim run`.
pub fn experiment_binary_main(key: &str) -> ExitCode {
    let spec = registry::find(key).expect("binary key must be registered");
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_run_args(&args) {
        Ok((keys, all, opts)) if keys.is_empty() && !all => {
            let request = ExperimentRequest {
                key: spec.slug.to_string(),
                profile: opts.profile,
            };
            run_requests(&[request], &opts)
        }
        Ok(_) => {
            eprintln!(
                "error: {} runs exactly one experiment; use the `diversim` binary to select others",
                spec.name
            );
            ExitCode::from(2)
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_profile_threads_out_and_keys() {
        let (keys, all, opts) = parse_run_args(&strings(&[
            "e01",
            "--fast",
            "--threads",
            "3",
            "--out",
            "r",
            "e02",
        ]))
        .unwrap();
        assert_eq!(keys, ["e01", "e02"]);
        assert!(!all);
        assert_eq!(opts.profile, Profile::Fast);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.out.as_deref(), Some(std::path::Path::new("r")));
        assert!(!opts.quiet);
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse_run_args(&strings(&["--bogus"])).is_err());
        assert!(parse_run_args(&strings(&["--threads"])).is_err());
        assert!(parse_run_args(&strings(&["--threads", "0"])).is_err());
        assert!(parse_run_args(&strings(&["--threads", "x"])).is_err());
        assert!(parse_run_args(&strings(&["--out"])).is_err());
    }

    #[test]
    fn parse_report_args_covers_modes_and_conflicts() {
        let opts = parse_report_args(&strings(&[])).unwrap();
        assert!(!opts.run);
        assert_eq!(opts.results, std::path::PathBuf::from("results"));
        assert_eq!(opts.profile, None);
        assert!(opts.out.is_none());

        let opts = parse_report_args(&strings(&[
            "--run",
            "--smoke",
            "--threads",
            "2",
            "--out",
            "book",
        ]))
        .unwrap();
        assert!(opts.run);
        assert_eq!(opts.profile, Some(Profile::Smoke));
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.out.as_deref(), Some(std::path::Path::new("book")));

        let opts = parse_report_args(&strings(&["--results", "r", "--quiet"])).unwrap();
        assert!(opts.quiet);
        assert_eq!(opts.results, std::path::PathBuf::from("r"));

        assert!(parse_report_args(&strings(&["--run", "--results", "r"])).is_err());
        assert!(
            parse_report_args(&strings(&["--fast"])).is_err(),
            "profile needs --run"
        );
        assert!(
            parse_report_args(&strings(&["--threads", "2"])).is_err(),
            "threads need --run"
        );
        assert!(parse_report_args(&strings(&["--bogus"])).is_err());
        assert!(parse_report_args(&strings(&["--results"])).is_err());
        assert!(parse_report_args(&strings(&["--threads", "0"])).is_err());
    }

    #[test]
    fn resolve_handles_all_and_unknown() {
        assert_eq!(resolve(&[], true, Profile::Full).unwrap().len(), 20);
        assert!(resolve(&strings(&["e01"]), true, Profile::Full).is_err());
        assert!(resolve(&[], false, Profile::Full).is_err());
        assert!(resolve(&strings(&["e99"]), false, Profile::Full).is_err());
        let requests = resolve(&strings(&["e02", "16"]), false, Profile::Fast).unwrap();
        assert_eq!(requests[0].key, "e02");
        assert_eq!(requests[1].key, "e16");
        assert!(requests.iter().all(|r| r.profile == Profile::Fast));
    }

    #[test]
    fn parse_sweep_args_covers_modes_defaults_and_conflicts() {
        let (keys, all, opts) = parse_sweep_args(&strings(&["--all", "--fast"])).unwrap();
        assert!(keys.is_empty());
        assert!(all);
        assert_eq!(opts.profile, Profile::Fast);
        assert_eq!(opts.cells, PathBuf::from("results/cells"));
        assert!(opts.out.is_none() && opts.shard.is_none());
        assert!(!opts.resume && !opts.verify && opts.bench_out.is_none());

        // --cells defaults under --out when not given explicitly.
        let (_, _, opts) = parse_sweep_args(&strings(&["e01", "--out", "r"])).unwrap();
        assert_eq!(opts.cells, PathBuf::from("r/cells"));
        let (_, _, opts) =
            parse_sweep_args(&strings(&["e01", "--out", "r", "--cells", "c"])).unwrap();
        assert_eq!(opts.cells, PathBuf::from("c"));

        let (keys, _, opts) = parse_sweep_args(&strings(&[
            "e01",
            "--shard",
            "1/2",
            "--smoke",
            "--threads",
            "2",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(keys, ["e01"]);
        assert_eq!(opts.shard, Some(Shard { index: 1, count: 2 }));
        assert_eq!((opts.threads, opts.quiet), (2, true));

        let (_, _, opts) = parse_sweep_args(&strings(&["--all", "--resume", "--verify"])).unwrap();
        assert!(opts.resume && opts.verify);

        // Sharded passes have no merged output to write, verify or time.
        assert!(parse_sweep_args(&strings(&["--shard", "0/2", "--out", "r"])).is_err());
        assert!(parse_sweep_args(&strings(&["--shard", "0/2", "--verify"])).is_err());
        assert!(parse_sweep_args(&strings(&["--shard", "0/2", "--bench-out", "b.json"])).is_err());
        assert!(parse_sweep_args(&strings(&["--bench-out", "b.json", "--resume"])).is_err());
        assert!(parse_sweep_args(&strings(&["--shard", "2/2"])).is_err());
        assert!(parse_sweep_args(&strings(&["--shard"])).is_err());
        assert!(parse_sweep_args(&strings(&["--cells"])).is_err());
        assert!(parse_sweep_args(&strings(&["--bench-out"])).is_err());
        assert!(parse_sweep_args(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn parse_serve_args_covers_modes_and_conflicts() {
        let opts = parse_serve_args(&strings(&[])).unwrap();
        assert_eq!(opts.tcp, None);
        assert_eq!(opts.cache, 8);
        assert!(!opts.quiet);

        let opts = parse_serve_args(&strings(&[
            "--tcp",
            "127.0.0.1:7878",
            "--threads",
            "2",
            "--cache",
            "3",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(opts.tcp.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!((opts.threads, opts.cache), (2, 3));
        assert!(opts.quiet);

        assert!(parse_serve_args(&strings(&["--stdio", "--tcp", "x:1"])).is_err());
        assert!(parse_serve_args(&strings(&["--tcp"])).is_err());
        assert!(parse_serve_args(&strings(&["--threads", "0"])).is_err());
        assert!(parse_serve_args(&strings(&["--cache", "0"])).is_err());
        assert!(parse_serve_args(&strings(&["--bogus"])).is_err());
    }
}
