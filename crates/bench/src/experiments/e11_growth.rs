//! E11 — reliability growth of single version vs 1-out-of-2 system
//! (replication of the paper's reference \[5\], Djambazov & Popov ISSRE'95).
//!
//! The paper cites simulation showing "how the reliabilities of the
//! versions and of the system improve as a function of testing effort".
//! The experiment produces those growth curves under both suite regimes,
//! with the diversity gain (version pfd / system pfd) as the headline
//! series: under independent suites diversity is preserved as reliability
//! grows; under the shared suite the gain stagnates.

use diversim_sim::campaign::CampaignRegime;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::medium_cascade;

/// Declarative description of E11.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 11,
    slug: "e11",
    name: "e11_growth",
    title: "Reliability growth: single version vs 1-out-of-2 system",
    paper_ref: "ref [5], §3",
    claim: "versions grow identically under both regimes, but diversity gain grows only with independent suites",
    sweep: "testing effort checkpoints {0, 5, 10, …, 640} demands, both regimes",
    full_replications: 6_000,
    figures: &[
        FigureSpec::new(
            0,
            "Growth curves under both regimes: the single-version curves \
             coincide (the marginal debugging process is regime-independent), \
             while the system curves (±2·SE bands) separate — the shared \
             suite's system lags as testing effort grows.",
            "demands",
            &[
                SeriesSpec::new("version (independent)", "version (ind)"),
                SeriesSpec::new("system (independent)", "system (ind)").band("system se (ind)"),
                SeriesSpec::new("version (shared)", "version (shared)"),
                SeriesSpec::new("system (shared)", "system (shared)").band("system se (shared)"),
            ],
        )
        .labels("demands tested", "pfd"),
        FigureSpec::new(
            0,
            "The diversity gain (version pfd / system pfd): under independent \
             suites it keeps growing with testing effort; under the shared \
             suite it stagnates — the versions become 'more alike'.",
            "demands",
            &[
                SeriesSpec::new("gain (independent)", "gain (ind)"),
                SeriesSpec::new("gain (shared)", "gain (shared)"),
            ],
        )
        .labels("demands tested", "version pfd / system pfd"),
    ],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E11: reliability growth — single version vs 1-out-of-2 system (ref [5])\n");
    let w = medium_cascade(11);
    let replications = ctx.replications(SPEC.full_replications);
    let checkpoints = [0usize, 5, 10, 20, 40, 80, 160, 320, 640];

    let scenario = w.scenario().build().expect("valid world");
    // One MC cell per regime; payload = [version-A mean, version-A SE,
    // system mean, system SE] per checkpoint.
    let growth_cell = |ctx: &mut RunContext, regime: &str, seed: u64| {
        ctx.cell(
            format!(
                "world=medium-cascade(11)|regime={regime}|seed={seed}|reps={replications}|study=growth"
            ),
            |scope| {
                let s = if regime == "independent" {
                    scenario.with_regime(CampaignRegime::IndependentSuites)
                } else {
                    scenario.clone()
                };
                let g = s
                    .with_seed(seed)
                    .growth(&checkpoints, replications, scope.threads())
                    .expect("valid checkpoints");
                let mut values = Vec::new();
                for i in 0..checkpoints.len() {
                    values.extend([
                        g.version_a[i].mean(),
                        g.version_a[i].standard_error(),
                        g.system[i].mean(),
                        g.system[i].standard_error(),
                    ]);
                }
                values
            },
        )
    };
    let ind = growth_cell(ctx, "independent", 1111);
    let sh = growth_cell(ctx, "shared", 2222);
    // Per-checkpoint accessors into the flattened payloads.
    let ind_va = |i: usize| ind.get(4 * i);
    let ind_va_se = |i: usize| ind.get(4 * i + 1);
    let ind_sys = |i: usize| ind.get(4 * i + 2);
    let ind_sys_se = |i: usize| ind.get(4 * i + 3);
    let sh_va = |i: usize| sh.get(4 * i);
    let sh_va_se = |i: usize| sh.get(4 * i + 1);
    let sh_sys = |i: usize| sh.get(4 * i + 2);
    let sh_sys_se = |i: usize| sh.get(4 * i + 3);

    let mut table = Table::new(
        &format!("growth curves ({replications} replications, {})", w.label()),
        &[
            "demands",
            "version (ind)",
            "system (ind)",
            "system se (ind)",
            "gain (ind)",
            "version (shared)",
            "system (shared)",
            "system se (shared)",
            "gain (shared)",
        ],
    );
    for (i, &n) in checkpoints.iter().enumerate() {
        let gain_ind = ind_va(i) / ind_sys(i).max(1e-12);
        let gain_sh = sh_va(i) / sh_sys(i).max(1e-12);
        table.row(&[
            n.to_string(),
            format!("{:.6}", ind_va(i)),
            format!("{:.6}", ind_sys(i)),
            format!("{:.6}", ind_sys_se(i)),
            format!("{gain_ind:.2}"),
            format!("{:.6}", sh_va(i)),
            format!("{:.6}", sh_sys(i)),
            format!("{:.6}", sh_sys_se(i)),
            format!("{gain_sh:.2}"),
        ]);
    }
    ctx.emit(table, "e11_growth");

    // Qualitative claims.
    let last = checkpoints.len() - 1;
    ctx.check(
        ind_sys(last) < ind_sys(0),
        "growth under independent suites",
    );
    ctx.check(sh_sys(last) < sh_sys(0), "growth under shared suite");
    // Version-level growth is regime-independent (same marginal process).
    for i in 0..checkpoints.len() {
        let d = (ind_va(i) - sh_va(i)).abs();
        let se = ind_va_se(i) + sh_va_se(i);
        ctx.check(
            d < 5.0 * se + 1e-9,
            format!("version growth agrees between regimes at checkpoint {i}"),
        );
    }
    // System under shared suite lags behind independent suites late in
    // testing (statistically: allow MC noise at reduced budgets).
    let late_se = sh_sys_se(last) + ind_sys_se(last);
    ctx.check(
        sh_sys(last) > ind_sys(last) - 2.0 * late_se,
        "shared suite lags at high testing effort",
    );
    // Diversity gain: grows under independent suites, stalls under shared.
    let gain_ind_last = ind_va(last) / ind_sys(last).max(1e-12);
    let gain_sh_last = sh_va(last) / sh_sys(last).max(1e-12);
    ctx.check(
        gain_ind_last > gain_sh_last,
        "diversity gain favours independent suites",
    );

    ctx.note(
        "Claim reproduced: versions grow identically under both regimes, but the\n\
         system's benefit from diversity keeps growing only when the suites are\n\
         independent — with a shared suite the versions become 'more alike'.",
    );
}
