//! E11 — reliability growth of single version vs 1-out-of-2 system
//! (replication of the paper's reference \[5\], Djambazov & Popov ISSRE'95).
//!
//! The paper cites simulation showing "how the reliabilities of the
//! versions and of the system improve as a function of testing effort".
//! The experiment produces those growth curves under both suite regimes,
//! with the diversity gain (version pfd / system pfd) as the headline
//! series: under independent suites diversity is preserved as reliability
//! grows; under the shared suite the gain stagnates.

use diversim_sim::campaign::CampaignRegime;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::medium_cascade;

/// Declarative description of E11.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 11,
    slug: "e11",
    name: "e11_growth",
    title: "Reliability growth: single version vs 1-out-of-2 system",
    paper_ref: "ref [5], §3",
    claim: "versions grow identically under both regimes, but diversity gain grows only with independent suites",
    sweep: "testing effort checkpoints {0, 5, 10, …, 640} demands, both regimes",
    full_replications: 6_000,
    figures: &[
        FigureSpec::new(
            0,
            "Growth curves under both regimes: the single-version curves \
             coincide (the marginal debugging process is regime-independent), \
             while the system curves (±2·SE bands) separate — the shared \
             suite's system lags as testing effort grows.",
            "demands",
            &[
                SeriesSpec::new("version (independent)", "version (ind)"),
                SeriesSpec::new("system (independent)", "system (ind)").band("system se (ind)"),
                SeriesSpec::new("version (shared)", "version (shared)"),
                SeriesSpec::new("system (shared)", "system (shared)").band("system se (shared)"),
            ],
        )
        .labels("demands tested", "pfd"),
        FigureSpec::new(
            0,
            "The diversity gain (version pfd / system pfd): under independent \
             suites it keeps growing with testing effort; under the shared \
             suite it stagnates — the versions become 'more alike'.",
            "demands",
            &[
                SeriesSpec::new("gain (independent)", "gain (ind)"),
                SeriesSpec::new("gain (shared)", "gain (shared)"),
            ],
        )
        .labels("demands tested", "version pfd / system pfd"),
    ],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E11: reliability growth — single version vs 1-out-of-2 system (ref [5])\n");
    let w = medium_cascade(11);
    let threads = ctx.threads();
    let replications = ctx.replications(SPEC.full_replications);
    let checkpoints = [0usize, 5, 10, 20, 40, 80, 160, 320, 640];

    let scenario = w.scenario().build().expect("valid world");
    let ind = scenario
        .with_regime(CampaignRegime::IndependentSuites)
        .with_seed(1111)
        .growth(&checkpoints, replications, threads)
        .expect("valid checkpoints");
    let sh = scenario
        .with_seed(2222)
        .growth(&checkpoints, replications, threads)
        .expect("valid checkpoints");

    let mut table = Table::new(
        &format!("growth curves ({replications} replications, {})", w.label()),
        &[
            "demands",
            "version (ind)",
            "system (ind)",
            "system se (ind)",
            "gain (ind)",
            "version (shared)",
            "system (shared)",
            "system se (shared)",
            "gain (shared)",
        ],
    );
    for (i, &n) in checkpoints.iter().enumerate() {
        let gain_ind = ind.version_a[i].mean() / ind.system[i].mean().max(1e-12);
        let gain_sh = sh.version_a[i].mean() / sh.system[i].mean().max(1e-12);
        table.row(&[
            n.to_string(),
            format!("{:.6}", ind.version_a[i].mean()),
            format!("{:.6}", ind.system[i].mean()),
            format!("{:.6}", ind.system[i].standard_error()),
            format!("{gain_ind:.2}"),
            format!("{:.6}", sh.version_a[i].mean()),
            format!("{:.6}", sh.system[i].mean()),
            format!("{:.6}", sh.system[i].standard_error()),
            format!("{gain_sh:.2}"),
        ]);
    }
    ctx.emit(table, "e11_growth");

    // Qualitative claims.
    let last = checkpoints.len() - 1;
    ctx.check(
        ind.system[last].mean() < ind.system[0].mean(),
        "growth under independent suites",
    );
    ctx.check(
        sh.system[last].mean() < sh.system[0].mean(),
        "growth under shared suite",
    );
    // Version-level growth is regime-independent (same marginal process).
    for i in 0..checkpoints.len() {
        let d = (ind.version_a[i].mean() - sh.version_a[i].mean()).abs();
        let se = ind.version_a[i].standard_error() + sh.version_a[i].standard_error();
        ctx.check(
            d < 5.0 * se + 1e-9,
            format!("version growth agrees between regimes at checkpoint {i}"),
        );
    }
    // System under shared suite lags behind independent suites late in
    // testing (statistically: allow MC noise at reduced budgets).
    let late_se = sh.system[last].standard_error() + ind.system[last].standard_error();
    ctx.check(
        sh.system[last].mean() > ind.system[last].mean() - 2.0 * late_se,
        "shared suite lags at high testing effort",
    );
    // Diversity gain: grows under independent suites, stalls under shared.
    let gain_ind_last = ind.version_a[last].mean() / ind.system[last].mean().max(1e-12);
    let gain_sh_last = sh.version_a[last].mean() / sh.system[last].mean().max(1e-12);
    ctx.check(
        gain_ind_last > gain_sh_last,
        "diversity gain favours independent suites",
    );

    ctx.note(
        "Claim reproduced: versions grow identically under both regimes, but the\n\
         system's benefit from diversity keeps growing only when the suites are\n\
         independent — with a shared suite the versions become 'more alike'.",
    );
}
