//! E9 — imperfect oracle and imperfect fixing, §4.1.
//!
//! Paper claim: with a fallible oracle and/or fixer, "the results from the
//! previous section (15–25) can be used as lower bounds on the probability
//! of system failure" and the untested joint pfd "forms a natural upper
//! bound". The experiment sweeps a detection × fixing grid and places
//! every measured system pfd inside the analytical bounds.

use diversim_core::bounds::ImperfectTestingBounds;
use diversim_core::marginal::SuiteAssignment;
use diversim_testing::fixing::ImperfectFixer;
use diversim_testing::oracle::ImperfectOracle;
use diversim_testing::suite_population::enumerate_iid_suites;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::small_graded;

/// Declarative description of E9.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 9,
    slug: "e09",
    name: "e09_imperfect",
    title: "Imperfect oracle / imperfect fixing stay inside the §4.1 bounds",
    paper_ref: "§4.1",
    claim: "every imperfect regime lies between the perfect-testing lower and untested upper bound",
    sweep: "detection × fixing grid {0.25, 0.5, 0.75, 1.0}², shared 5-demand suites",
    full_replications: 30_000,
    figures: &[FigureSpec::new(
        0,
        "Measured system pfd across the (detect, fix) grid: better detection \
         and better fixing both push the system monotonically from the \
         untested upper bound toward the perfect-testing lower bound, never \
         leaving the §4.1 interval.",
        "detect p",
        &[
            SeriesSpec::new("fix p = 0.25", "system pfd").only("fix p", "0.25"),
            SeriesSpec::new("fix p = 0.50", "system pfd").only("fix p", "0.50"),
            SeriesSpec::new("fix p = 0.75", "system pfd").only("fix p", "0.75"),
            SeriesSpec::new("fix p = 1.00", "system pfd").only("fix p", "1.00"),
        ],
    )
    .labels("detection probability", "system pfd")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E9: imperfect oracle / imperfect fixing stay inside the §4.1 bounds\n");
    let w = small_graded();
    let suite_size = 5;
    // Exact cell: the §4.1 interval [lower, upper] for the shared suite.
    let bounds = ctx.cell(
        format!("world=small-graded|suite={suite_size}|study=sec41-bounds"),
        |_scope| {
            let m = enumerate_iid_suites(&w.profile, suite_size, 1 << 16).expect("enumerable");
            let bounds = ImperfectTestingBounds::compute(
                &w.pop_a,
                &w.pop_a,
                SuiteAssignment::Shared(&m),
                &w.profile,
            );
            vec![bounds.lower, bounds.upper]
        },
    );
    let (lower, upper) = (bounds.get(0), bounds.get(1));
    let width = upper - lower;
    ctx.note(format!(
        "analytical bounds (shared suite, n={suite_size}): lower={lower:.6} (perfect testing), upper={upper:.6} (untested)\n",
    ));

    let scenario = w
        .scenario()
        .suite_size(suite_size)
        .build()
        .expect("valid world");
    let replications = ctx.replications(SPEC.full_replications);
    let mut table = Table::new(
        "measured system pfd across the (detect, fix) grid",
        &[
            "detect p",
            "fix p",
            "system pfd",
            "position in [lower, upper]",
        ],
    );

    let mut grid_means: Vec<(f64, f64, f64)> = Vec::new();
    for &detect in &[0.25, 0.5, 0.75, 1.0] {
        for &fix in &[0.25, 0.5, 0.75, 1.0] {
            // One MC cell per grid point: [system pfd mean, SE]; seed is a
            // deterministic function of (detect, fix), encoded in the key.
            let cell = ctx.cell(
                format!(
                    "world=small-graded|suite={suite_size}|detect={detect:.2}|fix={fix:.2}|reps={replications}|study=grid-pfd"
                ),
                |scope| {
                    let est = scenario
                        .with_oracle(ImperfectOracle::new(detect).expect("valid"))
                        .with_fixer(ImperfectFixer::new(fix).expect("valid"))
                        .with_seed((detect * 100.0) as u64 * 1000 + (fix * 100.0) as u64)
                        .estimate(replications, scope.threads());
                    vec![est.system_pfd.mean, est.system_pfd.standard_error]
                },
            );
            let (mean, se) = (cell.get(0), cell.get(1));
            let pos = if width > 0.0 {
                (mean - lower) / width
            } else {
                0.0
            };
            table.row(&[
                format!("{detect:.2}"),
                format!("{fix:.2}"),
                format!("{mean:.6}"),
                format!("{pos:.3}"),
            ]);
            let slack = 4.0 * se;
            ctx.check(
                mean >= lower - slack && mean <= upper + slack,
                format!("({detect},{fix}) stays inside the bounds"),
            );
            grid_means.push((detect, fix, mean));
        }
    }

    ctx.emit(table, "e09_imperfect");

    // Monotonicity: better detection/fixing never hurts (at fixed other
    // parameter, statistically).
    let at = |d: f64, f: f64| {
        grid_means
            .iter()
            .find(|(gd, gf, _)| (gd - d).abs() < 1e-9 && (gf - f).abs() < 1e-9)
            .map(|(_, _, v)| *v)
            .expect("grid point")
    };
    ctx.check(
        at(1.0, 1.0) <= at(0.25, 0.25),
        "perfect testing beats weak testing",
    );
    ctx.note(
        "Claim reproduced: every imperfect regime lies between the perfect-testing\n\
         lower bound and the untested upper bound, moving monotonically toward the\n\
         lower bound as detection and fixing improve.",
    );
}
