//! E5 — forced design diversity on a shared suite, equation (21).
//!
//! Paper claim: for methodologies A ≠ B tested on one suite the joint
//! probability on demand x is `ζ_A(x)ζ_B(x) + Cov_Ξ(ξ_A(x,T), ξ_B(x,T))`,
//! and unlike the single-population case the covariance term can be
//! positive *or* negative. The experiment exhibits both signs.

use diversim_core::difficulty::zeta;
use diversim_core::testing_effect::joint_shared_suite;
use diversim_exact::brute;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::population::Population;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::{mirrored, negative_coupling, World};

/// Declarative description of E5.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 5,
    slug: "e05",
    name: "e05_forced_shared",
    title: "Forced diversity on a shared suite: the covariance can take either sign",
    paper_ref: "eq (21)",
    claim: "Cov_Ξ(ξ_A, ξ_B) > 0 on some worlds (shared testing hurts), < 0 on others (it helps)",
    sweep: "mirrored and negative-coupling worlds, all demands, 1-demand suites",
    full_replications: 0,
    figures: &[FigureSpec::new(
        0,
        "The eq-21 coupling Cov_Ξ(ξ_A, ξ_B) per demand: non-negative \
         everywhere on the mirrored world, but negative on the contested \
         demand of the engineered world — shared-suite testing can *help* \
         forced-diverse versions.",
        "demand",
        &[
            SeriesSpec::new("mirrored world", "Cov_Xi(xi_A,xi_B)").only("world", "mirrored"),
            SeriesSpec::new("negative-coupling world", "Cov_Xi(xi_A,xi_B)")
                .only("world", "neg-coupling"),
        ],
    )
    .labels("demand", "Cov_Ξ(ξ_A, ξ_B)")],
    run,
};

fn run_world(
    ctx: &mut RunContext,
    label: &str,
    cell_key: &str,
    world: &World,
    suite_size: usize,
    table: &mut Table,
) -> (f64, f64) {
    // One exact cell per world; payload = [ζ_Aζ_B (mean term), coupling,
    // total, brute, ζ_A·ζ_B (direct product)] per demand.
    let cell = ctx.cell(
        format!("world={cell_key}|suite={suite_size}|study=per-demand-eq21"),
        |_scope| {
            let m = enumerate_iid_suites(&world.profile, suite_size, 1 << 14).expect("enumerable");
            let sa = world.pop_a.enumerate(1 << 12).expect("enumerable");
            let sb = world.pop_b.enumerate(1 << 12).expect("enumerable");
            let mut values = Vec::new();
            for x in world.profile.space().iter() {
                let joint = joint_shared_suite(&world.pop_a, &world.pop_b, &m, x);
                values.extend([
                    joint.independent,
                    joint.coupling,
                    joint.total(),
                    brute::joint_on_demand_shared(&sa, &sb, &m, world.pop_a.model(), x),
                    zeta(&world.pop_a, x, &m) * zeta(&world.pop_b, x, &m),
                ]);
            }
            values
        },
    );
    let mut min_cov = f64::INFINITY;
    let mut max_cov = f64::NEG_INFINITY;
    for (i, x) in world.profile.space().iter().enumerate() {
        let at = |j: usize| cell.get(5 * i + j);
        let (independent, coupling, total, brute_joint, prod) = (at(0), at(1), at(2), at(3), at(4));
        ctx.check(
            (total - brute_joint).abs() < 1e-12,
            format!("eq21 matches brute force on {label} at {x}"),
        );
        ctx.check(
            (independent - prod).abs() < 1e-12,
            format!("eq21 mean term is ζ_Aζ_B on {label} at {x}"),
        );
        min_cov = min_cov.min(coupling);
        max_cov = max_cov.max(coupling);
        table.row(&[
            label.to_string(),
            x.to_string(),
            format!("{independent:.6}"),
            format!("{coupling:+.6}"),
            format!("{total:.6}"),
        ]);
    }
    (min_cov, max_cov)
}

fn run(ctx: &mut RunContext) {
    ctx.note(
        "E5: forced diversity on a shared suite — the covariance can take either sign (eq 21)\n",
    );
    let mut table = Table::new(
        "per-demand eq-21 decomposition",
        &[
            "world",
            "demand",
            "zeta_A*zeta_B",
            "Cov_Xi(xi_A,xi_B)",
            "joint",
        ],
    );

    // Mirrored singleton world: coupling is non-negative (suites kill both
    // methodologies' faults on the same demands).
    let wm = mirrored(0.8, 0.1);
    let (_, max_cov_m) = run_world(ctx, "mirrored", "mirrored(0.8,0.1)", &wm, 1, &mut table);

    // Engineered overlap world: the same suite repairs A and B on
    // *different* demands → negative covariance on the contested demand.
    let wn = negative_coupling();
    let (min_cov_n, _) = run_world(ctx, "neg-coupling", "negative-coupling", &wn, 1, &mut table);

    ctx.emit(table, "e05_forced_shared");

    ctx.check(
        max_cov_m > 0.0,
        "a positive coupling demand exists in the mirrored world",
    );
    ctx.check(
        min_cov_n < 0.0,
        "a negative coupling demand exists in the engineered world",
    );
    ctx.note(
        "Claim reproduced: Cov_Ξ(ξ_A, ξ_B) > 0 on some worlds (shared testing\n\
         hurts) and < 0 on others (shared testing *helps*) — exactly the eq-21\n\
         ambiguity the paper highlights.",
    );
}
