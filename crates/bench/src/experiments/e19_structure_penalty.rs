//! E19 — where the eq 22–23 shared-suite penalty lands in structured
//! systems.
//!
//! The paper prices the shared-suite coupling of eq (20) for a
//! 1-out-of-2 pair: eq (23)'s marginal system pfd exceeds eq (22)'s by
//! the usage-weighted variance term. Composing the same machinery
//! through a structure function shows the penalty is a property of
//! *redundancy*, not of sharing per se:
//!
//! * at an **AND** gate (parallel redundancy) the mixed moment
//!   `E_Ξ[Π ξ_j]` exceeds `Π E_Ξ[ξ_j]`, so a shared suite *hurts* —
//!   the eq-23 penalty, now at every gate;
//! * at an **OR** gate (a series system) the same co-movement inflates
//!   the joint terms that inclusion–exclusion *subtracts*, so a shared
//!   suite mildly *helps*;
//! * mixed trees (2-of-3, bridge) land in between, their penalty
//!   concentrated at their AND gates.
//!
//! Three computation paths cross-check every number: the gate-composed
//! formula path (`core::structure`), assumption-free cross-product
//! enumeration (`exact::StructureEnsemble`, tiny world, 1e-12), and
//! Monte Carlo system campaigns (`sim` system scenarios, ±3·SE).

use diversim_core::difficulty::TestedDifficulty;
use diversim_core::nversion::system_pfd_n;
use diversim_core::structure::{gate_moments, structure_pfd, Structure};
use diversim_core::testing_effect::TestingRegime;
use diversim_exact::verify::verify_structure;
use diversim_sim::campaign::CampaignRegime;
use diversim_sim::system::SystemSpec;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::population::Population;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::{small_graded, World};

/// Suite size of the exact and Monte Carlo comparisons.
const SUITE: usize = 4;

/// The four canonical trees, with their component counts.
fn trees() -> [(&'static str, Structure); 4] {
    [
        ("series-3", Structure::series(3)),
        ("2-of-3", Structure::k_of_n(2, 3)),
        ("parallel-3", Structure::one_out_of_n(3)),
        ("bridge-5", Structure::bridge()),
    ]
}

/// Declarative description of E19.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 19,
    slug: "e19",
    name: "e19_structure_penalty",
    title: "Shared-suite penalty across structure functions",
    paper_ref: "eqs (20)-(25) composed over fault trees",
    claim: "a shared suite penalises AND-redundancy, spares series systems; exact, brute-force and MC paths agree",
    sweep: "trees {series, 2-of-3, parallel, bridge} × regimes, suite 4; brute on a 2-demand world; MC at 3·SE",
    full_replications: 20_000,
    figures: &[
        FigureSpec::new(
            0,
            "Marginal system pfd of each fault tree under both suite \
             regimes (small-graded world, 4-demand suites). The shared/\
             independent ratio is largest for the pure AND tree \
             (parallel-3), crosses 1 downwards for the pure OR tree \
             (series-3), and sits in between for the mixed trees — the \
             eq-23 penalty tracks redundancy, not sharing.",
            "idx",
            &[
                SeriesSpec::new("independent suites", "independent"),
                SeriesSpec::new("shared suite", "shared"),
            ],
        )
        .labels("structure (0=series-3, 1=2-of-3, 2=parallel-3, 3=bridge-5)", "system pfd")
        .log_y(),
        FigureSpec::new(
            1,
            "Per-gate coupling `E_Ξ[Π ξ] − Π E_Ξ[ξ]` of every gate of the \
             repeat-free trees (preorder paths). The all-children-fail \
             moment inequality holds everywhere, and the AND gates carry \
             the bulk of the coupling mass.",
            "idx",
            &[SeriesSpec::new("coupling", "coupling")],
        )
        .labels("gate index (preorder; labels in the table)", "coupling"),
    ],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E19: where the eq 22-23 shared-suite penalty lands in structured systems\n");
    let w = small_graded();
    let replications = ctx.replications(SPEC.full_replications);

    // ── Exact: regime comparison per tree ─────────────────────────────
    let mut table = Table::new(
        &format!("system pfd per structure ({SUITE}-demand suites, small-graded world)"),
        &[
            "idx",
            "tree",
            "components",
            "independent",
            "shared",
            "penalty",
            "shared/indep",
        ],
    );
    let mut ratios = Vec::new();
    for (idx, (label, structure)) in trees().into_iter().enumerate() {
        let n = structure.component_count();
        let cell = ctx.cell(
            format!("world=small-graded|suite={SUITE}|tree={label}|study=structure-regimes"),
            |_scope| {
                let m = enumerate_iid_suites(&w.profile, SUITE, 1 << 16).expect("enumerable");
                let pops: Vec<&dyn TestedDifficulty> =
                    (0..n).map(|_| &w.pop_a as &dyn TestedDifficulty).collect();
                vec![
                    structure_pfd(
                        &structure,
                        &pops,
                        &m,
                        &w.profile,
                        TestingRegime::IndependentSuites,
                    )
                    .expect("valid structure"),
                    structure_pfd(
                        &structure,
                        &pops,
                        &m,
                        &w.profile,
                        TestingRegime::SharedSuite,
                    )
                    .expect("valid structure"),
                ]
            },
        );
        let (ind, sh) = (cell.get(0), cell.get(1));
        let ratio = sh / ind.max(1e-300);
        ratios.push((label, ratio));
        table.row(&[
            idx.to_string(),
            label.into(),
            n.to_string(),
            format!("{ind:.6e}"),
            format!("{sh:.6e}"),
            format!("{:+.6e}", sh - ind),
            format!("{ratio:.3}"),
        ]);
        match label {
            "series-3" => ctx.check(
                sh <= ind + 1e-15,
                "a shared suite does not hurt a series system (OR gate)",
            ),
            _ => ctx.check(
                sh >= ind - 1e-15,
                format!("a shared suite does not help {label} (AND redundancy)"),
            ),
        }
    }
    ctx.emit(table, "e19_structure_regimes");
    let ratio_of = |name: &str| ratios.iter().find(|(l, _)| *l == name).expect("known").1;
    ctx.check(
        ratio_of("parallel-3") > ratio_of("2-of-3") && ratio_of("2-of-3") > ratio_of("series-3"),
        "the shared/independent ratio orders by redundancy: parallel > 2-of-3 > series",
    );

    // The retired flat path is a special case of the structure path —
    // bit-for-bit, not approximately.
    let flat = ctx.cell(
        format!("world=small-graded|suite={SUITE}|tree=parallel-3|study=flat-wrapper"),
        |_scope| {
            let m = enumerate_iid_suites(&w.profile, SUITE, 1 << 16).expect("enumerable");
            let pops: Vec<&dyn TestedDifficulty> =
                (0..3).map(|_| &w.pop_a as &dyn TestedDifficulty).collect();
            let structure = Structure::one_out_of_n(3);
            let a = structure_pfd(
                &structure,
                &pops,
                &m,
                &w.profile,
                TestingRegime::SharedSuite,
            )
            .expect("valid structure");
            let b = system_pfd_n(&pops, &m, &w.profile, TestingRegime::SharedSuite)
                .expect("valid system");
            vec![(a.to_bits() == b.to_bits()) as u8 as f64]
        },
    );
    ctx.check(
        flat.get(0) == 1.0,
        "structure_pfd(1-out-of-3) equals the flat N-version path bit for bit",
    );

    // ── Exact: per-gate coupling of the repeat-free trees ─────────────
    // A flat tree has one gate, so all roots over the same children share
    // one all-children-fail moment; the nested 2×2 tree (a series of two
    // parallel pairs) is what localises the coupling at inner AND gates.
    let nested = (
        "nested-2x2",
        Structure::or(vec![
            Structure::and(vec![Structure::component(0), Structure::component(1)]),
            Structure::and(vec![Structure::component(2), Structure::component(3)]),
        ]),
    );
    let mut gate_trees: Vec<(&'static str, Structure)> = trees()
        .into_iter()
        .filter(|(_, s)| !s.has_repeated_components())
        .collect();
    gate_trees.push(nested);
    let mut gates = Table::new(
        "per-gate coupling (repeat-free trees; bridge omitted: component reuse)",
        &[
            "idx",
            "gate",
            "tree",
            "path",
            "kind",
            "independent",
            "mixed",
            "coupling",
        ],
    );
    let mut gate_idx = 0usize;
    for (label, structure) in gate_trees {
        let n = structure.component_count();
        let cell = ctx.cell(
            format!("world=small-graded|suite={SUITE}|tree={label}|study=gate-moments"),
            |_scope| {
                let m = enumerate_iid_suites(&w.profile, SUITE, 1 << 16).expect("enumerable");
                let pops: Vec<&dyn TestedDifficulty> =
                    (0..n).map(|_| &w.pop_a as &dyn TestedDifficulty).collect();
                gate_moments(&structure, &pops, &m, &w.profile)
                    .expect("repeat-free tree")
                    .iter()
                    .flat_map(|g| [g.independent, g.mixed])
                    .collect()
            },
        );
        // Paths and kinds are derived from the structure itself; only the
        // numeric moments come from the (cacheable) cell.
        let described = describe_gates(&structure);
        for (i, (path, kind)) in described.iter().enumerate() {
            let (independent, mixed) = (cell.get(2 * i), cell.get(2 * i + 1));
            let coupling = mixed - independent;
            gates.row(&[
                gate_idx.to_string(),
                format!("{label}:{path}"),
                label.into(),
                path.clone(),
                (*kind).into(),
                format!("{independent:.6e}"),
                format!("{mixed:.6e}"),
                format!("{coupling:.3e}"),
            ]);
            gate_idx += 1;
            ctx.check(
                coupling >= -1e-12,
                format!("gate coupling is non-negative at {label}:{path}"),
            );
        }
    }
    ctx.emit(gates, "e19_gate_moments");

    // ── Brute force: assumption-free agreement on a tiny world ────────
    let tiny = World::singleton_uniform("tiny-structure", vec![0.3, 0.7]).expect("valid");
    for (label, structure) in trees() {
        let n = structure.component_count();
        // Cross-product cost is |support × suites|^n: keep the world at 2
        // demands (4 versions × 2 one-demand suites = 8) so even the
        // 5-component bridge enumerates 8^5 = 32768 tuples.
        let cell = ctx.cell(
            format!("world=tiny-structure|suite=1|tree={label}|study=structure-brute"),
            |_scope| {
                let m = enumerate_iid_suites(&tiny.profile, 1, 64).expect("enumerable");
                let support = tiny.pop_a.enumerate(64).expect("tiny support");
                let pops: Vec<&dyn TestedDifficulty> = (0..n)
                    .map(|_| &tiny.pop_a as &dyn TestedDifficulty)
                    .collect();
                let supports: Vec<&diversim_exact::brute::Support> =
                    (0..n).map(|_| support.as_slice()).collect();
                let report = verify_structure(&structure, &pops, &supports, &m, &tiny.profile)
                    .expect("valid structure");
                vec![
                    report.all_hold(1e-12) as u8 as f64,
                    report.checks.len() as f64,
                ]
            },
        );
        ctx.check(
            cell.get(0) == 1.0,
            format!("brute-force cross-product enumeration agrees at 1e-12 for {label}"),
        );
    }

    // ── Monte Carlo: simulated system campaigns land on the formulas ──
    let mut mc = Table::new(
        &format!("MC system campaigns vs exact ({replications} reps, suite {SUITE})"),
        &["tree", "regime", "exact", "mc", "se", "|z|"],
    );
    for (label, structure) in trees() {
        let n = structure.component_count();
        for (regime_label, regime, core_regime) in [
            (
                "independent",
                CampaignRegime::IndependentSuites,
                TestingRegime::IndependentSuites,
            ),
            (
                "shared",
                CampaignRegime::SharedSuite,
                TestingRegime::SharedSuite,
            ),
        ] {
            let cell = ctx.cell(
                format!(
                    "world=small-graded|suite={SUITE}|tree={label}|regime={regime_label}|reps={replications}|study=structure-mc"
                ),
                |scope| {
                    let m = enumerate_iid_suites(&w.profile, SUITE, 1 << 16).expect("enumerable");
                    let pops: Vec<&dyn TestedDifficulty> =
                        (0..n).map(|_| &w.pop_a as &dyn TestedDifficulty).collect();
                    let exact = structure_pfd(&structure, &pops, &m, &w.profile, core_regime)
                        .expect("valid structure");
                    let spec = SystemSpec::homogeneous(structure.clone(), w.pop_a.clone())
                        .expect("valid system");
                    let est = w
                        .scenario()
                        .system(spec)
                        .suite_size(SUITE)
                        .regime(regime)
                        .seed(1900)
                        .build()
                        .expect("valid scenario")
                        .system_estimate(replications, scope.threads())
                        .expect("suite regime");
                    vec![exact, est.system_pfd.mean, est.system_pfd.standard_error]
                },
            );
            let (exact, mean, se) = (cell.get(0), cell.get(1), cell.get(2));
            let z = (mean - exact).abs() / se.max(1e-300);
            mc.row(&[
                label.into(),
                regime_label.into(),
                format!("{exact:.6e}"),
                format!("{mean:.6e}"),
                format!("{se:.1e}"),
                format!("{z:.2}"),
            ]);
            ctx.check(
                (mean - exact).abs() <= 3.0 * se,
                format!("MC agrees with the exact {regime_label} pfd for {label} (|z|={z:.2})"),
            );
        }
    }
    ctx.emit(mc, "e19_structure_mc");

    ctx.note(
        "\nClaim reproduced: composing eqs (20)-(25) through a structure\n\
         function shows the shared-suite penalty is a price of AND-redundancy\n\
         (largest for parallel, absent-to-negative for series), every gate's\n\
         mixed moment dominates its factorisation, and the formula, brute\n\
         and Monte Carlo paths agree.",
    );
}

/// Preorder gate paths and kinds of a tree, mirroring
/// [`diversim_core::structure::gate_moments`]'s ordering.
fn describe_gates(structure: &Structure) -> Vec<(String, &'static str)> {
    fn walk(s: &Structure, path: String, out: &mut Vec<(String, &'static str)>) {
        let (kind, children) = match s {
            Structure::Component(_) => return,
            Structure::And(c) => ("and", c),
            Structure::Or(c) => ("or", c),
            Structure::KOutOfN { children, .. } => ("k-of-n", children),
        };
        out.push((path.clone(), kind));
        for (i, child) in children.iter().enumerate() {
            walk(child, format!("{path}.{i}"), out);
        }
    }
    let mut out = Vec::new();
    walk(structure, "root".into(), &mut out);
    out
}
