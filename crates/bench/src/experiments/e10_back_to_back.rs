//! E10 — back-to-back testing, §4.2.
//!
//! Paper claims: (i) if coincident failures never look identical,
//! back-to-back testing equals perfect-oracle shared-suite testing; (ii)
//! in the worst case (all coincident failures identical) "back-to-back
//! testing does not improve system reliability at all — it only improves
//! the reliability of the individual versions on demands which have no
//! effect on system reliability"; (iii) after exhaustive worst-case
//! testing "the versions would fail identically and the system behave
//! exactly as each version does".

use rand::rngs::StdRng;
use rand::SeedableRng;

use diversim_core::bounds::BackToBackBounds;
use diversim_core::system::pair_pfd;
use diversim_sim::campaign::CampaignRegime;
use diversim_testing::fixing::PerfectFixer;
use diversim_testing::oracle::IdenticalFailureModel;
use diversim_testing::process::back_to_back_debug;
use diversim_testing::suite::TestSuite;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::population::Population;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::small_graded;

/// Declarative description of E10.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 10,
    slug: "e10",
    name: "e10_back_to_back",
    title: "Back-to-back testing between the §4.2 bounds",
    paper_ref: "§4.2",
    claim: "γ=0 attains the perfect-oracle bound, γ=1 the untested bound; system gains vanish",
    sweep: "identical-failure probability γ ∈ {0.0, 0.2, …, 1.0}, plus exhaustive worst case",
    full_replications: 40_000,
    figures: &[FigureSpec::new(
        0,
        "Back-to-back testing as the identical-failure probability γ grows: \
         version reliability keeps improving, but the system pfd climbs from \
         the optimistic (γ=0, perfect-oracle) bound to the pessimistic (γ=1, \
         untested) bound — coincident failures that look identical are \
         invisible to the comparison oracle.",
        "gamma",
        &[
            SeriesSpec::new("system pfd", "system pfd"),
            SeriesSpec::new("version pfd", "version pfd"),
        ],
    )
    .labels("identical-failure probability γ", "pfd")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E10: back-to-back testing between the §4.2 bounds\n");
    let w = small_graded();
    let suite_size = 5;
    // Exact cell: the §4.2 interval [optimistic, pessimistic].
    let bounds = ctx.cell(
        format!("world=small-graded|suite={suite_size}|study=sec42-bounds"),
        |_scope| {
            let m = enumerate_iid_suites(&w.profile, suite_size, 1 << 16).expect("enumerable");
            let bounds = BackToBackBounds::compute(&w.pop_a, &w.pop_a, &m, &w.profile);
            vec![bounds.optimistic, bounds.pessimistic]
        },
    );
    let (optimistic, pessimistic) = (bounds.get(0), bounds.get(1));
    ctx.note(format!(
        "bounds (n={suite_size}): optimistic={optimistic:.6} (γ=0, = eq 23), pessimistic={pessimistic:.6} (γ=1, untested)\n",
    ));

    let scenario = w
        .scenario()
        .suite_size(suite_size)
        .build()
        .expect("valid world");
    let replications = ctx.replications(SPEC.full_replications);
    let mut table = Table::new(
        "γ sweep (singleton world)",
        &["gamma", "system pfd", "version pfd", "undetected share"],
    );

    let mut prev = -1.0;
    for step in 0..=5 {
        let gamma = step as f64 / 5.0;
        let identical = match step {
            0 => IdenticalFailureModel::Never,
            5 => IdenticalFailureModel::Always,
            _ => IdenticalFailureModel::Bernoulli(gamma),
        };
        // One MC cell per γ step: [system mean, system SE, version-A mean].
        let cell = ctx.cell(
            format!(
                "world=small-graded|suite={suite_size}|gamma={gamma:.1}|seed={}|reps={replications}|study=b2b-sweep",
                1300 + step as u64
            ),
            |scope| {
                let est = scenario
                    .with_regime(CampaignRegime::BackToBack(identical))
                    .with_seed(1300 + step as u64)
                    .estimate(replications, scope.threads());
                vec![
                    est.system_pfd.mean,
                    est.system_pfd.standard_error,
                    est.version_a_pfd.mean,
                ]
            },
        );
        let (sys_mean, sys_se, va_mean) = (cell.get(0), cell.get(1), cell.get(2));
        table.row(&[
            format!("{gamma:.1}"),
            format!("{sys_mean:.6}"),
            format!("{va_mean:.6}"),
            format!("{gamma:.1}"),
        ]);
        let slack = 4.0 * sys_se;
        ctx.check(
            sys_mean >= optimistic - slack && sys_mean <= pessimistic + slack,
            format!("γ={gamma} stays inside the bounds"),
        );
        ctx.check(
            sys_mean >= prev - slack,
            format!("system pfd rises with γ at γ={gamma}"),
        );
        prev = sys_mean;
    }
    ctx.emit(table, "e10_gamma_sweep");

    // Claim (iii): exhaustive pessimistic b2b — versions converge to the
    // coincident-failure set; system pfd unchanged; each version's pfd
    // equals the system's.
    let pairs = ctx.replications(2_000);
    // One cell for the exhaustive worst case: counts of pairs whose system
    // pfd changed / whose version pfds failed to collapse (both must be 0).
    let limit = ctx.cell(
        format!("world=small-graded|seed=77|pairs={pairs}|study=exhaustive-pessimistic-b2b"),
        |_scope| {
            let model = w.pop_a.model().clone();
            let exhaustive = TestSuite::exhaustive(model.space());
            let mut rng = StdRng::seed_from_u64(77);
            let mut pfd_changed = 0u64;
            let mut version_mismatch = 0u64;
            for _ in 0..pairs {
                let v1 = w.pop_a.sample(&mut rng);
                let v2 = w.pop_a.sample(&mut rng);
                let before = pair_pfd(&v1, &v2, &model, &w.profile);
                let out = back_to_back_debug(
                    &v1,
                    &v2,
                    &exhaustive,
                    &model,
                    IdenticalFailureModel::Always,
                    &PerfectFixer::new(),
                    &mut rng,
                );
                let after = pair_pfd(&out.first, &out.second, &model, &w.profile);
                if (after - before).abs() >= 1e-15 {
                    pfd_changed += 1;
                }
                // Limit claim: both versions now fail exactly on the
                // coincident set, so each version's pfd equals the system's.
                let va_pfd = out.first.pfd(&model, &w.profile);
                let vb_pfd = out.second.pfd(&model, &w.profile);
                if (va_pfd - after).abs() >= 1e-15 || (vb_pfd - after).abs() >= 1e-15 {
                    version_mismatch += 1;
                }
            }
            vec![pfd_changed as f64, version_mismatch as f64]
        },
    );
    ctx.check(
        limit.get(0) == 0.0,
        format!("pessimistic b2b left the system pfd unchanged on all {pairs} pairs"),
    );
    ctx.check(
        limit.get(1) == 0.0,
        format!("each version's pfd collapsed onto the system pfd on all {pairs} pairs"),
    );
    ctx.note(format!(
        "exhaustive pessimistic b2b on {pairs} random pairs: system pfd unchanged,\n\
         and each version's pfd collapsed onto the system pfd — \"the versions\n\
         would fail identically and the system behave exactly as each version does\".\n"
    ));
    ctx.note(
        "Claim reproduced: γ=0 attains the optimistic (perfect-oracle) bound, γ=1\n\
         the pessimistic bound; version reliability keeps improving while system\n\
         reliability gains vanish.",
    );
}
