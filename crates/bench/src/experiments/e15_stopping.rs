//! E15 — stopping-rule-driven testing (the §2 framing, paper ref \[3\]).
//!
//! §2: suite sizes are chosen "with respect to some stopping rule which
//! gives the tester sufficiently high confidence that the goal … has been
//! achieved". The experiment runs adaptive campaigns that stop when the
//! Littlewood–Wright-style failure-free rule fires, and measures what the
//! rule actually delivers: demands spent, achieved pfd, and how the
//! guarantee degrades when the oracle is fallible (§4.1's warning — the
//! rule only sees *detected* failures).

use diversim_stats::stopping::{failure_free_tests_required, StoppingRule};
use diversim_testing::oracle::ImperfectOracle;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::medium_cascade;

/// Declarative description of E15.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 15,
    slug: "e15",
    name: "e15_stopping",
    title: "Adaptive campaigns under conservative stopping rules",
    paper_ref: "§2, ref [3]",
    claim: "the failure-free rule delivers its nominal confidence with a perfect oracle; a fallible oracle silently destroys the guarantee",
    sweep: "target pfd ∈ {0.05, 0.02, 0.01, 0.005} (perfect oracle); detection ∈ {1.0, …, 0.1} at target 0.01",
    full_replications: 2_000,
    figures: &[
        FigureSpec::new(
            0,
            "What the failure-free stopping rule costs: mean demands spent \
             until the rule fires, against the target pfd (both axes log). \
             Tighter targets cost roughly 1/target demands — the \
             Littlewood–Wright price of assurance.",
            "target pfd",
            &[SeriesSpec::new("mean demands to stop", "mean demands")],
        )
        .labels("target pfd", "mean demands until the rule fires")
        .log_x()
        .log_y(),
        FigureSpec::new(
            1,
            "The same rule (target 0.01 @ 95%) under a fallible oracle: \
             undetected failures count as failure-free successes, so the \
             delivered P(met target) collapses as detection degrades — the \
             §4.1 warning made operational.",
            "detect prob",
            &[SeriesSpec::new("P(met target)", "P(met target)")],
        )
        .labels("detection probability", "P(achieved pfd ≤ target)"),
    ],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E15: adaptive campaigns under conservative stopping rules (§2, ref [3])\n");
    let w = medium_cascade(11);
    let scenario = w.scenario().build().expect("valid world");
    let replications = ctx.replications(SPEC.full_replications);
    let confidence = 0.95;
    // Binomial noise on the met-target rate at the active budget; the
    // calibration tolerances widen with it at reduced profiles.
    let rate_se = (confidence * (1.0 - confidence) / replications as f64).sqrt();

    let mut table = Table::new(
        "failure-free rule calibration (perfect oracle)",
        &[
            "target pfd",
            "min run",
            "mean demands",
            "mean achieved pfd",
            "P(met target)",
        ],
    );
    for &target in &[0.05, 0.02, 0.01, 0.005] {
        let rule = StoppingRule::FailureFree { target, confidence };
        // One MC cell per target (seed = target·10⁴, encoded in the key).
        let cell = ctx.cell(
            format!(
                "world=medium-cascade(11)|target={target}|conf={confidence}|reps={replications}|study=calibration"
            ),
            |scope| {
                let study = scenario.with_seed((target * 1e4) as u64).adaptive_study(
                    rule,
                    100_000,
                    target,
                    replications,
                    scope.threads(),
                );
                vec![
                    study.demands.mean(),
                    study.achieved_pfd.mean(),
                    study.target_met_rate,
                    study.rule_fired_rate,
                ]
            },
        );
        let (demands_mean, achieved_mean) = (cell.get(0), cell.get(1));
        let (target_met_rate, rule_fired_rate) = (cell.get(2), cell.get(3));
        let min_run = failure_free_tests_required(target, confidence).expect("valid");
        table.row(&[
            format!("{target}"),
            min_run.to_string(),
            format!("{demands_mean:.1}"),
            format!("{achieved_mean:.6}"),
            format!("{target_met_rate:.3}"),
        ]);
        ctx.check(
            rule_fired_rate > 0.99,
            format!("rule fires at target {target}"),
        );
        // Debugging *while* demonstrating: the delivered assurance must be
        // at least the nominal confidence (testing only improves things
        // after a failure resets the run).
        ctx.check(
            target_met_rate >= confidence - 0.03 - 2.0 * rate_se,
            format!("calibration holds at target {target}: {target_met_rate}"),
        );
    }
    ctx.emit(table, "e15_calibration");

    // §4.1 interaction: a fallible oracle silently weakens the guarantee.
    let target = 0.01;
    let rule = StoppingRule::FailureFree { target, confidence };
    let mut table2 = Table::new(
        "same rule under imperfect detection (target 0.01 @ 95%)",
        &[
            "detect prob",
            "mean demands",
            "mean achieved pfd",
            "P(met target)",
        ],
    );
    let mut last_met = 2.0;
    for &detect in &[1.0, 0.75, 0.5, 0.25, 0.1] {
        // One MC cell per detection level (seed 9000+100·detect).
        let cell = ctx.cell(
            format!(
                "world=medium-cascade(11)|target={target}|detect={detect}|reps={replications}|study=fallible-oracle"
            ),
            |scope| {
                let study = scenario
                    .with_oracle(ImperfectOracle::new(detect).expect("valid"))
                    .with_seed(9_000 + (detect * 100.0) as u64)
                    .adaptive_study(rule, 100_000, target, replications, scope.threads());
                vec![
                    study.demands.mean(),
                    study.achieved_pfd.mean(),
                    study.target_met_rate,
                ]
            },
        );
        let target_met_rate = cell.get(2);
        table2.row(&[
            format!("{detect}"),
            format!("{:.1}", cell.get(0)),
            format!("{:.6}", cell.get(1)),
            format!("{target_met_rate:.3}"),
        ]);
        ctx.check(
            target_met_rate <= last_met + 0.05 + 2.0 * rate_se,
            format!("weaker detection does not improve calibration at detect={detect}"),
        );
        last_met = target_met_rate;
    }
    ctx.emit(table2, "e15_imperfect_oracle");

    ctx.note(
        "Claim reproduced: with a perfect oracle the failure-free rule delivers\n\
         (at least) its nominal confidence; undetected failures count as\n\
         successes, so a fallible oracle silently destroys the guarantee —\n\
         the §4.1 uncertainty made operational.",
    );
}
