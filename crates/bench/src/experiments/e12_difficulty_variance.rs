//! E12 — does testing reduce the variability of difficulty? (§3
//! discussion).
//!
//! The paper notes that if testing made `ζ(x)` constant across demands,
//! post-testing failures would be unconditionally independent; "at the
//! very least it seems desirable to reduce the variability of ζ(x). …
//! The other extreme case, increase of variability as a result of the
//! testing, is also possible." The experiment measures `Var_Q(Θ)` before
//! vs `Var_Q(Θ_T)` after testing across worlds and suite sizes, and
//! exhibits both directions — including the *relative* variability
//! (coefficient of variation), which is what drives the dependence ratio.

use std::sync::Arc;

use diversim_core::difficulty::DifficultyShift;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::demand::DemandSpace;
use diversim_universe::fault::FaultModelBuilder;
use diversim_universe::population::BernoulliPopulation;
use diversim_universe::profile::UsageProfile;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::{small_graded, World};

/// Declarative description of E12.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 12,
    slug: "e12",
    name: "e12_difficulty_variance",
    title: "How testing reshapes the variability of difficulty",
    paper_ref: "§3 discussion",
    claim: "testing lowers mean difficulty and can lower Var(ζ), but relative variability can grow",
    sweep: "small-graded and rare-hard worlds × suite sizes n ∈ {1, 2, 4, 8(, 16)}",
    full_replications: 0,
    figures: &[FigureSpec::new(
        0,
        "The coefficient of variation of difficulty before vs after testing: \
         on the small-graded world testing tames variability, but on the \
         rare-hard world the relative variability *grows* with suite size — \
         the paper's 'other extreme case'.",
        "n",
        &[
            SeriesSpec::new("CV before — small-graded", "CV before").only("world", "small-graded"),
            SeriesSpec::new("CV after — small-graded", "CV after").only("world", "small-graded"),
            SeriesSpec::new("CV before — rare-hard", "CV before").only("world", "rare-hard"),
            SeriesSpec::new("CV after — rare-hard", "CV after").only("world", "rare-hard"),
        ],
    )
    .labels("suite size n", "coefficient of variation of difficulty")],
    run,
};

/// A world where operational testing *increases* absolute difficulty
/// variance: one very hard, rarely-used demand and several easy, heavily
/// used ones. Testing removes the easy mass quickly while the hard
/// demand's difficulty barely moves, spreading the ζ values apart...
/// relative to their shrunken mean.
fn rare_hard_world() -> World {
    let space = DemandSpace::new(5).expect("non-empty");
    let model = Arc::new(
        FaultModelBuilder::new(space)
            .singleton_faults()
            .build()
            .expect("valid"),
    );
    let pop =
        BernoulliPopulation::new(Arc::clone(&model), vec![0.3, 0.3, 0.3, 0.3, 0.9]).expect("valid");
    // Demand 4 (the hard one) is almost never exercised.
    let profile = UsageProfile::from_weights(space, vec![0.2475, 0.2475, 0.2475, 0.2475, 0.01])
        .expect("valid");
    World::symmetric("rare-hard", pop, profile)
}

fn run(ctx: &mut RunContext) {
    ctx.note("E12: how testing reshapes the variability of difficulty (§3 discussion)\n");
    let mut table = Table::new(
        "difficulty moments before/after testing",
        &[
            "world",
            "n",
            "E[theta]",
            "Var(theta)",
            "E[zeta]",
            "Var(zeta)",
            "CV before",
            "CV after",
        ],
    );

    let mut saw_decrease = false;
    let mut saw_cv_increase = false;

    for (world, sizes) in [
        (small_graded(), vec![1usize, 2, 4, 8]),
        (rare_hard_world(), vec![1usize, 2, 4, 8, 16]),
    ] {
        for &n in &sizes {
            let world_key = world.label().split(' ').next().expect("label").to_string();
            // One exact cell per (world, n): the four difficulty moments
            // plus the variance-reduced predicate.
            let cell = ctx.cell(
                format!("world={world_key}|n={n}|study=difficulty-shift"),
                |_scope| {
                    let m = enumerate_iid_suites(&world.profile, n, 1 << 16).expect("enumerable");
                    let shift = DifficultyShift::compute(&world.pop_a, &m, &world.profile);
                    vec![
                        shift.mean_before,
                        shift.var_before,
                        shift.mean_after,
                        shift.var_after,
                        if shift.variance_reduced() { 1.0 } else { 0.0 },
                    ]
                },
            );
            let (mean_before, var_before) = (cell.get(0), cell.get(1));
            let (mean_after, var_after) = (cell.get(2), cell.get(3));
            let cv_before = var_before.sqrt() / mean_before.max(1e-12);
            let cv_after = var_after.sqrt() / mean_after.max(1e-12);
            table.row(&[
                world_key,
                n.to_string(),
                format!("{mean_before:.6}"),
                format!("{var_before:.6}"),
                format!("{mean_after:.6}"),
                format!("{var_after:.6}"),
                format!("{cv_before:.3}"),
                format!("{cv_after:.3}"),
            ]);
            ctx.check(
                mean_after <= mean_before + 1e-15,
                format!("mean difficulty does not rise ({} n={n})", world.label()),
            );
            if cell.get(4) == 1.0 {
                saw_decrease = true;
            }
            if cv_after > cv_before {
                saw_cv_increase = true;
            }
        }
    }

    ctx.emit(table, "e12_difficulty_variance");
    ctx.check(
        saw_decrease,
        "at least one variance-reducing configuration exists",
    );
    ctx.check(
        saw_cv_increase,
        "at least one configuration increases relative variability",
    );
    ctx.note(
        "Claim reproduced: testing always lowers mean difficulty, and can lower\n\
         the absolute variance of difficulty — but the *relative* variability\n\
         (and with it the dependence ratio E[Θ_T²]/E[Θ_T]²) can grow, the\n\
         paper's \"other extreme case\".",
    );
}
