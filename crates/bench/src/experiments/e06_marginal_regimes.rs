//! E6 — the headline marginal result, equations (22) vs (23).
//!
//! Paper claim: "the use of a common test suite increases the marginal
//! probability of system failure", by exactly `Σ_x Var_Ξ(ξ(x,T))Q(x) ≥ 0`.
//! The experiment sweeps the suite size, reporting both regimes' system
//! pfds (exact and Monte Carlo), the penalty, and the ratio.

use diversim_core::marginal::{MarginalAnalysis, SuiteAssignment};
use diversim_sim::campaign::CampaignRegime;
use diversim_testing::suite_population::enumerate_iid_suites;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::small_graded;

/// Declarative description of E6.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 6,
    slug: "e06",
    name: "e06_marginal_regimes",
    title: "Shared vs independent suites: the marginal system pfd",
    paper_ref: "eqs (22)–(23)",
    claim: "shared-suite testing is never better marginally; penalty = Σ_x Var_Ξ(ξ(x,T))Q(x) ≥ 0",
    sweep: "suite size n ∈ {0, 1, 2, 4, 6, 8, 12}, both regimes, exact + MC",
    full_replications: 30_000,
    figures: &[FigureSpec::new(
        0,
        "The headline result: the marginal system pfd under independent \
         (eq 22) vs shared (eq 23) suites as testing effort grows. The Monte \
         Carlo estimates (±2·SE bands) straddle the exact curves; the gap \
         between the regimes is the non-negative eq-23 penalty.",
        "n",
        &[
            SeriesSpec::new("independent suites (eq 22)", "indep (eq22)"),
            SeriesSpec::new("shared suite (eq 23)", "shared (eq23)"),
            SeriesSpec::new("MC independent", "MC indep").band("MC indep se"),
            SeriesSpec::new("MC shared", "MC shared").band("MC shared se"),
        ],
    )
    .labels("suite size n", "system pfd")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E6: shared vs independent suites — the marginal system pfd (eqs 22–23)\n");
    let w = small_graded();
    let scenario = w.scenario().build().expect("valid world");
    let replications = ctx.replications(SPEC.full_replications);
    let mut table = Table::new(
        "system pfd vs suite size (exact + MC)",
        &[
            "n",
            "indep (eq22)",
            "shared (eq23)",
            "penalty",
            "shared/indep",
            "MC indep",
            "MC indep se",
            "MC shared",
            "MC shared se",
        ],
    );

    for n in [0usize, 1, 2, 4, 6, 8, 12] {
        // One cell per suite size: exact eq-22/eq-23 values plus both MC
        // estimates (seeds 600+n / 700+n, encoded in the key).
        let cell = ctx.cell(
            format!(
                "world=small-graded|n={n}|seeds=600+n,700+n|reps={replications}|study=eq22-vs-eq23"
            ),
            |scope| {
                let m = enumerate_iid_suites(&w.profile, n, 1 << 16).expect("enumerable");
                let ind = MarginalAnalysis::compute(
                    &w.pop_a,
                    &w.pop_a,
                    SuiteAssignment::independent(&m),
                    &w.profile,
                );
                let sh = MarginalAnalysis::compute(
                    &w.pop_a,
                    &w.pop_a,
                    SuiteAssignment::Shared(&m),
                    &w.profile,
                );
                let mc_ind = scenario
                    .with_suite_size(n)
                    .with_regime(CampaignRegime::IndependentSuites)
                    .with_seed(600 + n as u64)
                    .estimate(replications, scope.threads());
                let mc_sh = scenario
                    .with_suite_size(n)
                    .with_seed(700 + n as u64)
                    .estimate(replications, scope.threads());
                vec![
                    ind.system_pfd(),
                    sh.system_pfd(),
                    sh.suite_coupling,
                    mc_ind.system_pfd.mean,
                    mc_ind.system_pfd.standard_error,
                    mc_sh.system_pfd.mean,
                    mc_sh.system_pfd.standard_error,
                ]
            },
        );
        let (ind_pfd, sh_pfd, penalty) = (cell.get(0), cell.get(1), cell.get(2));
        let (mc_ind_mean, mc_ind_se) = (cell.get(3), cell.get(4));
        let (mc_sh_mean, mc_sh_se) = (cell.get(5), cell.get(6));
        let ratio = if ind_pfd > 0.0 { sh_pfd / ind_pfd } else { 1.0 };
        table.row(&[
            n.to_string(),
            format!("{ind_pfd:.6}"),
            format!("{sh_pfd:.6}"),
            format!("{penalty:.6}"),
            format!("{ratio:.3}"),
            format!("{mc_ind_mean:.6}"),
            format!("{mc_ind_se:.6}"),
            format!("{mc_sh_mean:.6}"),
            format!("{mc_sh_se:.6}"),
        ]);

        ctx.check(sh_pfd + 1e-12 >= ind_pfd, format!("eq23 ≥ eq22 at n={n}"));
        ctx.check(penalty >= -1e-12, format!("non-negative penalty at n={n}"));
        ctx.check(
            (mc_ind_mean - ind_pfd).abs() < 4.0 * mc_ind_se + 1e-9,
            format!("MC agrees with exact (independent) at n={n}"),
        );
        ctx.check(
            (mc_sh_mean - sh_pfd).abs() < 4.0 * mc_sh_se + 1e-9,
            format!("MC agrees with exact (shared) at n={n}"),
        );
    }

    ctx.emit(table, "e06_marginal_regimes");
    ctx.note(
        "Claim reproduced: shared-suite testing is never better and typically\n\
         much worse marginally (ratio grows as testing removes the easy faults);\n\
         at n=0 the regimes coincide with the untested EL value.",
    );
}
