//! E7 — forced diversity marginals, equations (24) vs (25).
//!
//! Paper claim: under forced design diversity the shared-suite term
//! `Σ_x Cov_Ξ(ξ_A(x,T), ξ_B(x,T))Q(x)` can be positive or negative, so
//! "in principle, the system tested with the same test suite can be more
//! reliable than if the versions were tested individually" — which is
//! counterintuitive because the shared suite is also cheaper. The
//! experiment exhibits a world for each sign.

use diversim_core::marginal::{MarginalAnalysis, SuiteAssignment};
use diversim_testing::suite_population::enumerate_iid_suites;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::{mirrored, negative_coupling};

/// Declarative description of E7.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 7,
    slug: "e07",
    name: "e07_forced_marginal",
    title: "Forced diversity: either suite regime can win marginally",
    paper_ref: "eqs (24)–(25)",
    claim:
        "the eq-25 coupling term takes both signs across worlds; the cheaper shared suite can win",
    sweep: "mirrored and negative-coupling worlds × suite sizes n ∈ {1, 2, 3}",
    full_replications: 0,
    figures: &[FigureSpec::new(
        0,
        "Eq 24 (independent suites) vs eq 25 (shared suite) on two forced-\
         diversity worlds: on the mirrored world independent suites win, but \
         on the negative-coupling world the cheaper shared suite delivers the \
         more reliable system.",
        "n",
        &[
            SeriesSpec::new("independent — mirrored", "indep (eq24)").only("world", "mirrored"),
            SeriesSpec::new("shared — mirrored", "shared (eq25)").only("world", "mirrored"),
            SeriesSpec::new("independent — neg-coupling", "indep (eq24)")
                .only("world", "neg-coupling"),
            SeriesSpec::new("shared — neg-coupling", "shared (eq25)").only("world", "neg-coupling"),
        ],
    )
    .labels("suite size n", "system pfd")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E7: forced diversity — either regime can win marginally (eqs 24–25)\n");
    let mut table = Table::new(
        "eq 24 vs eq 25 across worlds",
        &[
            "world",
            "n",
            "indep (eq24)",
            "shared (eq25)",
            "coupling",
            "winner",
        ],
    );

    let mut saw_shared_win = false;
    let mut saw_indep_win = false;

    for (label, cell_key, world) in [
        ("mirrored", "mirrored(0.8,0.1)", mirrored(0.8, 0.1)),
        ("neg-coupling", "negative-coupling", negative_coupling()),
    ] {
        for n in [1usize, 2, 3] {
            // One exact cell per (world, n): [eq24 pfd, eq25 pfd, coupling].
            let cell = ctx.cell(
                format!("world={cell_key}|n={n}|study=eq24-vs-eq25"),
                |_scope| {
                    let m = enumerate_iid_suites(&world.profile, n, 1 << 14).expect("enumerable");
                    let ind = MarginalAnalysis::compute(
                        &world.pop_a,
                        &world.pop_b,
                        SuiteAssignment::independent(&m),
                        &world.profile,
                    );
                    let sh = MarginalAnalysis::compute(
                        &world.pop_a,
                        &world.pop_b,
                        SuiteAssignment::Shared(&m),
                        &world.profile,
                    );
                    vec![ind.system_pfd(), sh.system_pfd(), sh.suite_coupling]
                },
            );
            let (ind_pfd, sh_pfd, coupling) = (cell.get(0), cell.get(1), cell.get(2));
            let winner = if sh_pfd < ind_pfd - 1e-15 {
                saw_shared_win = true;
                "SHARED"
            } else if ind_pfd < sh_pfd - 1e-15 {
                saw_indep_win = true;
                "indep"
            } else {
                "tie"
            };
            table.row(&[
                label.to_string(),
                n.to_string(),
                format!("{ind_pfd:.6}"),
                format!("{sh_pfd:.6}"),
                format!("{coupling:+.6}"),
                winner.to_string(),
            ]);
        }
    }

    ctx.emit(table, "e07_forced_marginal");
    ctx.check(saw_indep_win, "a world exists where independent suites win");
    ctx.check(saw_shared_win, "a world exists where the shared suite wins");
    ctx.note(
        "Claim reproduced: the eq-25 coupling term takes both signs across\n\
         worlds — with negative coupling the cheaper shared suite delivers the\n\
         more reliable system, the paper's counterintuitive possibility.",
    );
}
