//! E20 — test-budget allocation across the components of a structured
//! pair.
//!
//! E17/e18 showed adaptive policies steering a shared execution budget
//! between two versions of a 1-out-of-2 pair. This experiment composes
//! the same policies with *structure*: the identical two components
//! (asymmetric world: A's faults are broad and quick to flush, B's are
//! narrow and slow) are wired once as parallel redundancy (`AND` of
//! failures, the paper's 1-out-of-2) and once as a series system (`OR`
//! of failures), and every campaign is scored by the structure's system
//! pfd:
//!
//! * the static baselines flip: a shared suite *penalises* the parallel
//!   system (eq 23) but mildly *helps* the series system (the coupling
//!   inflates the joint term inclusion–exclusion subtracts);
//! * series wiring is uniformly riskier than parallel wiring for every
//!   policy at every budget — structure dominates allocation;
//! * under *parallel* wiring each adaptive policy's delivered pfd lands
//!   between that wiring's static extremes, but under *series* wiring
//!   the failure-chasing policies overshoot the envelope: concentrating
//!   budget on one component starves the other, and a series system
//!   fails through its most-starved component. The policies were tuned
//!   for 1-out-of-2 scoring, and the mismatch shows;
//! * more budget helps under both wirings.

use std::sync::Arc;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::{asymmetric, World};
use diversim_core::structure::Structure;
use diversim_sim::campaign::CampaignRegime;
use diversim_sim::policy::PolicySpec;
use diversim_sim::scenario::Scenario;
use diversim_sim::system::SystemSpec;

/// The shipped policies, keyed by their stable `Display` labels.
const POLICIES: [PolicySpec; 4] = [
    PolicySpec::RoundRobin,
    PolicySpec::GreedyOnFailures,
    PolicySpec::EpsilonGreedy { epsilon: 0.1 },
    PolicySpec::UcbIndex { c: 0.5 },
];

/// Static suite size of the baselines; the adaptive budget is `2n`.
const SUITE: usize = 8;

/// Adaptive budgets of the budget sweep.
const BUDGETS: [usize; 4] = [4, 8, 16, 32];

/// The two wirings of the same component pair.
fn wirings() -> [(&'static str, Structure); 2] {
    [
        ("parallel-2", Structure::one_out_of_n(2)),
        ("series-2", Structure::series(2)),
    ]
}

/// Declarative description of E20.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 20,
    slug: "e20",
    name: "e20_component_allocation",
    title: "Budget allocation across the components of a structured pair",
    paper_ref: "§3.1/eq (23) composed with adaptive allocation",
    claim: "structure dominates allocation: series wiring is uniformly riskier; policies interpolate the parallel extremes but failure-chasing overshoots the series envelope",
    sweep: "wirings {parallel-2, series-2} × 4 policies at budget 16 vs static n=8; budget sweep {4,8,16,32}",
    full_replications: 20_000,
    figures: &[
        FigureSpec::new(
            0,
            "Delivered system pfd of every allocation policy under both \
             wirings of the same asymmetric component pair (budget 16 ↔ \
             static suite 8). Series wiring is uniformly riskier; the \
             policies sit between the parallel wiring's static baselines \
             but the failure-chasing ones overshoot the series envelope \
             (budget concentration starves a component the OR system \
             depends on). Bands are ±2·SE.",
            "arm",
            &[
                SeriesSpec::new("parallel-2", "system pfd")
                    .band("se")
                    .only("wiring", "parallel-2"),
                SeriesSpec::new("series-2", "system pfd")
                    .band("se")
                    .only("wiring", "series-2"),
            ],
        )
        .labels(
            "arm (0=independent, 1=shared, 2=round-robin, 3=greedy, 4=eps-greedy, 5=UCB)",
            "system pfd",
        )
        .log_y(),
        FigureSpec::new(
            1,
            "System pfd vs adaptive budget (greedy-on-failures policy): \
             more budget helps under both wirings, and the series/parallel \
             gap persists at every budget.",
            "budget",
            &[
                SeriesSpec::new("parallel-2", "system pfd")
                    .band("se")
                    .only("wiring", "parallel-2"),
                SeriesSpec::new("series-2", "system pfd")
                    .band("se")
                    .only("wiring", "series-2"),
            ],
        )
        .labels("adaptive budget", "system pfd")
        .log_x()
        .log_y(),
    ],
    run,
};

/// Builds the system scenario for one wiring of the asymmetric pair.
fn system_scenario(
    w: &World,
    structure: &Structure,
    regime: CampaignRegime,
    suite: usize,
) -> Scenario {
    let spec = SystemSpec::new(
        structure.clone(),
        vec![Arc::new(w.pop_a.clone()), Arc::new(w.pop_b.clone())],
    )
    .expect("valid system");
    w.scenario()
        .system(spec)
        .suite_size(suite)
        .regime(regime)
        .seed(2000)
        .build()
        .expect("valid scenario")
}

fn run(ctx: &mut RunContext) {
    ctx.note("E20: budget allocation across the components of a structured pair\n");
    let w = asymmetric();
    let replications = ctx.replications(SPEC.full_replications);

    let mut table = Table::new(
        "policy × wiring (asymmetric world, budget 16 vs static n=8)",
        &[
            "arm",
            "policy",
            "wiring",
            "shared fraction",
            "system pfd",
            "se",
        ],
    );

    for (wiring, structure) in wirings() {
        // Static baselines of this wiring.
        let baseline = |ctx: &mut RunContext, label: &str, regime: CampaignRegime| {
            ctx.cell(
                format!(
                    "world=asymmetric|suite={SUITE}|wiring={wiring}|regime={label}|reps={replications}|study=structure-baseline"
                ),
                |scope| {
                    let est = system_scenario(&w, &structure, regime, SUITE)
                        .system_estimate(replications, scope.threads())
                        .expect("suite regime");
                    vec![est.system_pfd.mean, est.system_pfd.standard_error]
                },
            )
        };
        let ind = baseline(ctx, "independent", CampaignRegime::IndependentSuites);
        let sh = baseline(ctx, "shared", CampaignRegime::SharedSuite);
        let (ind_mean, ind_se) = (ind.get(0), ind.get(1));
        let (sh_mean, sh_se) = (sh.get(0), sh.get(1));
        match wiring {
            "parallel-2" => ctx.check(
                sh_mean >= ind_mean - 2.0 * (ind_se + sh_se),
                "a shared suite does not help the parallel wiring",
            ),
            _ => ctx.check(
                sh_mean <= ind_mean + 2.0 * (ind_se + sh_se),
                "a shared suite does not hurt the series wiring",
            ),
        }
        table.row(&[
            "0".into(),
            "independent (static)".into(),
            wiring.into(),
            "0.000".into(),
            format!("{ind_mean:.6}"),
            format!("{ind_se:.6}"),
        ]);
        table.row(&[
            "1".into(),
            "shared (static)".into(),
            wiring.into(),
            "1.000".into(),
            format!("{sh_mean:.6}"),
            format!("{sh_se:.6}"),
        ]);

        // The adaptive policies under this wiring.
        let (lo, hi) = (ind_mean.min(sh_mean), ind_mean.max(sh_mean));
        let mut delivered: Vec<(f64, f64)> = Vec::new();
        for (i, policy) in POLICIES.iter().enumerate() {
            let seed = 2010 + i as u64;
            let cell = ctx.cell(
                format!(
                    "world=asymmetric|budget={}|wiring={wiring}|policy={policy}|seed={seed}|reps={replications}|study=structure-allocation",
                    2 * SUITE
                ),
                |scope| {
                    let scenario = system_scenario(
                        &w,
                        &structure,
                        CampaignRegime::Adaptive(*policy),
                        2 * SUITE,
                    )
                    .with_seed(seed);
                    let est = scenario
                        .system_estimate(replications, scope.threads())
                        .expect("two-component system");
                    let study = scenario
                        .policy_study(replications, scope.threads())
                        .expect("adaptive scenario");
                    vec![
                        est.system_pfd.mean,
                        est.system_pfd.standard_error,
                        study.shared_fraction.mean(),
                    ]
                },
            );
            let (mean, se, frac) = (cell.get(0), cell.get(1), cell.get(2));
            table.row(&[
                (2 + i).to_string(),
                policy.to_string(),
                wiring.into(),
                format!("{frac:.3}"),
                format!("{mean:.6}"),
                format!("{se:.6}"),
            ]);
            let slack = 4.0 * (se + ind_se + sh_se);
            if wiring == "parallel-2" {
                ctx.check(
                    (lo - slack..=hi + slack).contains(&mean),
                    format!("{policy} interpolates the {wiring} static extremes"),
                );
            } else {
                // A series system cannot be gamed below the static
                // envelope by reallocating the same budget.
                ctx.check(
                    mean >= lo - slack,
                    format!("{policy} does not beat the {wiring} static envelope"),
                );
            }
            if i == 0 {
                ctx.check(
                    frac == 0.0,
                    format!("round-robin allocates no shared demands under {wiring}, exactly"),
                );
            }
            delivered.push((mean, se));
        }
        if wiring == "series-2" {
            // POLICIES[0] is round-robin, POLICIES[1] greedy-on-failures.
            let (rr, greedy) = (delivered[0], delivered[1]);
            ctx.check(
                greedy.0 >= rr.0 + 2.0 * (rr.1 + greedy.1),
                "failure-chasing concentration hurts the series wiring vs round-robin",
            );
        }
    }
    ctx.emit(table, "e20_component_allocation");

    // ── Budget sweep: structure dominates allocation at every effort ──
    let mut sweep = Table::new(
        "budget sweep (greedy-on-failures policy)",
        &["budget", "wiring", "system pfd", "se"],
    );
    let mut by_budget: Vec<(f64, f64, f64, f64)> = Vec::new();
    for budget in BUDGETS {
        let mut row: Vec<f64> = Vec::new();
        for (wiring, structure) in wirings() {
            let cell = ctx.cell(
                format!(
                    "world=asymmetric|budget={budget}|wiring={wiring}|policy=greedy-on-failures|reps={replications}|study=structure-budget-sweep"
                ),
                |scope| {
                    let est = system_scenario(
                        &w,
                        &structure,
                        CampaignRegime::Adaptive(PolicySpec::GreedyOnFailures),
                        budget,
                    )
                    .system_estimate(replications, scope.threads())
                    .expect("two-component system");
                    vec![est.system_pfd.mean, est.system_pfd.standard_error]
                },
            );
            sweep.row(&[
                budget.to_string(),
                wiring.into(),
                format!("{:.6}", cell.get(0)),
                format!("{:.6}", cell.get(1)),
            ]);
            row.push(cell.get(0));
            row.push(cell.get(1));
        }
        ctx.check(
            row[2] >= row[0] + 2.0 * (row[1] + row[3]),
            format!("series wiring is riskier than parallel at budget {budget}"),
        );
        by_budget.push((row[0], row[1], row[2], row[3]));
    }
    let (first, last) = (by_budget[0], by_budget[by_budget.len() - 1]);
    ctx.check(
        last.0 <= first.0 - 2.0 * (first.1 + last.1),
        "more budget helps the parallel wiring",
    );
    ctx.check(
        last.2 <= first.2 - 2.0 * (first.3 + last.3),
        "more budget helps the series wiring",
    );
    ctx.emit(sweep, "e20_budget_sweep");

    ctx.note(
        "\nClaim reproduced: wiring the same tested pair in series is uniformly\n\
         riskier than in parallel at every budget and under every allocation\n\
         policy; the static regime ordering flips with the wiring (shared\n\
         hurts AND, helps OR); policies interpolate the parallel wiring's\n\
         static extremes, while under series wiring the failure-chasing\n\
         policies overshoot the envelope — concentrating budget starves a\n\
         component the OR system depends on.",
    );
}
