//! E8 — the §3.4.1 cost trade-off.
//!
//! Paper discussion: with free test *execution*, merging the two generated
//! suites (2n demands, shared) beats independent n-demand suites — "with
//! the longer test not only the individual reliability of the versions is
//! going to be better but so is the system reliability"; with expensive
//! execution the comparison at equal *run budget* (n demands per version)
//! favours independent suites. The experiment measures three budgets:
//!
//! * independent: one n-demand suite per version (2n executions total);
//! * shared-n: one n-demand suite run on both versions (2n executions);
//! * merged-2n: the union of two n-demand suites run on both versions
//!   (4n executions — the "free running" scenario).

use diversim_sim::campaign::CampaignRegime;
use diversim_sim::scenario::SeedPolicy;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::medium_cascade;

/// Declarative description of E8.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 8,
    slug: "e08",
    name: "e08_cost_tradeoff",
    title: "§3.4.1 cost trade-off: merged 2n shared vs independent n vs shared n",
    paper_ref: "§3.4.1",
    claim: "at equal run budget independent suites win; with free execution merged 2n shared wins",
    sweep: "suite size n ∈ {5, 10, 20, 40, 80} on the medium-cascade world",
    full_replications: 4_000,
    figures: &[FigureSpec::new(
        0,
        "Three readings of the same test budget: at equal executions \
         independent n-demand suites beat the shared n-demand suite, but \
         when running tests is free the merged 2n-demand shared suite wins \
         both comparisons — the §3.4.1 trade-off.",
        "n",
        &[
            SeriesSpec::new("independent (n each)", "independent(n each)"),
            SeriesSpec::new("shared (n)", "shared(n)"),
            SeriesSpec::new("merged (2n shared)", "merged(2n shared)"),
        ],
    )
    .labels("suite size n", "system pfd")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E8: §3.4.1 cost trade-off — merged 2n shared vs independent n vs shared n\n");
    let w = medium_cascade(11);
    let scenario = w.scenario().build().expect("valid world");
    let replications = ctx.replications(SPEC.full_replications);
    let mut table = Table::new(
        "system pfd by budget interpretation",
        &[
            "n",
            "independent(n each)",
            "shared(n)",
            "merged(2n shared)",
            "best",
        ],
    );

    for n in [5usize, 10, 20, 40, 80] {
        // One MC cell per suite size: all three budget arms, seeds encoded
        // in the key (800+n / 900+n / offset-10000 merged policy).
        let cell = ctx.cell(
            format!(
                "world=medium-cascade(11)|n={n}|seeds=800+n,900+n,off10000|reps={replications}|study=budget-arms"
            ),
            |scope| {
                let ind = scenario
                    .with_suite_size(n)
                    .with_regime(CampaignRegime::IndependentSuites)
                    .with_seed(800 + n as u64)
                    .estimate(replications, scope.threads());
                let shared = scenario
                    .with_suite_size(n)
                    .with_seed(900 + n as u64)
                    .estimate(replications, scope.threads());
                // Merged arm via the paired comparison study (consecutive
                // seeds to match the historical single-thread runs).
                let merged = scenario
                    .with_seeds(SeedPolicy::offset(10_000))
                    .merged_estimate(n, replications, scope.threads())
                    .merged_system;
                vec![
                    ind.system_pfd.mean,
                    ind.system_pfd.standard_error,
                    shared.system_pfd.mean,
                    shared.system_pfd.standard_error,
                    merged.mean,
                    merged.standard_error,
                ]
            },
        );
        let (ind_mean, ind_se) = (cell.get(0), cell.get(1));
        let (shared_mean, shared_se) = (cell.get(2), cell.get(3));
        let (merged_mean, merged_se) = (cell.get(4), cell.get(5));
        let vals = [ind_mean, shared_mean, merged_mean];
        let best = ["independent", "shared", "merged"][vals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")];
        table.row(&[
            n.to_string(),
            format!("{ind_mean:.6}"),
            format!("{shared_mean:.6}"),
            format!("{merged_mean:.6}"),
            best.to_string(),
        ]);

        // Qualitative claims: at equal run budget, independent ≤ shared;
        // with free running, merged ≤ independent. Both arms of each
        // comparison are Monte Carlo, so the slack combines both SEs.
        ctx.check(
            ind_mean <= shared_mean + 3.0 * (ind_se + shared_se),
            format!("independent beats shared at equal run budget (n={n})"),
        );
        ctx.check(
            merged_mean <= ind_mean + 3.0 * (merged_se + ind_se),
            format!("merged 2n beats independent n (n={n})"),
        );
    }

    ctx.emit(table, "e08_cost_tradeoff");
    ctx.note(
        "Claim reproduced: at equal execution budget independent suites win\n\
         (diversity preserved); if execution is free the merged 2n shared suite\n\
         wins (more faults removed trumps lost diversity) — the two poles of the\n\
         paper's cost discussion.",
    );
}
