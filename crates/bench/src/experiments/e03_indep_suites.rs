//! E3 — conditional independence under independent suites, equations
//! (16)–(19).
//!
//! Paper claim: "if the versions are tested on independently chosen test
//! suites, the conditional independence is preserved after the testing, no
//! matter whether diversity is employed in development only or in the
//! selection of the test suites as well." The experiment verifies, per
//! demand, that the brute-force joint probability equals `ζ_A(x)·ζ_B(x)`
//! in all four §3.1/§3.2 regimes.

use diversim_core::difficulty::zeta;
use diversim_exact::brute;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::population::Population;
use diversim_universe::profile::UsageProfile;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::{mirrored, small_graded};

/// Declarative description of E3.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 3,
    slug: "e03",
    name: "e03_indep_suites",
    title: "Independent suites preserve conditional independence",
    paper_ref: "eqs (16)–(19)",
    claim: "per demand, brute joint = ζ_A(x)·ζ_B(x) in all four independent-suite regimes",
    sweep: "regimes 16/17/18/19 × suite sizes n ∈ {1, 2(, 3)}",
    full_replications: 0,
    figures: &[FigureSpec::new(
        0,
        "Worst-case factorisation error |brute joint − ζ_A·ζ_B| across all \
         demands, per regime and suite size — pure accumulation rounding, \
         orders of magnitude below any statistical scale (log axis; exact \
         zeros cannot be placed and are omitted).",
        "suite size",
        &[
            SeriesSpec::new("eq 16 (same pop, same proc)", "max abs error")
                .only("regime", "eq16 same-pop/same-proc"),
            SeriesSpec::new("eq 17 (forced design)", "max abs error")
                .only("regime", "eq17 forced-design"),
            SeriesSpec::new("eq 18 (forced testing)", "max abs error")
                .only("regime", "eq18 forced-testing"),
            SeriesSpec::new("eq 19 (design + testing)", "max abs error")
                .only("regime", "eq19 forced-design+testing"),
        ],
    )
    .labels("suite size n", "max |brute − ζ_A·ζ_B|")
    .log_y()],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E3: independent suites preserve conditional independence (eqs 16–19)\n");
    let mut table = Table::new(
        "max |brute joint − ζ_A·ζ_B| over all demands",
        &["regime", "suite size", "max abs error"],
    );

    // Regime (16): same population, same suite procedure.
    let w = small_graded();
    let support = w.pop_a.enumerate(1 << 12).expect("enumerable");
    for n in [1usize, 2, 3] {
        let max_err = ctx
            .cell(format!("regime=eq16|world=small-graded|n={n}"), |_scope| {
                let m = enumerate_iid_suites(&w.profile, n, 1 << 14).expect("enumerable");
                let max_err = w
                    .profile
                    .space()
                    .iter()
                    .map(|x| {
                        let brute_joint = brute::joint_on_demand_independent(
                            &support,
                            &support,
                            &m,
                            &m,
                            w.pop_a.model(),
                            x,
                        );
                        let z = zeta(&w.pop_a, x, &m);
                        (brute_joint - z * z).abs()
                    })
                    .fold(0.0, f64::max);
                vec![max_err]
            })
            .get(0);
        table.row(&[
            "eq16 same-pop/same-proc".into(),
            n.to_string(),
            format!("{max_err:.3e}"),
        ]);
        ctx.check(max_err < 1e-9, format!("eq16 factorises at n={n}"));
    }

    // Regime (17): forced design diversity, same suite procedure.
    let wf = mirrored(0.5, 0.05);
    let sa = wf.pop_a.enumerate(1 << 12).expect("enumerable");
    let sb = wf.pop_b.enumerate(1 << 12).expect("enumerable");
    for n in [1usize, 2] {
        let max_err = ctx
            .cell(
                format!("regime=eq17|world=mirrored(0.5,0.05)|n={n}"),
                |_scope| {
                    let m = enumerate_iid_suites(&wf.profile, n, 1 << 14).expect("enumerable");
                    let max_err = wf
                        .profile
                        .space()
                        .iter()
                        .map(|x| {
                            let brute_joint = brute::joint_on_demand_independent(
                                &sa,
                                &sb,
                                &m,
                                &m,
                                wf.pop_a.model(),
                                x,
                            );
                            let z = zeta(&wf.pop_a, x, &m) * zeta(&wf.pop_b, x, &m);
                            (brute_joint - z).abs()
                        })
                        .fold(0.0, f64::max);
                    vec![max_err]
                },
            )
            .get(0);
        table.row(&[
            "eq17 forced-design".into(),
            n.to_string(),
            format!("{max_err:.3e}"),
        ]);
        ctx.check(max_err < 1e-9, format!("eq17 factorises at n={n}"));
    }

    // Regimes (18)/(19): forced testing diversity — operational profile
    // for one version, debug-skewed profile for the other.
    let debug_profile =
        UsageProfile::from_weights(w.profile.space(), vec![0.05, 0.05, 0.1, 0.2, 0.3, 0.3])
            .expect("valid weights");
    for n in [1usize, 2] {
        let max_err = ctx
            .cell(
                format!("regime=eq18|world=small-graded|profile-b=debug-skewed|n={n}"),
                |_scope| {
                    let ma = enumerate_iid_suites(&w.profile, n, 1 << 14).expect("enumerable");
                    let mb = enumerate_iid_suites(&debug_profile, n, 1 << 14).expect("enumerable");
                    let max_err = w
                        .profile
                        .space()
                        .iter()
                        .map(|x| {
                            let brute_joint = brute::joint_on_demand_independent(
                                &support,
                                &support,
                                &ma,
                                &mb,
                                w.pop_a.model(),
                                x,
                            );
                            let z = zeta(&w.pop_a, x, &ma) * zeta(&w.pop_a, x, &mb);
                            (brute_joint - z).abs()
                        })
                        .fold(0.0, f64::max);
                    vec![max_err]
                },
            )
            .get(0);
        table.row(&[
            "eq18 forced-testing".into(),
            n.to_string(),
            format!("{max_err:.3e}"),
        ]);
        ctx.check(max_err < 1e-9, format!("eq18 factorises at n={n}"));

        // Forced design + forced testing: mirrored pops over the 8-demand
        // space, two different suite procedures.
        let max_err_19 = ctx
            .cell(
                format!("regime=eq19|world=mirrored(0.5,0.05)|profile-b=tail-heavy|n={n}"),
                |_scope| {
                    let mb8 = enumerate_iid_suites(
                        &UsageProfile::from_weights(
                            wf.profile.space(),
                            vec![0.05, 0.05, 0.05, 0.05, 0.2, 0.2, 0.2, 0.2],
                        )
                        .expect("valid"),
                        n,
                        1 << 14,
                    )
                    .expect("enumerable");
                    let ma8 = enumerate_iid_suites(&wf.profile, n, 1 << 14).expect("enumerable");
                    let max_err = wf
                        .profile
                        .space()
                        .iter()
                        .map(|x| {
                            let brute_joint = brute::joint_on_demand_independent(
                                &sa,
                                &sb,
                                &ma8,
                                &mb8,
                                wf.pop_a.model(),
                                x,
                            );
                            let z = zeta(&wf.pop_a, x, &ma8) * zeta(&wf.pop_b, x, &mb8);
                            (brute_joint - z).abs()
                        })
                        .fold(0.0, f64::max);
                    vec![max_err]
                },
            )
            .get(0);
        table.row(&[
            "eq19 forced-design+testing".into(),
            n.to_string(),
            format!("{max_err_19:.3e}"),
        ]);
        ctx.check(max_err_19 < 1e-9, format!("eq19 factorises at n={n}"));
    }

    ctx.emit(table, "e03_indep_suites");
    ctx.note(
        "Claim reproduced: in all four independent-suite regimes the joint\n\
         probability factorises as ζ_A(x)·ζ_B(x) on every demand (≤1e-9, pure accumulation rounding).",
    );
}
