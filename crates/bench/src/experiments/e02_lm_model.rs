//! E2 — Littlewood–Miller forced diversity, equations (9)/(10).
//!
//! Paper claim: with two methodologies the joint pfd is
//! `E[Θ_A]E[Θ_B] + Cov(Θ_A, Θ_B)`; a negative covariance means forced
//! diversity beats even the (unattainable) independence benchmark. The
//! experiment sweeps the degree of mirroring between two methodologies
//! from perfectly aligned to perfectly opposed.

use std::sync::Arc;

use diversim_core::lm::LmAnalysis;
use diversim_universe::demand::DemandSpace;
use diversim_universe::fault::FaultModelBuilder;
use diversim_universe::population::BernoulliPopulation;
use diversim_universe::profile::UsageProfile;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};

/// Declarative description of E2.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 2,
    slug: "e02",
    name: "e02_lm_model",
    title: "Littlewood–Miller: covariance of difficulties decides the benefit",
    paper_ref: "eqs (9)–(10)",
    claim: "joint pfd = E[Θ_A]E[Θ_B] + Cov(Θ_A,Θ_B); Cov < 0 beats independence",
    sweep: "methodology alignment ∈ {+1.0, +0.5, 0.0, −0.5, −1.0}",
    full_replications: 0,
    figures: &[FigureSpec::new(
        0,
        "Forcing the methodologies apart drives Cov(Θ_A, Θ_B) down; once it \
         turns negative the joint pfd (eq 9) drops below the independence \
         benchmark — the Littlewood–Miller headline.",
        "alignment",
        &[
            SeriesSpec::new("joint pfd (eq 9)", "joint (eq 9)"),
            SeriesSpec::new("independence benchmark", "indep bench"),
        ],
    )
    .labels("methodology alignment", "P(both versions fail)")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E2: Littlewood–Miller — covariance of difficulties decides the benefit (eqs 9–10)\n");
    let n = 8usize;
    let space = DemandSpace::new(n).expect("non-empty");
    let model = Arc::new(
        FaultModelBuilder::new(space)
            .singleton_faults()
            .build()
            .expect("valid"),
    );
    let q = UsageProfile::uniform(space);

    // Methodology A always finds the first half hard. Methodology B
    // interpolates from "same as A" (align=1) to "mirrored" (align=-1).
    let hi = 0.5;
    let lo = 0.05;
    let a_props: Vec<f64> = (0..n).map(|i| if i < n / 2 { hi } else { lo }).collect();
    let pop_a = BernoulliPopulation::new(Arc::clone(&model), a_props).expect("valid");

    let mut table = Table::new(
        "joint pfd vs methodology alignment",
        &[
            "alignment",
            "Cov(A,B)",
            "joint (eq 9)",
            "indep bench",
            "beats indep?",
        ],
    );

    let mut last_cov = f64::INFINITY;
    for &align in &[1.0, 0.5, 0.0, -0.5, -1.0] {
        // B's propensity on each fault interpolates between A's value
        // (align = 1) and the mirrored value (align = -1).
        let b_props: Vec<f64> = (0..n)
            .map(|i| {
                let same = if i < n / 2 { hi } else { lo };
                let mirror = if i < n / 2 { lo } else { hi };
                let w = (align + 1.0) / 2.0;
                w * same + (1.0 - w) * mirror
            })
            .collect();
        // One exact cell per alignment: [covariance, joint, indep, beats].
        let cell = ctx.cell(
            format!("world=lm-halfsplit(n={n},hi={hi},lo={lo})|align={align:+.1}"),
            |_scope| {
                let pop_b =
                    BernoulliPopulation::new(Arc::clone(&model), b_props.clone()).expect("valid");
                let lm = LmAnalysis::compute(&pop_a, &pop_b, &q);
                vec![
                    lm.covariance,
                    lm.joint_pfd,
                    lm.independent_pfd,
                    if lm.beats_independence() { 1.0 } else { 0.0 },
                ]
            },
        );
        let (covariance, joint, indep) = (cell.get(0), cell.get(1), cell.get(2));
        table.row(&[
            format!("{align:+.1}"),
            format!("{covariance:+.6}"),
            format!("{joint:.6}"),
            format!("{indep:.6}"),
            if cell.get(3) == 1.0 {
                "YES".into()
            } else {
                "no".into()
            },
        ]);
        ctx.check(
            covariance <= last_cov + 1e-15,
            format!("covariance falls with mirroring at alignment {align:+.1}"),
        );
        last_cov = covariance;
    }

    ctx.emit(table, "e02_lm_model");

    // Endpoint claims: aligned = EL-like positive covariance; mirrored =
    // negative covariance beating independence.
    ctx.note(
        "Claim reproduced: covariance falls monotonically as methodologies are\n\
         forced apart; the mirrored pair has Cov < 0 and a joint pfd *below*\n\
         the independence benchmark — the LM headline result.",
    );
}
