//! E16 — the assessment error of assuming independence after shared-suite
//! testing, with the exact imperfect-repair closed forms.
//!
//! The practical teeth of eqs (20)–(23): "(20) and (21) are important
//! because they preclude using the EL and LM models (which assume
//! conditional independence of failures on each demand x) once a two
//! channel system is expected to be tested with the same test suite,
//! which appears to be a common practice. … (20) asserts that testing
//! both versions on the same suite implies on average that an (incorrect)
//! assumption of conditional independence will be too optimistic."
//!
//! The experiment quantifies the under-estimation factor an assessor
//! incurs by predicting the system pfd as `(mean version pfd)²` after a
//! shared-suite campaign, using this repository's exact closed forms for
//! *imperfect* per-execution repair (`ρ = detect·fix`, singleton worlds)
//! — an analytical extension beyond the paper's §4.1 bounds.

use diversim_core::imperfect::{marginal_imperfect_iid, zeta_imperfect_iid};
use diversim_core::testing_effect::TestingRegime;
use diversim_testing::oracle::ImperfectOracle;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::small_graded;

/// Declarative description of E16.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 16,
    slug: "e16",
    name: "e16_assessment",
    title: "How wrong is an independence-based assessment?",
    paper_ref: "eqs (20)–(23) + exact ρ closed forms",
    claim: "an independence-based assessment is always optimistic after shared-suite testing",
    sweep: "(suite size, repair ρ) ∈ {(4,1), (8,1), (16,1), (8,.5), (16,.5), (16,.25)}",
    full_replications: 30_000,
    figures: &[FigureSpec::new(
        0,
        "The assessor's error at perfect repair (ρ = 1): the true shared-\
         suite system pfd vs the (mean version pfd)² an independence-based \
         assessment predicts. The gap — the under-estimation factor — grows \
         with testing effort; the Monte Carlo check tracks the closed form.",
        "n",
        &[
            SeriesSpec::new("true system pfd (shared)", "true (shared)").only("rho", "1"),
            SeriesSpec::new("independence prediction", "indep prediction").only("rho", "1"),
            SeriesSpec::new("MC check", "MC check").only("rho", "1"),
        ],
    )
    .labels("suite size n", "system pfd")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E16: how wrong is an independence-based assessment? (eqs 20–23 + exact ρ forms)\n");
    let w = small_graded();
    let scenario = w.scenario().build().expect("valid world");
    let replications = ctx.replications(SPEC.full_replications);

    let mut table = Table::new(
        "true shared-suite system pfd vs independence prediction (exact closed forms)",
        &[
            "n",
            "rho",
            "true (shared)",
            "indep prediction",
            "underestimate x",
            "MC check",
        ],
    );

    for &(n, rho) in &[
        (4usize, 1.0),
        (8, 1.0),
        (16, 1.0),
        (8, 0.5),
        (16, 0.5),
        (16, 0.25),
    ] {
        // One cell per (n, ρ): closed-form truth, the assessor's mean pfd,
        // and the MC check (seed 1600+n+100·ρ, encoded in the key).
        let cell = ctx.cell(
            format!(
                "world=small-graded|n={n}|rho={rho}|reps={replications}|study=assessment-error"
            ),
            |scope| {
                let truth = marginal_imperfect_iid(
                    &w.pop_a,
                    &w.pop_a,
                    &w.profile,
                    &w.profile,
                    n,
                    rho,
                    TestingRegime::SharedSuite,
                )
                .expect("singleton world");
                // The independence-based assessor squares the mean tested pfd.
                let mean_pfd = w.profile.expect(|x| {
                    zeta_imperfect_iid(&w.pop_a, x, &w.profile, n, rho).expect("singleton world")
                });
                // Monte Carlo: same regime via an imperfect oracle with
                // d = rho and the default perfect fixer (rho = d·r).
                let mc = scenario
                    .with_suite_size(n)
                    .with_oracle(ImperfectOracle::new(rho).expect("valid"))
                    .with_seed(1600 + n as u64 + (rho * 100.0) as u64)
                    .estimate(replications, scope.threads());
                vec![
                    truth,
                    mean_pfd,
                    mc.system_pfd.mean,
                    mc.system_pfd.standard_error,
                ]
            },
        );
        let (truth, mean_pfd) = (cell.get(0), cell.get(1));
        let (mc_mean, mc_se) = (cell.get(2), cell.get(3));
        let prediction = mean_pfd * mean_pfd;
        let factor = truth / prediction.max(1e-300);

        table.row(&[
            n.to_string(),
            format!("{rho}"),
            format!("{truth:.6}"),
            format!("{prediction:.6}"),
            format!("{factor:.1}"),
            format!("{mc_mean:.6}"),
        ]);
        ctx.check(
            truth >= prediction - 1e-15,
            format!("independence prediction is optimistic at n={n}, rho={rho}"),
        );
        ctx.check(
            (mc_mean - truth).abs() < 4.0 * mc_se + 1e-9,
            format!("MC agrees with the closed form at n={n}, rho={rho}"),
        );
    }

    ctx.emit(table, "e16_assessment");
    ctx.note(
        "Claim reproduced: an independence-based assessment is *always*\n\
         optimistic after shared-suite testing, by a factor that grows with\n\
         testing effort (and shrinks with repair sloppiness ρ) — exactly the\n\
         misuse of EL/LM the paper warns against, here with closed-form truth\n\
         values even for imperfect testing.",
    );
}
