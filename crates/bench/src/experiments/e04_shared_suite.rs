//! E4 — the shared-suite coupling, equation (20).
//!
//! Paper claim: testing both versions on the same suite makes the joint
//! probability on each demand `ζ(x)² + Var_Ξ(ξ(x,T))` — conditional
//! independence is destroyed, and an independence assumption is
//! optimistic. The experiment prints the per-demand decomposition and the
//! relative error an (incorrect) independence assumption would make.

use diversim_core::difficulty::zeta;
use diversim_core::testing_effect::joint_shared_suite;
use diversim_exact::brute;
use diversim_testing::suite_population::enumerate_iid_suites;
use diversim_universe::population::Population;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::small_graded;

/// Declarative description of E4.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 4,
    slug: "e04",
    name: "e04_shared_suite",
    title: "The shared suite induces per-demand failure dependence",
    paper_ref: "eq (20)",
    claim: "per demand, shared-suite joint = ζ(x)² + Var_Ξ(ξ(x,T)) ≥ ζ(x)²",
    sweep: "all demands of the small-graded world, 3-demand shared suites",
    full_replications: 0,
    figures: &[FigureSpec::new(
        0,
        "Per-demand eq-20 decomposition on the small-graded world: testing \
         lowers difficulty (ζ ≤ θ), but the shared-suite joint probability \
         exceeds the independence term ζ² by Var_Ξ(ξ) ≥ 0 on every demand.",
        "demand",
        &[
            SeriesSpec::new("θ(x) — untested difficulty", "theta(x)"),
            SeriesSpec::new("ζ(x) — tested difficulty", "zeta(x)"),
            SeriesSpec::new("ζ(x)² — independence term", "zeta^2"),
            SeriesSpec::new("joint (eq 20)", "joint (eq 20)"),
        ],
    )
    .labels("demand", "probability")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E4: the shared suite induces per-demand failure dependence (eq 20)\n");
    let w = small_graded();
    let suite_size = 3;

    // One exact cell; payload = [θ, ζ, ζ², Var_Ξ, joint, brute] per demand.
    let cell = ctx.cell(
        format!("world=small-graded|suite={suite_size}|study=per-demand-eq20"),
        |_scope| {
            let m = enumerate_iid_suites(&w.profile, suite_size, 1 << 14).expect("enumerable");
            let support = w.pop_a.enumerate(1 << 12).expect("enumerable");
            let mut values = Vec::new();
            for x in w.profile.space().iter() {
                let joint = joint_shared_suite(&w.pop_a, &w.pop_a, &m, x);
                values.extend([
                    w.pop_a.theta(x),
                    zeta(&w.pop_a, x, &m),
                    joint.independent,
                    joint.coupling,
                    joint.total(),
                    brute::joint_on_demand_shared(&support, &support, &m, w.pop_a.model(), x),
                ]);
            }
            values
        },
    );

    let mut table = Table::new(
        &format!("per-demand decomposition, {suite_size}-demand shared suites"),
        &[
            "demand",
            "theta(x)",
            "zeta(x)",
            "zeta^2",
            "Var_Xi(xi)",
            "joint (eq 20)",
            "brute",
            "indep err %",
        ],
    );

    for (i, x) in w.profile.space().iter().enumerate() {
        let at = |j: usize| cell.get(6 * i + j);
        let (theta, z, independent, coupling, total, brute_joint) =
            (at(0), at(1), at(2), at(3), at(4), at(5));
        let err_pct = if total > 0.0 {
            100.0 * coupling / total
        } else {
            0.0
        };
        table.row(&[
            x.to_string(),
            format!("{theta:.6}"),
            format!("{z:.6}"),
            format!("{independent:.6}"),
            format!("{coupling:.6}"),
            format!("{total:.6}"),
            format!("{brute_joint:.6}"),
            format!("{err_pct:.1}"),
        ]);
        // eq 20 identities and inequality.
        ctx.check(
            (total - brute_joint).abs() < 1e-12,
            format!("eq20 matches brute force at {x}"),
        );
        ctx.check(
            (independent - z * z).abs() < 1e-12,
            format!("mean term is ζ² at {x}"),
        );
        ctx.check(coupling >= -1e-15, format!("non-negative variance at {x}"));
        ctx.check(
            theta + 1e-15 >= z,
            format!("testing does not worsen difficulty at {x}"),
        );
    }

    ctx.emit(table, "e04_shared_suite");
    ctx.note(
        "Claim reproduced: on every demand the shared-suite joint exceeds ζ(x)²\n\
         by exactly Var_Ξ(ξ(x,T)) ≥ 0; assuming conditional independence after\n\
         shared-suite testing understates the joint probability.",
    );
}
