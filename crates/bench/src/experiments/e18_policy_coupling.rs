//! E18 — how much shared-suite coupling an adaptive policy re-introduces.
//!
//! Eq (20) makes testing both versions on the *same* demands a coupling
//! source: the joint probability exceeds the independence term by
//! `Var_Ξ(ξ(x,T))`. An adaptive policy that allocates `Both` decisions
//! (greedy on ties, ε-greedy while exploring) re-creates exactly that
//! mechanism inside a nominally flexible campaign. This experiment
//! quantifies it twice:
//!
//! 1. **Exactly** — `core::testing_effect::joint_adaptive` at every
//!    fixed allocation split of a 4-test budget (s shared, 4−s private
//!    per version) on the small-graded world: the coupling term grows
//!    monotonically from 0 (fully private, eqs 16–19) to the full
//!    shared-suite variance of eq (20).
//! 2. **By simulation** — each shipped policy's realised shared-budget
//!    fraction and delivered system pfd at budget 16, placed between the
//!    static independent (fraction 0) and shared (fraction 1) baselines
//!    at suite size 8; the "reintroduced" column normalises the pfd gap
//!    to the independent→shared penalty.

use diversim_core::testing_effect::{joint_adaptive, joint_shared_suite};
use diversim_sim::campaign::CampaignRegime;
use diversim_sim::policy::PolicySpec;
use diversim_testing::suite_population::enumerate_iid_suites;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::small_graded;

/// The four shipped policies, keyed by their stable `Display` labels.
const POLICIES: [PolicySpec; 4] = [
    PolicySpec::RoundRobin,
    PolicySpec::GreedyOnFailures,
    PolicySpec::EpsilonGreedy { epsilon: 0.1 },
    PolicySpec::UcbIndex { c: 0.5 },
];

/// Static suite size of the baselines; the adaptive budget is `2n`.
const SUITE: usize = 8;

/// Per-version test count of the exact allocation sweep.
const EXACT_TESTS: usize = 4;

/// Declarative description of E18.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 18,
    slug: "e18",
    name: "e18_policy_coupling",
    title: "Shared-demand allocations re-introduce the eq-20 coupling",
    paper_ref: "eqs (20)-(21) at adaptive allocations",
    claim: "coupling grows monotonically with the shared allocation; policies sit between the static baselines",
    sweep: "exact: s ∈ {0..4} shared of 4 tests/version; MC: 4 policies at budget 16 vs static n=8",
    full_replications: 20_000,
    figures: &[
        FigureSpec::new(
            1,
            "Exact eq-(20)-(21) decomposition of the usage-weighted system \
             pfd when s of the 4 tests per version are shared: the \
             independence term barely moves, while the coupling term climbs \
             monotonically from 0 (private suites, eqs 16–19) to the full \
             shared-suite variance of eq (20).",
            "shared fraction",
            &[
                SeriesSpec::new("coupling term", "coupling"),
                SeriesSpec::new("independence term", "independent"),
            ],
        )
        .labels("shared budget fraction", "probability"),
        FigureSpec::new(
            0,
            "Delivered system pfd against the realised shared-budget \
             fraction at equal execution cost (budget 16 ↔ static suite 8, \
             small-graded world). The static baselines anchor the ends; \
             each adaptive policy lands between them according to how many \
             shared demands it allocates. Bands are ±2·SE.",
            "shared fraction",
            &[SeriesSpec::new("system pfd", "system pfd").band("system se")],
        )
        .labels("realised shared-budget fraction", "system pfd"),
    ],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E18: shared-demand allocations re-introduce the eq-20 coupling\n");
    let w = small_graded();
    let replications = ctx.replications(SPEC.full_replications);

    // ── Monte Carlo: policies between the static baselines ────────────
    let baseline = |ctx: &mut RunContext, label: &str, regime: CampaignRegime, seed: u64| {
        ctx.cell(
            format!(
                "world=small-graded|suite={SUITE}|regime={label}|seed={seed}|reps={replications}|study=coupling-baseline"
            ),
            |scope| {
                let est = w
                    .scenario()
                    .suite_size(SUITE)
                    .regime(regime)
                    .seed(seed)
                    .build()
                    .expect("valid scenario")
                    .estimate(replications, scope.threads());
                vec![est.system_pfd.mean, est.system_pfd.standard_error]
            },
        )
    };
    let ind = baseline(ctx, "independent", CampaignRegime::IndependentSuites, 1800);
    let sh = baseline(ctx, "shared", CampaignRegime::SharedSuite, 1801);
    let (ind_mean, ind_se) = (ind.get(0), ind.get(1));
    let (sh_mean, sh_se) = (sh.get(0), sh.get(1));
    let penalty = sh_mean - ind_mean;
    ctx.check(
        penalty > 2.0 * (ind_se + sh_se),
        "the shared-suite penalty is resolvable at this effort",
    );

    let mut table = Table::new(
        "policy coupling diagnostic (budget 16 vs static n=8)",
        &[
            "policy",
            "shared fraction",
            "system pfd",
            "system se",
            "reintroduced",
        ],
    );
    table.row(&[
        "independent (static)".into(),
        "0.000".into(),
        format!("{ind_mean:.6}"),
        format!("{ind_se:.6}"),
        "0.00".into(),
    ]);

    let mut fractions = Vec::new();
    for (i, spec) in POLICIES.iter().enumerate() {
        let seed = 1810 + i as u64;
        let cell = ctx.cell(
            format!(
                "world=small-graded|budget={}|policy={spec}|seed={seed}|reps={replications}|study=policy-coupling",
                2 * SUITE
            ),
            |scope| {
                let scenario = w
                    .scenario()
                    .suite_size(2 * SUITE)
                    .regime(CampaignRegime::Adaptive(*spec))
                    .seed(seed)
                    .build()
                    .expect("valid scenario");
                let study = scenario
                    .policy_study(replications, scope.threads())
                    .expect("adaptive scenario");
                let est = scenario.estimate(replications, scope.threads());
                vec![
                    study.shared_fraction.mean(),
                    study.shared_fraction.standard_error(),
                    est.system_pfd.mean,
                    est.system_pfd.standard_error,
                ]
            },
        );
        let (frac, sys_mean, sys_se) = (cell.get(0), cell.get(2), cell.get(3));
        let reintroduced = (sys_mean - ind_mean) / penalty;
        fractions.push(frac);
        table.row(&[
            spec.to_string(),
            format!("{frac:.3}"),
            format!("{sys_mean:.6}"),
            format!("{sys_se:.6}"),
            format!("{reintroduced:.2}"),
        ]);
        // A policy can only interpolate the static extremes: its pfd gap
        // to the independent baseline stays within the shared-suite
        // penalty, up to Monte Carlo noise.
        let slack = 4.0 * (sys_se + ind_se + sh_se) / penalty;
        ctx.check(
            (-slack..=1.0 + slack).contains(&reintroduced),
            format!("{spec} re-introduces between 0 and the full penalty ({reintroduced:.2})"),
        );
    }
    table.row(&[
        "shared (static)".into(),
        "1.000".into(),
        format!("{sh_mean:.6}"),
        format!("{sh_se:.6}"),
        "1.00".into(),
    ]);
    ctx.emit(table, "e18_policy_coupling");

    // Allocation structure of the policies themselves.
    ctx.check(
        fractions[0] == 0.0,
        "round-robin allocates no shared demands, exactly",
    );
    ctx.check(
        fractions[1] > fractions[2],
        format!(
            "greedy shares more than ε-greedy(0.1) on a symmetric world ({:.3} vs {:.3})",
            fractions[1], fractions[2]
        ),
    );

    // ── Exact: coupling vs the allocation split, eqs (20)-(21) ────────
    let mut exact = Table::new(
        &format!("exact allocation sweep ({EXACT_TESTS} tests/version, small-graded world)"),
        &["shared fraction", "s", "independent", "coupling", "total"],
    );
    let mut prev = -1.0;
    for s in 0..=EXACT_TESTS {
        let cell = ctx.cell(
            format!("world=small-graded|tests={EXACT_TESTS}|s={s}|study=exact-adaptive-coupling"),
            |_scope| {
                let shared = enumerate_iid_suites(&w.profile, s, 1 << 14).expect("enumerable");
                let private =
                    enumerate_iid_suites(&w.profile, EXACT_TESTS - s, 1 << 14).expect("enumerable");
                // The eq-20 limit this sweep must reach at s = n.
                let full =
                    enumerate_iid_suites(&w.profile, EXACT_TESTS, 1 << 14).expect("enumerable");
                let (mut independent, mut coupling, mut shared_ref) = (0.0, 0.0, 0.0);
                for x in w.profile.space().iter() {
                    let j = joint_adaptive(&w.pop_a, &w.pop_a, &shared, &private, &private, x);
                    let q = w.profile.probability(x);
                    independent += q * j.independent;
                    coupling += q * j.coupling;
                    shared_ref += q * joint_shared_suite(&w.pop_a, &w.pop_a, &full, x).coupling;
                }
                vec![independent, coupling, shared_ref]
            },
        );
        let (independent, coupling, shared_ref) = (cell.get(0), cell.get(1), cell.get(2));
        exact.row(&[
            format!("{:.2}", s as f64 / EXACT_TESTS as f64),
            s.to_string(),
            format!("{independent:.8}"),
            format!("{coupling:.8}"),
            format!("{:.8}", independent + coupling),
        ]);
        ctx.check(
            coupling >= -1e-12,
            format!("coupling is non-negative at s={s}"),
        );
        ctx.check(
            coupling >= prev - 1e-12,
            format!("coupling grows with the shared allocation at s={s}"),
        );
        prev = coupling;
        if s == 0 {
            ctx.check(coupling.abs() < 1e-12, "private suites do not couple (s=0)");
        }
        if s == EXACT_TESTS {
            ctx.check(
                (coupling - shared_ref).abs() < 1e-12,
                "fully shared allocation reaches the eq-20 variance exactly",
            );
        }
    }
    ctx.emit(exact, "e18_exact_coupling");
    ctx.note(
        "\nClaim reproduced: the eq-20 coupling term is exactly zero for fully\n\
         private allocations, grows monotonically with the shared share, and\n\
         the policies' delivered system pfds interpolate the static baselines\n\
         in proportion to the shared-budget fraction they realise.",
    );
}
