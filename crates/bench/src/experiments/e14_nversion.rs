//! E14 — 1-out-of-N generalisation of the regime comparison.
//!
//! The paper analyses a two-channel system; its §3.1 argument iterates to
//! any number of channels (conditional independence under independent
//! suites), and the eq-20 coupling generalises to the N-fold mixed moment
//! over a shared suite. The experiment sweeps N, showing that each extra
//! channel buys orders of magnitude under independent suites but much
//! less under a shared suite — diversity, not redundancy, is what the
//! shared suite destroys.

use diversim_core::difficulty::TestedDifficulty;
use diversim_core::nversion::system_pfd_n;
use diversim_core::testing_effect::TestingRegime;
use diversim_testing::suite_population::enumerate_iid_suites;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::small_graded;

/// Declarative description of E14.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 14,
    slug: "e14",
    name: "e14_nversion",
    title: "1-out-of-N systems under both suite regimes",
    paper_ref: "§5-style extension of §3.1 / eq (20)",
    claim: "each added channel multiplies reliability under independent suites; a shared suite caps the benefit",
    sweep: "channel count N ∈ {1, …, 6}, 4-demand suites",
    full_replications: 0,
    figures: &[FigureSpec::new(
        0,
        "1-out-of-N system pfd vs channel count (log scale): under \
         independent suites each added channel multiplies reliability by \
         roughly 1/E[Θ_T]; under a shared suite the coupling term caps the \
         benefit after a few channels — redundancy without diversity.",
        "N",
        &[
            SeriesSpec::new("independent suites", "independent"),
            SeriesSpec::new("shared suite", "shared"),
        ],
    )
    .labels("channels N", "system pfd")
    .log_y()],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E14: 1-out-of-N systems under both regimes (§5-style extension)\n");
    let w = small_graded();
    let suite_size = 4;

    let mut table = Table::new(
        &format!("system pfd vs channel count ({suite_size}-demand suites)"),
        &[
            "N",
            "independent",
            "shared",
            "shared/indep",
            "marginal gain (ind)",
            "marginal gain (sh)",
        ],
    );

    let mut prev_ind = f64::NAN;
    let mut prev_sh = f64::NAN;
    for n_channels in 1..=6 {
        // One exact cell per channel count: [independent pfd, shared pfd].
        let cell = ctx.cell(
            format!("world=small-graded|suite={suite_size}|channels={n_channels}|study=1oonN"),
            |_scope| {
                let m = enumerate_iid_suites(&w.profile, suite_size, 1 << 16).expect("enumerable");
                let pops: Vec<&dyn TestedDifficulty> = (0..n_channels)
                    .map(|_| &w.pop_a as &dyn TestedDifficulty)
                    .collect();
                vec![
                    system_pfd_n(&pops, &m, &w.profile, TestingRegime::IndependentSuites)
                        .expect("valid 1-out-of-N system"),
                    system_pfd_n(&pops, &m, &w.profile, TestingRegime::SharedSuite)
                        .expect("valid 1-out-of-N system"),
                ]
            },
        );
        let (ind, sh) = (cell.get(0), cell.get(1));
        let gain_ind = if prev_ind.is_nan() {
            f64::NAN
        } else {
            prev_ind / ind.max(1e-300)
        };
        let gain_sh = if prev_sh.is_nan() {
            f64::NAN
        } else {
            prev_sh / sh.max(1e-300)
        };
        table.row(&[
            n_channels.to_string(),
            format!("{ind:.3e}"),
            format!("{sh:.3e}"),
            format!("{:.1}", sh / ind.max(1e-300)),
            if gain_ind.is_nan() {
                "-".into()
            } else {
                format!("{gain_ind:.1}x")
            },
            if gain_sh.is_nan() {
                "-".into()
            } else {
                format!("{gain_sh:.1}x")
            },
        ]);

        ctx.check(
            sh + 1e-15 >= ind,
            format!("shared does not beat independent at N={n_channels}"),
        );
        if !prev_ind.is_nan() {
            ctx.check(
                ind <= prev_ind + 1e-15,
                format!("extra channel helps (independent) at N={n_channels}"),
            );
            ctx.check(
                sh <= prev_sh + 1e-15,
                format!("extra channel helps (shared) at N={n_channels}"),
            );
            // The marginal channel is worth more under independent suites.
            ctx.check(
                prev_ind / ind.max(1e-300) >= prev_sh / sh.max(1e-300) - 1e-9,
                format!("independent-suite marginal gain dominates at N={n_channels}"),
            );
        }
        prev_ind = ind;
        prev_sh = sh;
    }

    ctx.emit(table, "e14_nversion");
    ctx.note(
        "Claim reproduced: under independent suites each added channel multiplies\n\
         reliability by ~1/E[Θ_T]; under a shared suite the common factor\n\
         Var_Ξ-style coupling caps the benefit — redundancy without diversity.",
    );
}
