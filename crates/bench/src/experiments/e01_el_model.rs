//! E1 — Eckhardt–Lee model, equations (6)/(7).
//!
//! Paper claim: `P(both fail on X) = E[Θ]² + Var(Θ) ≥ E[Θ]²`, with
//! equality iff the difficulty function is constant. The experiment sweeps
//! the difficulty spread at fixed mean difficulty and reports the joint
//! pfd, its decomposition and the dependence ratio, cross-checked by
//! Monte Carlo sampling of version pairs.

use rand::rngs::StdRng;
use rand::SeedableRng;

use diversim_core::el::ElAnalysis;
use diversim_sim::runner::parallel_reduce;
use diversim_stats::reduce::Moments;
use diversim_universe::population::Population;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::graded_with_spread;

/// Declarative description of E1.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 1,
    slug: "e01",
    name: "e01_el_model",
    title: "Eckhardt–Lee: variance of difficulty drives coincident failure",
    paper_ref: "eqs (6)–(7)",
    claim: "joint pfd = E[Θ]² + Var(Θ) ≥ E[Θ]²; equality iff difficulty is constant",
    sweep: "difficulty spread ∈ {0.0, 0.2, …, 1.0} at fixed mean 0.3",
    full_replications: 60_000,
    figures: &[FigureSpec::new(
        0,
        "The joint pfd tracks E[Θ]² + Var(Θ) exactly; the independence \
         benchmark E[Θ]² falls behind as the difficulty spread grows. The \
         Monte Carlo estimate carries a ±2·SE band.",
        "spread",
        &[
            SeriesSpec::new("joint = E[Θ²] (exact)", "joint=E[th^2]"),
            SeriesSpec::new("independent benchmark E[Θ]²", "indep=E[th]^2"),
            SeriesSpec::new("MC joint", "MC joint").band("MC se"),
        ],
    )
    .labels("difficulty spread", "P(both versions fail)")],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E1: Eckhardt–Lee — variance of difficulty drives coincident failure (eqs 6–7)\n");
    let mut table = Table::new(
        "joint pfd vs difficulty spread (mean difficulty fixed at 0.3)",
        &[
            "spread",
            "E[theta]",
            "Var(theta)",
            "joint=E[th^2]",
            "indep=E[th]^2",
            "ratio",
            "MC joint",
            "MC se",
        ],
    );
    let replications = ctx.replications(SPEC.full_replications);

    for &spread in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let world = graded_with_spread(spread);
        let el = ElAnalysis::compute(&world.pop_a, &world.profile);

        // Monte Carlo: draw version pairs, stream the exact conditional
        // joint pfd of each pair straight into moment accumulators.
        // One sweep cell per spread; its replication streams derive
        // from the cell identity (`CellScope::seeds`).
        let mc = ctx.cell(
            format!("world=graded-spread({spread:.1})|study=pair-pfd|reps={replications}"),
            |scope| {
                let model = world.pop_a.model().clone();
                let acc = parallel_reduce(
                    replications,
                    scope.seeds(),
                    scope.threads(),
                    &Moments,
                    |_, seed| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let v1 = world.pop_a.sample(&mut rng);
                        let v2 = world.pop_a.sample(&mut rng);
                        diversim_core::system::pair_pfd(&v1, &v2, &model, &world.profile)
                    },
                );
                vec![acc.mean(), acc.standard_error()]
            },
        );
        let (mc_mean, mc_se) = (mc.get(0), mc.get(1));

        table.row(&[
            format!("{spread:.1}"),
            format!("{:.6}", el.mean_theta),
            format!("{:.6}", el.var_theta),
            format!("{:.6}", el.joint_pfd),
            format!("{:.6}", el.independent_pfd),
            format!("{:.3}", el.dependence_ratio().unwrap_or(f64::NAN)),
            format!("{mc_mean:.6}"),
            format!("{mc_se:.6}"),
        ]);

        // Reproduction checks.
        ctx.check(
            el.joint_pfd >= el.independent_pfd - 1e-15,
            format!("EL inequality holds at spread {spread}"),
        );
        if spread == 0.0 {
            ctx.check(
                (el.joint_pfd - el.independent_pfd).abs() < 1e-12,
                "equality case under constant difficulty",
            );
        } else {
            ctx.check(
                el.joint_pfd > el.independent_pfd,
                format!("strict inequality at spread {spread}"),
            );
        }
        ctx.check(
            (mc_mean - el.joint_pfd).abs() < 4.0 * mc_se + 1e-9,
            format!("MC agrees with exact at spread {spread}"),
        );
    }

    ctx.emit(table, "e01_el_model");
    ctx.note(
        "Claim reproduced: joint pfd = E[Θ]² + Var(Θ); independence only under\n\
         constant difficulty, and the penalty grows with the difficulty variance.",
    );
}
