//! E13 — §5 extensions: common clarifications and common mistakes.
//!
//! Paper claim (conclusion): commonalities other than shared test suites
//! — "a common clarification … sent to all development teams", or
//! "giving incorrect instructions to all teams" — act through the same
//! mechanism: they reduce diversity. A common mistake "will result in
//! setting the scores of all demands affected to 1". The experiment
//! compares *common* mistakes against *independent* mistakes of equal
//! version-level severity, and measures what common clarifications do to
//! both reliability and diversity.

use diversim_sim::common_cause::MistakeMode;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::medium_cascade;

/// Declarative description of E13.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 13,
    slug: "e13",
    name: "e13_common_cause",
    title: "§5 extensions: common clarifications and common mistakes",
    paper_ref: "§5 / conclusion",
    claim: "at equal per-version severity, common mistakes inflate the system pfd; clarifications help both levels while increasing overlap",
    sweep: "mistake count ∈ {1, 2, 4, 8} (common vs independent); clarified demands ∈ {0, 4, 8, 16, 32}",
    full_replications: 4_000,
    figures: &[
        FigureSpec::new(
            0,
            "Common vs independent mistakes of equal per-version severity: \
             the version-level curves coincide, but a *common* mistake (the \
             same fault injected into both versions) inflates the system pfd \
             well beyond independent mistakes of the same count.",
            "mistakes",
            &[
                SeriesSpec::new("system pfd — common", "system pfd (common)"),
                SeriesSpec::new("system pfd — independent", "system pfd (indep)"),
                SeriesSpec::new("version pfd — common", "version pfd (common)"),
                SeriesSpec::new("version pfd — independent", "version pfd (indep)"),
            ],
        )
        .labels("mistakes injected", "pfd"),
        FigureSpec::new(
            1,
            "Common clarifications improve both the versions and the system…",
            "clarified",
            &[
                SeriesSpec::new("version pfd", "version pfd"),
                SeriesSpec::new("system pfd", "system pfd"),
            ],
        )
        .labels("demands clarified for all teams", "pfd"),
        FigureSpec::new(
            1,
            "…while making the survivors' failure sets more alike: the \
             Jaccard overlap of the two versions' failure sets grows with \
             every clarification — the §5 'common knowledge' channel of \
             dependence.",
            "clarified",
            &[SeriesSpec::new("Jaccard overlap", "jaccard overlap")],
        )
        .labels("demands clarified for all teams", "Jaccard overlap of failure sets"),
    ],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E13: common clarifications and mistakes (§5 extensions)\n");
    let w = medium_cascade(11);
    let scenario = w.scenario().build().expect("valid world");
    let replications = ctx.replications(SPEC.full_replications);

    let mut table = Table::new(
        "common vs independent mistakes (same per-version severity)",
        &[
            "mistakes",
            "version pfd (common)",
            "version pfd (indep)",
            "system pfd (common)",
            "system pfd (indep)",
            "system ratio",
        ],
    );
    for mistakes in [1usize, 2, 4, 8] {
        // One MC cell per mistake count: both modes' version/system moments
        // (seeds 1300+k / 1400+k, encoded in the key).
        let cell = ctx.cell(
            format!(
                "world=medium-cascade(11)|mistakes={mistakes}|seeds=1300+k,1400+k|reps={replications}|study=common-vs-indep"
            ),
            |scope| {
                let common = scenario.with_seed(1300 + mistakes as u64).mistakes(
                    mistakes,
                    MistakeMode::Common,
                    replications,
                    scope.threads(),
                );
                let independent = scenario.with_seed(1400 + mistakes as u64).mistakes(
                    mistakes,
                    MistakeMode::Independent,
                    replications,
                    scope.threads(),
                );
                vec![
                    common.version_pfd.mean(),
                    common.version_pfd.standard_error(),
                    common.system_pfd.mean(),
                    common.system_pfd.standard_error(),
                    independent.version_pfd.mean(),
                    independent.version_pfd.standard_error(),
                    independent.system_pfd.mean(),
                    independent.system_pfd.standard_error(),
                ]
            },
        );
        let (c_ver, c_ver_se, c_sys, c_sys_se) =
            (cell.get(0), cell.get(1), cell.get(2), cell.get(3));
        let (i_ver, i_ver_se, i_sys, i_sys_se) =
            (cell.get(4), cell.get(5), cell.get(6), cell.get(7));
        let ratio = c_sys / i_sys.max(1e-12);
        table.row(&[
            mistakes.to_string(),
            format!("{c_ver:.6}"),
            format!("{i_ver:.6}"),
            format!("{c_sys:.6}"),
            format!("{i_sys:.6}"),
            format!("{ratio:.2}"),
        ]);
        // Version-level severity statistically equal; system-level damage
        // strictly worse under common mistakes (up to MC noise at reduced
        // budgets).
        let se = c_ver_se + i_ver_se;
        ctx.check(
            (c_ver - i_ver).abs() < 5.0 * se + 1e-9,
            format!("version severity matches at {mistakes} mistakes"),
        );
        let sys_se = c_sys_se + i_sys_se;
        ctx.check(
            c_sys > i_sys - sys_se,
            format!("common mistakes hurt the system more at {mistakes} mistakes"),
        );
    }
    ctx.emit(table, "e13_mistakes");

    let mut table2 = Table::new(
        "common clarifications: reliability up, overlap up",
        &["clarified", "version pfd", "system pfd", "jaccard overlap"],
    );
    let mut last_version = f64::INFINITY;
    let mut last_se = 0.0;
    for clarified in [0usize, 4, 8, 16, 32] {
        // One MC cell per clarification count (seed 1500+k in the key).
        let cell = ctx.cell(
            format!(
                "world=medium-cascade(11)|clarified={clarified}|seed={}|reps={replications}|study=clarifications",
                1500 + clarified as u64
            ),
            |scope| {
                let study = scenario.with_seed(1500 + clarified as u64).clarifications(
                    clarified,
                    replications,
                    scope.threads(),
                );
                vec![
                    study.version_pfd.mean(),
                    study.version_pfd.standard_error(),
                    study.system_pfd.mean(),
                    study.jaccard.mean(),
                ]
            },
        );
        let (version_mean, version_se) = (cell.get(0), cell.get(1));
        table2.row(&[
            clarified.to_string(),
            format!("{version_mean:.6}"),
            format!("{:.6}", cell.get(2)),
            format!("{:.4}", cell.get(3)),
        ]);
        ctx.check(
            version_mean <= last_version + last_se + version_se + 1e-9,
            format!("clarifications help versions at {clarified} clarified"),
        );
        last_version = version_mean;
        last_se = version_se;
    }
    ctx.emit(table2, "e13_clarifications");

    ctx.note(
        "Claim reproduced: at identical per-version severity, common mistakes\n\
         inflate the system pfd relative to independent ones (here by 8-35%,\n\
         growing with the mistake count; on otherwise-correct versions the\n\
         ratio is unbounded — see the crate's unit tests). Clarifications help\n\
         both levels while making the survivors' failure sets more alike — the\n\
         §5 'common knowledge' channel of dependence, modelled exactly as the\n\
         paper sketches (scores forced to 1 on all affected demands).",
    );
}
