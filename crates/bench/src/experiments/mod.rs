//! The twenty experiment implementations.
//!
//! Each module holds one [`ExperimentSpec`](crate::spec::ExperimentSpec)
//! static (`SPEC`) plus its `run` function; the registry
//! (`crate::registry`) collects them and every front end — the
//! `diversim` CLI and the thin `eNN_*` binaries — executes them through
//! the engine (`crate::engine`). The modules contain the *entire*
//! experiment logic; the old standalone binaries' sweep loops,
//! replication counts and ad-hoc reporting all live here now, driven by
//! the shared [`RunContext`](crate::spec::RunContext).

pub mod e01_el_model;
pub mod e02_lm_model;
pub mod e03_indep_suites;
pub mod e04_shared_suite;
pub mod e05_forced_shared;
pub mod e06_marginal_regimes;
pub mod e07_forced_marginal;
pub mod e08_cost_tradeoff;
pub mod e09_imperfect;
pub mod e10_back_to_back;
pub mod e11_growth;
pub mod e12_difficulty_variance;
pub mod e13_common_cause;
pub mod e14_nversion;
pub mod e15_stopping;
pub mod e16_assessment;
pub mod e17_adaptive_policies;
pub mod e18_policy_coupling;
pub mod e19_structure_penalty;
pub mod e20_component_allocation;
