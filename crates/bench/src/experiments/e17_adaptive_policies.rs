//! E17 — adaptive test-budget allocation vs the paper's static regimes.
//!
//! The paper spends a *fixed* suite per version (§3); the `sim::policy`
//! subsystem instead lets a [`TestPolicy`](diversim_sim::policy::TestPolicy)
//! decide, demand by demand, which version receives the next test under
//! a shared execution budget. This experiment sweeps the budget on the
//! [`asymmetric`] world — version A riddled with broad region faults
//! that tests flush quickly, version B carrying rare singleton defects
//! that tests hit slowly — and compares the delivered 1-out-of-2 system
//! pfd of every shipped policy against the three static regimes at
//! equal execution cost: a static suite of size `n` runs `2n`
//! executions, so the adaptive arms get budget `2n`.
//!
//! Expected structure: round-robin reproduces independent suites (same
//! marginal testing, no shared demands). The failure-driven policies
//! discover the fault-geometry asymmetry from public signals alone and
//! front-load the budget on A, where each test pays off fastest; the
//! exploring ones (ε-greedy, UCB) then swing back to hunting B's rare
//! defects once A stops failing, beating the rigid even split of
//! independent suites — while pure greedy over-commits to A, whose
//! frozen failure lead keeps pointing there even after it comes clean.

use diversim_sim::campaign::CampaignRegime;
use diversim_sim::policy::PolicySpec;
use diversim_testing::oracle::IdenticalFailureModel;

use crate::report::Table;
use crate::spec::{ExperimentSpec, FigureSpec, RunContext, SeriesSpec};
use crate::worlds::asymmetric;

/// The compared arms: three static regimes at suite size `n` and four
/// adaptive policies at execution budget `2n`. Labels key the cell
/// identities, the long-format table and the figure series.
const ARMS: [(&str, CampaignRegime); 7] = [
    ("independent", CampaignRegime::IndependentSuites),
    ("shared", CampaignRegime::SharedSuite),
    (
        "b2b(0.5)",
        CampaignRegime::BackToBack(IdenticalFailureModel::Bernoulli(0.5)),
    ),
    (
        "round_robin",
        CampaignRegime::Adaptive(PolicySpec::RoundRobin),
    ),
    (
        "greedy",
        CampaignRegime::Adaptive(PolicySpec::GreedyOnFailures),
    ),
    (
        "epsilon_greedy(0.1)",
        CampaignRegime::Adaptive(PolicySpec::EpsilonGreedy { epsilon: 0.1 }),
    ),
    (
        "ucb(0.5)",
        CampaignRegime::Adaptive(PolicySpec::UcbIndex { c: 0.5 }),
    ),
];

/// The static suite sizes swept; adaptive budgets are twice these.
const SUITE_SIZES: [usize; 4] = [2, 4, 8, 16];

/// Declarative description of E17.
pub static SPEC: ExperimentSpec = ExperimentSpec {
    id: 17,
    slug: "e17",
    name: "e17_adaptive_policies",
    title: "Adaptive test-budget allocation vs the static regimes",
    paper_ref: "§3.3 extension (eqs 22-23 at policy-chosen allocations)",
    claim: "a failure-driven policy beats independent suites at equal execution cost",
    sweep: "suite size n ∈ {2, 4, 8, 16} (adaptive budget 2n) × 7 arms",
    full_replications: 80_000,
    figures: &[FigureSpec::new(
        0,
        "Delivered system pfd per testing arm on the asymmetric world, at \
         equal execution cost (static suite n ↔ adaptive budget 2n). \
         Round-robin tracks independent suites. The exploring \
         failure-driven policies (ε-greedy, UCB) first flush version A's \
         quickly-hit region faults, then swing back to version B's rare \
         defects once A stops failing — beating the rigid even split of \
         the static regimes. Bands are ±2·SE.",
        "n",
        &[
            SeriesSpec::new("independent suites", "system pfd")
                .band("system se")
                .only("arm", "independent"),
            SeriesSpec::new("shared suite", "system pfd")
                .band("system se")
                .only("arm", "shared"),
            SeriesSpec::new("back-to-back γ=0.5", "system pfd")
                .band("system se")
                .only("arm", "b2b(0.5)"),
            SeriesSpec::new("round-robin", "system pfd")
                .band("system se")
                .only("arm", "round_robin"),
            SeriesSpec::new("greedy-on-failures", "system pfd")
                .band("system se")
                .only("arm", "greedy"),
            SeriesSpec::new("ε-greedy (ε=0.1)", "system pfd")
                .band("system se")
                .only("arm", "epsilon_greedy(0.1)"),
            SeriesSpec::new("UCB (c=0.5)", "system pfd")
                .band("system se")
                .only("arm", "ucb(0.5)"),
        ],
    )
    .labels("static suite size n (adaptive budget 2n)", "system pfd")
    .log_y()],
    run,
};

fn run(ctx: &mut RunContext) {
    ctx.note("E17: adaptive test-budget allocation vs the static regimes\n");
    let w = asymmetric();
    let replications = ctx.replications(SPEC.full_replications);
    let mut table = Table::new(
        "policy-vs-regime budget sweep (asymmetric world)",
        &[
            "arm",
            "n",
            "system pfd",
            "system se",
            "version A pfd",
            "version B pfd",
        ],
    );

    // results[arm][step] = (system mean, system SE).
    let mut results = [[(0.0f64, 0.0f64); SUITE_SIZES.len()]; ARMS.len()];
    for (arm_idx, (label, regime)) in ARMS.iter().enumerate() {
        for (step, &n) in SUITE_SIZES.iter().enumerate() {
            // Equal execution cost: static regimes run n demands on each
            // version (2n executions); adaptive arms get budget 2n.
            let size = match regime {
                CampaignRegime::Adaptive(_) => 2 * n,
                _ => n,
            };
            let seed = 1700 + (arm_idx as u64) * 10 + step as u64;
            let cell = ctx.cell(
                format!(
                    "world=asymmetric|arm={label}|n={n}|seed={seed}|reps={replications}|study=policy-vs-regime"
                ),
                |scope| {
                    let est = w
                        .scenario()
                        .suite_size(size)
                        .regime(*regime)
                        .seed(seed)
                        .build()
                        .expect("valid scenario")
                        .estimate(replications, scope.threads());
                    vec![
                        est.system_pfd.mean,
                        est.system_pfd.standard_error,
                        est.version_a_pfd.mean,
                        est.version_b_pfd.mean,
                    ]
                },
            );
            results[arm_idx][step] = (cell.get(0), cell.get(1));
            table.row(&[
                label.to_string(),
                n.to_string(),
                format!("{:.6}", cell.get(0)),
                format!("{:.6}", cell.get(1)),
                format!("{:.6}", cell.get(2)),
                format!("{:.6}", cell.get(3)),
            ]);
        }
    }
    ctx.emit(table, "e17_policy_vs_regime");

    // Claim: at some budget point, some policy delivers a lower system
    // pfd than independent suites — by a margin, not within noise.
    let mut best: Option<(&str, usize, f64)> = None;
    for (arm_idx, (label, regime)) in ARMS.iter().enumerate() {
        if !matches!(regime, CampaignRegime::Adaptive(_)) {
            continue;
        }
        for (step, &n) in SUITE_SIZES.iter().enumerate() {
            let (ind_mean, ind_se) = results[0][step];
            let (pol_mean, pol_se) = results[arm_idx][step];
            let margin = ind_mean - pol_mean - 2.0 * (ind_se + pol_se);
            if margin > 0.0 && best.is_none_or(|(_, _, m)| margin > m) {
                best = Some((label, n, margin));
            }
        }
    }
    match best {
        Some((label, n, _)) => {
            ctx.check(
                true,
                format!("{label} beats independent suites at n={n} beyond 2·SE"),
            );
            ctx.note(format!(
                "\nClaim reproduced: {label} delivers a lower system pfd than\n\
                 independent suites at n={n} (equal execution cost), beyond the\n\
                 combined 2·SE noise floor."
            ));
        }
        None => ctx.check(
            false,
            "some adaptive policy beats independent suites at some budget",
        ),
    }

    // Sanity: round-robin is independent testing in disguise (same
    // marginal effort per version, no shared demands), so it must stay
    // statistically indistinguishable from the independent-suites arm.
    let rr_idx = 3;
    for (step, &n) in SUITE_SIZES.iter().enumerate() {
        let (ind_mean, ind_se) = results[0][step];
        let (rr_mean, rr_se) = results[rr_idx][step];
        ctx.check(
            (rr_mean - ind_mean).abs() <= 4.0 * (ind_se + rr_se),
            format!("round-robin matches independent suites at n={n}"),
        );
    }
}
