//! The experiment engine: executes any [`ExperimentSpec`] and renders
//! machine-readable results.
//!
//! One run produces one JSON document and one long-format CSV, both
//! pure functions of `(spec, profile)` — no timestamps, hostnames or
//! thread counts leak into the output, so result files are
//! byte-identical across machines and worker counts and can be diffed
//! by regression tooling.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::report::{json_escape, tables_to_long_csv};
use crate::spec::{Check, ExperimentSpec, Profile, RunContext};

/// Identifies the result-file schema emitted by this engine.
pub const RESULT_SCHEMA: &str = "diversim-result/v1";

/// Everything one experiment run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The spec that ran.
    pub spec: &'static ExperimentSpec,
    /// The profile it ran under.
    pub profile: Profile,
    /// Every reproduction-claim check, in execution order.
    pub checks: Vec<Check>,
    /// `false` iff a check failed *and* the profile enforces checks.
    pub passed: bool,
    /// The JSON result document (deterministic).
    pub json: String,
    /// The long-format CSV result (deterministic).
    pub csv: String,
    /// Wall-clock duration of the run (not part of the result files).
    pub wall: Duration,
}

/// Executes one experiment under a profile and renders its results.
/// Every cell the experiment declares computes inline.
pub fn run_experiment(
    spec: &'static ExperimentSpec,
    profile: Profile,
    threads: usize,
    quiet: bool,
) -> RunOutcome {
    run_experiment_with_cells(spec, profile, threads, quiet, None)
}

/// [`run_experiment`] with an explicit cell-execution policy: `cells`
/// decides per declared cell whether to compute, serve from cache or
/// skip (the sweep engine's entry point).
pub fn run_experiment_with_cells(
    spec: &'static ExperimentSpec,
    profile: Profile,
    threads: usize,
    quiet: bool,
    cells: Option<Box<dyn crate::sweep::cell::CellExecutor>>,
) -> RunOutcome {
    let started = Instant::now();
    let mut ctx = RunContext::for_experiment(spec.name, profile, threads, quiet, cells);
    (spec.run)(&mut ctx);
    let wall = started.elapsed();
    let failed = ctx.failed_checks().len();
    let passed = failed == 0 || !profile.enforces_checks();
    let json = render_json(spec, profile, &ctx);
    let csv = tables_to_long_csv(ctx.tables());
    RunOutcome {
        spec,
        profile,
        checks: ctx.checks().to_vec(),
        passed,
        json,
        csv,
        wall,
    }
}

fn render_json(spec: &ExperimentSpec, profile: Profile, ctx: &RunContext) -> String {
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!("\"schema\":\"{}\",", json_escape(RESULT_SCHEMA)));
    out.push_str(&format!("\"id\":{},", spec.id));
    out.push_str(&format!("\"slug\":\"{}\",", json_escape(spec.slug)));
    out.push_str(&format!("\"name\":\"{}\",", json_escape(spec.name)));
    out.push_str(&format!("\"title\":\"{}\",", json_escape(spec.title)));
    out.push_str(&format!(
        "\"paper_ref\":\"{}\",",
        json_escape(spec.paper_ref)
    ));
    out.push_str(&format!("\"claim\":\"{}\",", json_escape(spec.claim)));
    out.push_str(&format!("\"sweep\":\"{}\",", json_escape(spec.sweep)));
    out.push_str(&format!("\"profile\":\"{}\",", profile.name()));
    out.push_str(&format!(
        "\"full_replications\":{},",
        spec.full_replications
    ));
    out.push_str(&format!(
        "\"replication_budget\":{},",
        profile.replications(spec.full_replications)
    ));
    out.push_str(&format!(
        "\"checks_passed\":{},",
        ctx.failed_checks().is_empty()
    ));
    out.push_str("\"checks\":[");
    for (i, check) in ctx.checks().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"passed\":{}}}",
            json_escape(&check.label),
            check.passed
        ));
    }
    out.push_str("],\"tables\":[");
    for (i, (table, stem)) in ctx.tables().iter().zip(ctx.table_stems()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Splice the stem into the table object: `{"stem":…,<table fields>}`.
        let table_json = table.to_json();
        out.push_str(&format!(
            "{{\"stem\":\"{}\",{}",
            json_escape(stem),
            &table_json[1..]
        ));
    }
    out.push_str("]}");
    out
}

/// Writes `<dir>/<name>.json` and `<dir>/<name>.csv`, creating `dir`
/// if needed. Returns the two paths.
///
/// # Errors
///
/// Propagates any filesystem error.
pub fn write_outcome(dir: &Path, outcome: &RunOutcome) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{}.json", outcome.spec.name));
    let csv_path = dir.join(format!("{}.csv", outcome.spec.name));
    std::fs::write(&json_path, &outcome.json)?;
    std::fs::write(&csv_path, &outcome.csv)?;
    Ok((json_path, csv_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Table;

    fn demo_run(ctx: &mut RunContext) {
        let mut t = Table::new("demo \"table\"", &["k", "v"]);
        t.row(&["a,b".into(), "1".into()]);
        ctx.emit(t, "demo_stem");
        ctx.check(true, "identity holds");
        ctx.check(false, "this one fails");
    }

    static DEMO: ExperimentSpec = ExperimentSpec {
        id: 99,
        slug: "e99",
        name: "e99_demo",
        title: "demo",
        paper_ref: "none",
        claim: "none",
        sweep: "none",
        full_replications: 1000,
        figures: &[],
        run: demo_run,
    };

    #[test]
    fn outcome_is_deterministic_and_structured() {
        let a = run_experiment(&DEMO, Profile::Smoke, 1, true);
        let b = run_experiment(&DEMO, Profile::Smoke, 8, true);
        assert_eq!(a.json, b.json);
        assert_eq!(a.csv, b.csv);
        assert!(a.json.starts_with("{\"schema\":\"diversim-result/v1\""));
        assert!(a.json.contains("\"replication_budget\":50"));
        assert!(a.json.contains("\"checks_passed\":false"));
        assert!(a.json.contains("\"stem\":\"demo_stem\""));
        assert!(a.csv.starts_with("table,row,column,value\n"));
        assert!(a.csv.contains("\"a,b\""));
    }

    #[test]
    fn smoke_profile_tolerates_failed_checks_but_fast_does_not() {
        let smoke = run_experiment(&DEMO, Profile::Smoke, 1, true);
        assert!(smoke.passed, "smoke must not enforce checks");
        let fast = run_experiment(&DEMO, Profile::Fast, 1, true);
        assert!(!fast.passed, "fast must enforce checks");
        assert_eq!(fast.checks.len(), 2);
    }

    #[test]
    fn write_outcome_creates_both_files() {
        let outcome = run_experiment(&DEMO, Profile::Smoke, 1, true);
        let dir = std::env::temp_dir().join(format!("diversim-engine-test-{}", std::process::id()));
        let (json_path, csv_path) = write_outcome(&dir, &outcome).unwrap();
        assert_eq!(std::fs::read_to_string(&json_path).unwrap(), outcome.json);
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), outcome.csv);
        std::fs::remove_dir_all(&dir).ok();
    }
}
