//! Measures what the `Scenario` precomputation actually buys: replication
//! throughput with a prepared (build-once) scenario vs. a baseline that
//! rebuilds the scenario — and therefore its per-world `Prepared` cache —
//! for every replication.
//!
//! Run measured with `DIVERSIM_BENCH_JSON=BENCH_scenario_overhead.json
//! cargo bench -p diversim-bench --bench scenario_overhead` to feed the
//! performance-trajectory hook; CI runs it in `--test` mode so the
//! comparison can never rot.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use diversim_bench::worlds::{large, medium_cascade, small_graded};
use diversim_sim::scenario::Scenario;
use diversim_sim::world::World;

fn bench_world(c: &mut Criterion, name: &str, world: &World, suite_size: usize) {
    let mut group = c.benchmark_group(format!("scenario_overhead/{name}"));
    let prepared = world
        .scenario()
        .suite_size(suite_size)
        .build()
        .expect("valid world");

    group.bench_with_input(
        BenchmarkId::from_parameter("prepared"),
        &prepared,
        |b, scenario| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(scenario.run(seed))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("rebuild_per_replication"),
        world,
        |b, world| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let scenario: Scenario = world
                    .scenario()
                    .suite_size(suite_size)
                    .build()
                    .expect("valid world");
                black_box(scenario.run(seed))
            })
        },
    );
    group.finish();
}

fn scenario_overhead(c: &mut Criterion) {
    // Three world scales: tiny exact world (cache build is cheap but so
    // is the campaign), the standard Monte Carlo world, and the large
    // world where the per-replication rebuild is most wasteful.
    bench_world(c, "small_graded", &small_graded(), 8);
    bench_world(c, "medium_cascade", &medium_cascade(7), 64);
    bench_world(c, "large", &large(2), 64);
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = scenario_overhead
);
criterion_main!(benches);
