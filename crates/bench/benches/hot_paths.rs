//! Criterion benchmarks for the hot paths of the substrate: score
//! evaluation, failure sets, pfd computation, sampling and debugging.
//!
//! Run measured (not `--test`) with
//! `DIVERSIM_BENCH_JSON=BENCH_hot_paths.json` to archive the
//! trajectory, as the CI `bench-measure` job does.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use diversim_bench::worlds::{large, medium_cascade};
use diversim_testing::generation::SuiteGenerator;
use diversim_testing::process::perfect_debug;
use diversim_universe::demand::DemandId;
use diversim_universe::population::Population;

fn bench_score_and_pfd(c: &mut Criterion) {
    let w = medium_cascade(1);
    let model = w.pop_a.model().clone();
    let mut rng = StdRng::seed_from_u64(0);
    let version = w.pop_a.sample(&mut rng);
    let x = DemandId::new(17);

    c.bench_function("score/fails_on", |b| {
        b.iter(|| black_box(version.fails_on(black_box(&model), black_box(x))))
    });
    c.bench_function("score/failure_set", |b| {
        b.iter(|| black_box(version.failure_set(black_box(&model))))
    });
    c.bench_function("score/pfd", |b| {
        b.iter(|| black_box(version.pfd(black_box(&model), black_box(&w.profile))))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let w = large(2);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("sample/version_from_bernoulli", |b| {
        b.iter(|| black_box(w.pop_a.sample(&mut rng)))
    });
    c.bench_function("sample/demand_from_profile", |b| {
        b.iter(|| black_box(w.profile.sample(&mut rng)))
    });
    let mut group = c.benchmark_group("sample/suite_generation");
    for size in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| black_box(w.generator.generate(&mut rng, size)))
        });
    }
    group.finish();
}

fn bench_debugging(c: &mut Criterion) {
    let w = medium_cascade(3);
    let model = w.pop_a.model().clone();
    let mut rng = StdRng::seed_from_u64(2);
    let version = w.pop_a.sample(&mut rng);
    let mut group = c.benchmark_group("debug/perfect_debug");
    for size in [8usize, 64, 512] {
        let suite = w.generator.generate(&mut rng, size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &suite, |b, suite| {
            b.iter(|| black_box(perfect_debug(black_box(&version), suite, &model)))
        });
    }
    group.finish();
}

fn bench_difficulty(c: &mut Criterion) {
    let w = medium_cascade(4);
    let mut covered = diversim_universe::bitset::BitSet::new(w.profile.space().len());
    for i in (0..200).step_by(3) {
        covered.insert(i);
    }
    c.bench_function("difficulty/theta_vector", |b| {
        b.iter(|| black_box(w.pop_a.theta_vector()))
    });
    c.bench_function("difficulty/xi_vector", |b| {
        b.iter(|| {
            black_box(diversim_core::difficulty::TestedDifficulty::xi_vector(
                &w.pop_a,
                black_box(&covered),
            ))
        })
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets =
    bench_score_and_pfd,
    bench_sampling,
    bench_debugging,
    bench_difficulty
);
criterion_main!(benches);
