//! Scaling of the lock-free execution layer across worker threads.
//!
//! Two job granularities bracket the design space:
//!
//! * **small** — a few dozen nanoseconds of pure arithmetic per
//!   replication. This is the regime where result hand-off cost
//!   dominates: the retired global-mutex runner (kept here as the
//!   `mutex` baseline) serialises every worker on one lock and loses
//!   badly, while the lock-free runner's atomic chunk claiming plus
//!   disjoint slot writes keep scaling.
//! * **large** — a full campaign replication (`Scenario::run`) of tens
//!   of microseconds, where any hand-off scheme amortises and the bench
//!   measures genuine compute scaling (and motivates the 16-thread cap
//!   of `default_threads`).
//!
//! Thread counts sweep 1/2/4/8/16. Run measured (not `--test`) with
//! `DIVERSIM_BENCH_JSON=BENCH_runner_scaling.json` to archive the
//! trajectory, as the CI `bench-measure` job does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use diversim_bench::worlds::medium_cascade;
use diversim_sim::runner::parallel_replications;
use diversim_stats::seed::SeedSequence;

/// The retired hot-path design: every result funnels through one global
/// `Mutex<Vec<Option<T>>>`. Kept verbatim (minus panic handling) as the
/// ablation baseline so the scaling gap stays measurable.
fn mutex_parallel_replications<T, F>(
    replications: u64,
    seeds: SeedSequence,
    threads: usize,
    job: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = usize::try_from(replications).expect("replication count fits in usize");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return (0..replications)
            .map(|i| job(i, seeds.seed_for(0, i)))
            .collect();
    }
    let counter = AtomicU64::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= replications {
                    break;
                }
                let result = job(i, seeds.seed_for(0, i));
                slots.lock().expect("slot lock poisoned")[i as usize] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("slot lock poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

/// A deliberately tiny job body: a short integer-mix loop, no
/// allocation, ~tens of nanoseconds.
fn small_job(i: u64, seed: u64) -> u64 {
    let mut z = seed ^ i.rotate_left(32);
    for _ in 0..8 {
        z = z.wrapping_mul(0x2545_F491_4F6C_DD1D);
        z ^= z >> 29;
    }
    z
}

fn scaling_small_job(c: &mut Criterion) {
    let seeds = SeedSequence::new(7);
    let mut group = c.benchmark_group("runner_scaling/small_job");
    for threads in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("lockfree", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(parallel_replications(65_536, seeds, threads, small_job)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(mutex_parallel_replications(
                        65_536, seeds, threads, small_job,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn scaling_large_job(c: &mut Criterion) {
    let scenario = medium_cascade(17)
        .scenario()
        .suite_size(64)
        .build()
        .expect("valid world");
    let seeds = SeedSequence::new(23);
    let job = |_i: u64, seed: u64| scenario.run(seed).system_pfd;
    let mut group = c.benchmark_group("runner_scaling/large_job");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("lockfree", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(parallel_replications(512, seeds, threads, job))),
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(mutex_parallel_replications(512, seeds, threads, job)))
            },
        );
    }
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = scaling_small_job, scaling_large_job
);
criterion_main!(benches);
