//! Scaling of the packed-bitset evaluation kernel across demand-space
//! sizes (10³–10⁶) and fault-region profiles.
//!
//! Three region profiles bracket the kernel's design space:
//!
//! * **dense** — a handful of broad faults tiling the whole space. The
//!   packed path (`BlockWeights` weighted popcount over 64-demand
//!   blocks) is at its best here; the retired per-demand walk pays a
//!   score-function call for every demand.
//! * **sparse** — many small scattered regions in a mostly-empty space.
//!   `Prepared` switches to explicit sorted index lists
//!   (`EvalStrategy::SparseUnion`) once the packed blocks would mostly
//!   hold zeros.
//! * **skewed** — one huge region plus a tail of tiny ones, the mixed
//!   case the adaptive switch has to get right.
//!
//! Each configuration measures the kernel path (`Prepared::version_pfd`
//! / `Prepared::pair_pfd`) against the retired per-demand evaluation,
//! kept verbatim below as the `per_demand` baseline so the speedup
//! stays measurable. Both paths return bit-identical values — asserted
//! at setup for every world, so a kernel regression fails the bench
//! before it skews the trajectory.
//!
//! Run measured (not `--test`) with
//! `DIVERSIM_BENCH_JSON=BENCH_kernel_scaling.json` to archive the
//! trajectory, as the CI `bench-measure` job does.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use diversim_sim::prepared::Prepared;
use diversim_universe::demand::{DemandId, DemandSpace};
use diversim_universe::fault::{Fault, FaultModel};
use diversim_universe::profile::UsageProfile;
use diversim_universe::version::Version;

/// The retired hot-path design: walk every demand in the space, ask the
/// score function, and weight by the usage probability. Kept verbatim
/// as the ablation baseline.
fn per_demand_pfd(v: &Version, model: &FaultModel, profile: &UsageProfile) -> f64 {
    profile.expect(|x| v.score(model, x))
}

/// Retired per-demand joint evaluation for a 1-out-of-2 pair.
fn per_demand_pair_pfd(
    a: &Version,
    b: &Version,
    model: &FaultModel,
    profile: &UsageProfile,
) -> f64 {
    profile.expect(|x| a.score(model, x) * b.score(model, x))
}

/// A contiguous region of `len` demands starting at `start` (clamped to
/// the space).
fn region(n: usize, start: usize, len: usize) -> Fault {
    let end = (start + len).min(n);
    Fault::new((start..end).map(|i| DemandId::new(i as u32)))
}

/// Broad coverage: 8 faults tiling the space end to end, each
/// overlapping its neighbour by one demand (so the regions are not
/// pairwise disjoint and the packed-block strategy is exercised rather
/// than the disjoint fast path).
fn dense_world(n: usize) -> FaultModel {
    let chunk = n.div_ceil(8);
    let faults = (0..8).map(|k| region(n, k * chunk, chunk + 1)).collect();
    FaultModel::new(DemandSpace::new(n).expect("non-empty space"), faults).expect("valid model")
}

/// Scattered coverage: 16 sites spread across the space, each holding a
/// pair of half-overlapping 8-demand faults (32 faults total). Overlap
/// keeps the model off the disjoint fast path; the tiny total region
/// flips `Prepared` to explicit index lists once the space is large.
fn sparse_world(n: usize) -> FaultModel {
    let stride = (n / 16).max(12);
    let faults = (0..16)
        .flat_map(|k| {
            let base = (k * stride) % n;
            [region(n, base, 8), region(n, base + 4, 8)]
        })
        .collect();
    FaultModel::new(DemandSpace::new(n).expect("non-empty space"), faults).expect("valid model")
}

/// One huge region plus a tail of tiny ones.
fn skewed_world(n: usize) -> FaultModel {
    let mut faults = vec![region(n, 0, n / 2)];
    let stride = (n / 24).max(4);
    faults.extend((0..24).map(|k| region(n, (n / 2 + k * stride) % n, 4)));
    FaultModel::new(DemandSpace::new(n).expect("non-empty space"), faults).expect("valid model")
}

/// A graded, non-uniform usage profile so the weighted sums are not
/// trivially collapsible.
fn graded_profile(space: DemandSpace) -> UsageProfile {
    let n = space.len();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64 / 64.0)).collect();
    UsageProfile::from_weights(space, weights).expect("positive weights")
}

/// The version under test: every other fault present.
fn alternating_version(model: &FaultModel) -> Version {
    Version::from_faults(model, model.fault_ids().filter(|f| f.index() % 2 == 0))
}

/// Its complement partner for the pair benches.
fn complement_version(model: &FaultModel) -> Version {
    Version::from_faults(model, model.fault_ids().filter(|f| f.index() % 2 == 1))
}

fn bench_profile(c: &mut Criterion, name: &str, build: fn(usize) -> FaultModel) {
    let mut group = c.benchmark_group(format!("kernel_scaling/{name}"));
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let model = Arc::new(build(n));
        let profile = graded_profile(model.space());
        let prepared = Prepared::new(Arc::clone(&model), profile.clone());
        let v = alternating_version(&model);
        // The two paths must agree bit for bit, or the comparison below
        // measures two different quantities.
        assert_eq!(
            prepared.version_pfd(&v),
            per_demand_pfd(&v, &model, &profile)
        );
        group.bench_with_input(BenchmarkId::new("kernel", n), &n, |b, _| {
            b.iter(|| black_box(prepared.version_pfd(&v)))
        });
        group.bench_with_input(BenchmarkId::new("per_demand", n), &n, |b, _| {
            b.iter(|| black_box(per_demand_pfd(&v, &model, &profile)))
        });
    }
    group.finish();
}

fn scaling_dense(c: &mut Criterion) {
    bench_profile(c, "dense", dense_world);
}

fn scaling_sparse(c: &mut Criterion) {
    bench_profile(c, "sparse", sparse_world);
}

fn scaling_skewed(c: &mut Criterion) {
    bench_profile(c, "skewed", skewed_world);
}

/// Joint (1-out-of-2) evaluation on the dense profile: the masked
/// weighted-popcount intersection against the per-demand product walk.
fn scaling_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_scaling/pair_dense");
    for n in [10_000usize, 1_000_000] {
        let model = Arc::new(dense_world(n));
        let profile = graded_profile(model.space());
        let prepared = Prepared::new(Arc::clone(&model), profile.clone());
        let a = alternating_version(&model);
        let b_v = complement_version(&model);
        assert_eq!(
            prepared.pair_pfd(&a, &b_v),
            per_demand_pair_pfd(&a, &b_v, &model, &profile)
        );
        group.bench_with_input(BenchmarkId::new("kernel", n), &n, |b, _| {
            b.iter(|| black_box(prepared.pair_pfd(&a, &b_v)))
        });
        group.bench_with_input(BenchmarkId::new("per_demand", n), &n, |b, _| {
            b.iter(|| black_box(per_demand_pair_pfd(&a, &b_v, &model, &profile)))
        });
    }
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets = scaling_dense, scaling_sparse, scaling_skewed, scaling_pair
);
criterion_main!(benches);
