//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! singleton vs cascade fault models, Bernoulli closed form vs explicit
//! enumeration, alias vs linear sampling, and sequential vs parallel
//! replication.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use diversim_bench::worlds::medium_cascade;
use diversim_sim::runner::parallel_replications;
use diversim_stats::alias::AliasSampler;
use diversim_stats::seed::SeedSequence;
use diversim_testing::generation::ProfileGenerator;
use diversim_testing::process::perfect_debug;
use diversim_universe::demand::DemandId;
use diversim_universe::generator::{ProfileKind, PropensityKind, RegionSize, UniverseSpec};
use diversim_universe::population::{ExplicitPopulation, Population};

/// Singleton vs cascade models at equal size: cost of `perfect_debug`.
fn ablation_region_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/region_structure");
    for (name, region) in [
        ("singleton", RegionSize::Fixed(1)),
        ("cascade-4", RegionSize::Fixed(4)),
        ("geometric-3", RegionSize::Geometric { mean: 3.0 }),
    ] {
        let spec = UniverseSpec {
            n_demands: 500,
            n_faults: 200,
            region_size: region,
            profile: ProfileKind::Uniform,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let (universe, pop) = spec
            .generate_with_population(&mut rng, PropensityKind::Constant(0.3))
            .expect("valid");
        let gen = ProfileGenerator::new(universe.profile().clone());
        let version = pop.sample(&mut rng);
        let suite = diversim_testing::generation::SuiteGenerator::generate(&gen, &mut rng, 128);
        group.bench_function(name, |b| {
            b.iter(|| black_box(perfect_debug(&version, &suite, universe.model())))
        });
    }
    group.finish();
}

/// θ(x) via the Bernoulli closed form vs explicit-population averaging.
fn ablation_population_representation(c: &mut Criterion) {
    let spec = UniverseSpec {
        n_demands: 12,
        n_faults: 12,
        region_size: RegionSize::Fixed(1),
        profile: ProfileKind::Uniform,
    };
    let mut rng = StdRng::seed_from_u64(6);
    let (universe, bernoulli) = spec
        .generate_with_population(&mut rng, PropensityKind::Uniform { lo: 0.1, hi: 0.5 })
        .expect("valid");
    let support = bernoulli.enumerate(1 << 14).expect("enumerable");
    let explicit = ExplicitPopulation::new(Arc::clone(universe.model()), support).expect("valid");
    let x = DemandId::new(5);

    let mut group = c.benchmark_group("ablation/population_theta");
    group.bench_function("bernoulli_closed_form", |b| {
        b.iter(|| black_box(bernoulli.theta(black_box(x))))
    });
    group.bench_function("explicit_enumeration_4096", |b| {
        b.iter(|| black_box(explicit.theta(black_box(x))))
    });
    group.finish();
}

/// Alias-method O(1) sampling vs a linear CDF walk.
fn ablation_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let weights: Vec<f64> = (0..2000).map(|i| 1.0 / (i + 1) as f64).collect();
    let sampler = AliasSampler::new(&weights).expect("valid");
    let total: f64 = weights.iter().sum();
    let norm: Vec<f64> = weights.iter().map(|w| w / total).collect();

    let mut group = c.benchmark_group("ablation/categorical_sampling");
    group.bench_function("alias_o1", |b| {
        b.iter(|| black_box(sampler.sample(&mut rng)))
    });
    group.bench_function("linear_cdf_walk", |b| {
        b.iter(|| {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut out = norm.len() - 1;
            for (i, &p) in norm.iter().enumerate() {
                acc += p;
                if u < acc {
                    out = i;
                    break;
                }
            }
            black_box(out)
        })
    });
    group.finish();
}

/// Sequential vs parallel replication throughput for a fixed workload.
fn ablation_parallelism(c: &mut Criterion) {
    let scenario = medium_cascade(9)
        .scenario()
        .suite_size(32)
        .build()
        .expect("valid world");
    let seeds = SeedSequence::new(99);
    let job = |_i: u64, seed: u64| scenario.run(seed).system_pfd;
    let mut group = c.benchmark_group("ablation/replication_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| black_box(parallel_replications(256, seeds, threads, job))),
        );
    }
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets =
    ablation_region_structure,
    ablation_population_representation,
    ablation_sampling,
    ablation_parallelism
);
criterion_main!(benches);
