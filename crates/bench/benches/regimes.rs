//! Criterion benchmarks for the paper-level computations: exact marginal
//! analyses, suite-measure enumeration, pair and system campaign
//! simulation and growth curves.
//!
//! Run measured (not `--test`) with
//! `DIVERSIM_BENCH_JSON=BENCH_regimes.json` to archive the trajectory,
//! as the CI `bench-measure` job does.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use diversim_bench::worlds::{medium_cascade, small_graded};
use diversim_core::marginal::{MarginalAnalysis, SuiteAssignment};
use diversim_core::structure::Structure;
use diversim_sim::campaign::CampaignRegime;
use diversim_testing::suite_population::enumerate_iid_suites;

fn bench_exact_marginal(c: &mut Criterion) {
    let w = small_graded();
    let mut group = c.benchmark_group("exact/marginal_analysis");
    for n in [2usize, 4, 8] {
        let m = enumerate_iid_suites(&w.profile, n, 1 << 16).expect("enumerable");
        group.bench_with_input(BenchmarkId::new("shared", n), &m, |b, m| {
            b.iter(|| {
                black_box(MarginalAnalysis::compute(
                    &w.pop_a,
                    &w.pop_a,
                    SuiteAssignment::Shared(m),
                    &w.profile,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("independent", n), &m, |b, m| {
            b.iter(|| {
                black_box(MarginalAnalysis::compute(
                    &w.pop_a,
                    &w.pop_a,
                    SuiteAssignment::independent(m),
                    &w.profile,
                ))
            })
        });
    }
    group.finish();
}

fn bench_suite_enumeration(c: &mut Criterion) {
    let w = small_graded();
    let mut group = c.benchmark_group("exact/enumerate_iid_suites");
    for n in [2usize, 6, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(enumerate_iid_suites(&w.profile, n, 1 << 16).expect("fits")))
        });
    }
    group.finish();
}

fn bench_campaigns(c: &mut Criterion) {
    let base = medium_cascade(7)
        .scenario()
        .suite_size(64)
        .build()
        .expect("valid world");
    let mut group = c.benchmark_group("sim/pair_campaign");
    for (name, regime) in [
        ("independent", CampaignRegime::IndependentSuites),
        ("shared", CampaignRegime::SharedSuite),
        (
            "back_to_back",
            CampaignRegime::BackToBack(diversim_testing::oracle::IdenticalFailureModel::Bernoulli(
                0.5,
            )),
        ),
    ] {
        let scenario = base.with_regime(regime);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(scenario.run(seed))
            })
        });
    }
    group.finish();
}

fn bench_system_campaigns(c: &mut Criterion) {
    let base = medium_cascade(9)
        .scenario()
        .suite_size(64)
        .build()
        .expect("valid world");
    let mut group = c.benchmark_group("sim/system_campaign");
    for (name, structure) in [
        ("and-2", Structure::one_out_of_n(2)),
        ("2-of-3", Structure::k_of_n(2, 3)),
        (
            "nested-2x2",
            Structure::or(vec![
                Structure::and(vec![Structure::component(0), Structure::component(1)]),
                Structure::and(vec![Structure::component(2), Structure::component(3)]),
            ]),
        ),
    ] {
        let scenario = base.with_structure(structure).expect("valid structure");
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(scenario.system_run(seed).expect("valid system"))
            })
        });
    }
    group.finish();
}

fn bench_growth(c: &mut Criterion) {
    let scenario = medium_cascade(8).scenario().build().expect("valid world");
    let checkpoints = [0usize, 16, 64, 256];
    c.bench_function("sim/growth_replication", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(
                scenario
                    .growth_sample(&checkpoints, seed)
                    .expect("valid checkpoints"),
            )
        })
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(
    name = benches;
    config = quick_config();
    targets =
    bench_exact_marginal,
    bench_suite_enumeration,
    bench_campaigns,
    bench_system_campaigns,
    bench_growth
);
criterion_main!(benches);
