//! Property-based tests of the stopping-rule arithmetic: the demand
//! count [`failure_free_tests_required`] promises must actually deliver
//! the confidence [`failure_free_confidence`] reports, one test fewer
//! must not, and the Bayesian posterior must respond monotonically to
//! evidence.

use proptest::prelude::*;

use diversim_stats::stopping::{
    bayesian_confidence, failure_free_confidence, failure_free_tests_required,
};

/// Targets spanning fourteen decades, including the regions where
/// `1.0 - target` loses precision, paired with workable confidences.
fn target_and_confidence() -> impl Strategy<Value = (f64, f64)> {
    (
        prop_oneof![1e-14f64..1e-6, 1e-6f64..1e-2, 0.01f64..0.99,],
        0.01f64..0.999_999,
    )
}

proptest! {
    #[test]
    fn required_tests_round_trip_through_confidence(
        (target, confidence) in target_and_confidence(),
    ) {
        let n = failure_free_tests_required(target, confidence).unwrap();
        prop_assert!(n >= 1, "positive targets need at least one test");
        // The promised demand count achieves the promised confidence…
        let achieved = failure_free_confidence(target, n).unwrap();
        prop_assert!(
            achieved >= confidence,
            "{n} tests at target {target} give {achieved} < {confidence}"
        );
        // …and it is the *smallest* such count.
        let short = failure_free_confidence(target, n - 1).unwrap();
        prop_assert!(
            short < confidence,
            "{} tests already give {short} >= {confidence}", n - 1
        );
    }

    #[test]
    fn confidence_is_monotone_in_tests_and_target(
        (target, _) in target_and_confidence(),
        n in 1u64..1_000_000,
    ) {
        let c = failure_free_confidence(target, n).unwrap();
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(failure_free_confidence(target, n + 1).unwrap() >= c);
        prop_assert!(failure_free_confidence(target, 0).unwrap() == 0.0);
    }

    #[test]
    fn bayesian_posterior_is_monotone_in_evidence(
        n in 1u64..500,
        failures in 0u64..20,
        target in 0.01f64..0.5,
    ) {
        let failures = failures.min(n);
        let post = bayesian_confidence(1.0, 1.0, n, failures, target).unwrap();
        prop_assert!((0.0..=1.0).contains(&post));
        // More failure-free demands: never less confident.
        let more = bayesian_confidence(1.0, 1.0, n + 1, failures, target).unwrap();
        prop_assert!(more >= post - 1e-12);
        // One more failure in the same demand count: never more confident.
        if failures < n {
            let worse = bayesian_confidence(1.0, 1.0, n, failures + 1, target).unwrap();
            prop_assert!(worse <= post + 1e-12);
        }
    }
}
