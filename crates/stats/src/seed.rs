//! Deterministic seed derivation.
//!
//! Replicated Monte Carlo experiments must be reproducible and independent
//! of the execution schedule: replication `i` always receives the same
//! seed regardless of which thread runs it. [`SeedSequence`] derives
//! per-replication and per-stream seeds from a root seed with SplitMix64,
//! whose output is a bijection of its counter — distinct indices can never
//! collide.

/// One step of the SplitMix64 generator: mixes `state + GOLDEN_GAMMA`.
///
/// SplitMix64 passes BigCrush and is the standard seeding PRNG for
/// xoshiro-family generators.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent, reproducible seeds from a root seed.
///
/// Seeds are derived as `splitmix64(root ⊕ mix(stream) ⊕ mix(index))`,
/// so each `(stream, index)` pair maps to a distinct, well-mixed value.
/// Streams separate logical uses (e.g. version sampling vs. suite
/// generation) so that changing the number of draws in one stream does not
/// perturb another.
///
/// # Examples
///
/// ```
/// use diversim_stats::seed::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let a = seq.seed_for(0, 0);
/// let b = seq.seed_for(0, 1);
/// assert_ne!(a, b);
/// // Derivation is pure: same coordinates, same seed.
/// assert_eq!(a, SeedSequence::new(42).seed_for(0, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Seed for `(stream, index)`. Pure function of its arguments.
    pub fn seed_for(&self, stream: u64, index: u64) -> u64 {
        // Mix each coordinate through a full SplitMix64 round before
        // combining, so that low-entropy (small-integer) coordinates are
        // spread across all 64 bits.
        let s = splitmix64(stream.wrapping_mul(2).wrapping_add(1));
        let i = splitmix64(index.wrapping_mul(2));
        splitmix64(self.root ^ s.rotate_left(17) ^ i)
    }

    /// Derives a child sequence for a named sub-experiment.
    ///
    /// The child root mixes a dedicated *odd-input* tag where
    /// [`SeedSequence::seed_for`] mixes `splitmix64(2·index)`. SplitMix64
    /// is a bijection, so its images of even and odd inputs are disjoint
    /// sets: for the same `stream`, no replication index — including
    /// `u64::MAX` — can reproduce a child root. (An earlier formulation
    /// returned `seed_for(stream, u64::MAX)` verbatim, silently sharing
    /// the child's whole seed stream with that legitimate replication.)
    ///
    /// # Examples
    ///
    /// This is the serve protocol's per-request seed contract: a
    /// request's effective root is
    /// `SeedSequence::new(seed).child(stream).root()`, so concurrent
    /// clients on distinct streams get reproducible, non-colliding
    /// replication streams from one shared base seed:
    ///
    /// ```
    /// use diversim_stats::seed::SeedSequence;
    ///
    /// let base = SeedSequence::new(42);
    /// let (c0, c1) = (base.child(0).root(), base.child(1).root());
    /// assert_ne!(c0, c1);
    /// // Pure in (seed, stream): re-derivation always agrees.
    /// assert_eq!(c0, SeedSequence::new(42).child(0).root());
    /// ```
    pub fn child(&self, stream: u64) -> SeedSequence {
        let s = splitmix64(stream.wrapping_mul(2).wrapping_add(1));
        let tag = splitmix64(CHILD_TAG);
        SeedSequence {
            root: splitmix64(self.root ^ s.rotate_left(17) ^ tag),
        }
    }
}

/// Domain-separation tag for [`SeedSequence::child`]. Odd by
/// construction: `seed_for` only ever feeds even inputs
/// (`index.wrapping_mul(2)`) into the index coordinate, so
/// `splitmix64(CHILD_TAG)` can never equal an index coordinate.
const CHILD_TAG: u64 = 0xD6E8_FEB8_6659_FD93;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 per the public-domain implementation
        // (sequence of splitmix64 with incrementing internal state).
        let mut state = 0u64;
        let mut outs = Vec::new();
        for _ in 0..3 {
            let out = splitmix64(state);
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            // reproduce the classic "state += gamma then mix" formulation
            outs.push(out);
        }
        assert_eq!(outs[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(outs[1], 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(outs[2], 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn distinct_indices_get_distinct_seeds() {
        let seq = SeedSequence::new(7);
        let mut seen = HashSet::new();
        for stream in 0..8 {
            for index in 0..256 {
                assert!(
                    seen.insert(seq.seed_for(stream, index)),
                    "collision at stream {stream}, index {index}"
                );
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSequence::new(123).seed_for(4, 99);
        let b = SeedSequence::new(123).seed_for(4, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_roots_decorrelate() {
        let a = SeedSequence::new(1).seed_for(0, 0);
        let b = SeedSequence::new(2).seed_for(0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn child_sequences_are_distinct_from_parent() {
        let parent = SeedSequence::new(9);
        let child = parent.child(3);
        assert_ne!(parent.root(), child.root());
        assert_ne!(parent.seed_for(0, 0), child.seed_for(0, 0));
    }

    #[test]
    fn child_tag_is_odd() {
        // The disjointness argument in `child`'s docs requires an odd
        // tag input (index coordinates mix even inputs only).
        assert_eq!(CHILD_TAG % 2, 1);
    }

    #[test]
    fn child_roots_do_not_collide_with_replication_seeds() {
        // Regression: `child(stream)` used to return
        // `seed_for(stream, u64::MAX)` — a legitimate replication seed.
        let seq = SeedSequence::new(0xDEAD_BEEF);
        for stream in 0..8u64 {
            let child_root = seq.child(stream).root();
            assert_ne!(
                child_root,
                seq.seed_for(stream, u64::MAX),
                "child({stream}) equals the index-u64::MAX seed"
            );
            for index in (0..4096).chain([u64::MAX - 1, u64::MAX]) {
                assert_ne!(
                    child_root,
                    seq.seed_for(stream, index),
                    "child({stream}) collides with seed_for({stream}, {index})"
                );
            }
        }
    }

    #[test]
    fn streams_are_independent_of_index_usage() {
        // Consuming many indices on stream 0 must not change stream 1.
        let seq = SeedSequence::new(55);
        let before = seq.seed_for(1, 0);
        let _burn: Vec<u64> = (0..1000).map(|i| seq.seed_for(0, i)).collect();
        assert_eq!(seq.seed_for(1, 0), before);
    }
}
