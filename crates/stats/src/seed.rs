//! Deterministic seed derivation.
//!
//! Replicated Monte Carlo experiments must be reproducible and independent
//! of the execution schedule: replication `i` always receives the same
//! seed regardless of which thread runs it. [`SeedSequence`] derives
//! per-replication and per-stream seeds from a root seed with SplitMix64,
//! whose output is a bijection of its counter — distinct indices can never
//! collide.

/// One step of the SplitMix64 generator: mixes `state + GOLDEN_GAMMA`.
///
/// SplitMix64 passes BigCrush and is the standard seeding PRNG for
/// xoshiro-family generators.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent, reproducible seeds from a root seed.
///
/// Seeds are derived as `splitmix64(root ⊕ mix(stream) ⊕ mix(index))`,
/// so each `(stream, index)` pair maps to a distinct, well-mixed value.
/// Streams separate logical uses (e.g. version sampling vs. suite
/// generation) so that changing the number of draws in one stream does not
/// perturb another.
///
/// # Examples
///
/// ```
/// use diversim_stats::seed::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let a = seq.seed_for(0, 0);
/// let b = seq.seed_for(0, 1);
/// assert_ne!(a, b);
/// // Derivation is pure: same coordinates, same seed.
/// assert_eq!(a, SeedSequence::new(42).seed_for(0, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        Self { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Seed for `(stream, index)`. Pure function of its arguments.
    pub fn seed_for(&self, stream: u64, index: u64) -> u64 {
        // Mix each coordinate through a full SplitMix64 round before
        // combining, so that low-entropy (small-integer) coordinates are
        // spread across all 64 bits.
        let s = splitmix64(stream.wrapping_mul(2).wrapping_add(1));
        let i = splitmix64(index.wrapping_mul(2));
        splitmix64(self.root ^ s.rotate_left(17) ^ i)
    }

    /// Derives a child sequence for a named sub-experiment.
    pub fn child(&self, stream: u64) -> SeedSequence {
        SeedSequence {
            root: self.seed_for(stream, u64::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 per the public-domain implementation
        // (sequence of splitmix64 with incrementing internal state).
        let mut state = 0u64;
        let mut outs = Vec::new();
        for _ in 0..3 {
            let out = splitmix64(state);
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            // reproduce the classic "state += gamma then mix" formulation
            outs.push(out);
        }
        assert_eq!(outs[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(outs[1], 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(outs[2], 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn distinct_indices_get_distinct_seeds() {
        let seq = SeedSequence::new(7);
        let mut seen = HashSet::new();
        for stream in 0..8 {
            for index in 0..256 {
                assert!(
                    seen.insert(seq.seed_for(stream, index)),
                    "collision at stream {stream}, index {index}"
                );
            }
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSequence::new(123).seed_for(4, 99);
        let b = SeedSequence::new(123).seed_for(4, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_roots_decorrelate() {
        let a = SeedSequence::new(1).seed_for(0, 0);
        let b = SeedSequence::new(2).seed_for(0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn child_sequences_are_distinct_from_parent() {
        let parent = SeedSequence::new(9);
        let child = parent.child(3);
        assert_ne!(parent.root(), child.root());
        assert_ne!(parent.seed_for(0, 0), child.seed_for(0, 0));
    }

    #[test]
    fn streams_are_independent_of_index_usage() {
        // Consuming many indices on stream 0 must not change stream 1.
        let seq = SeedSequence::new(55);
        let before = seq.seed_for(1, 0);
        let _burn: Vec<u64> = (0..1000).map(|i| seq.seed_for(0, i)).collect();
        assert_eq!(seq.seed_for(1, 0), before);
    }
}
