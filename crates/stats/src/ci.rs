//! Confidence intervals for proportions and means.
//!
//! The Monte Carlo experiments estimate probabilities of failure on demand
//! (pfd) — proportions of Bernoulli trials — so the binomial intervals here
//! ([`wilson`], [`clopper_pearson`]) are the primary reporting tool, with
//! [`normal_mean`] for real-valued statistics.

use crate::error::StatsError;
use crate::special::{inv_reg_inc_beta, normal_quantile};

/// A two-sided confidence interval `[lo, hi]` with its nominal level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Nominal confidence level, e.g. `0.95`.
    pub level: f64,
}

impl Interval {
    /// Returns `true` if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Width of the interval, `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] @{:.0}%",
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

fn check_level(level: f64) -> Result<f64, StatsError> {
    if level.is_finite() && level > 0.0 && level < 1.0 {
        Ok(level)
    } else {
        Err(StatsError::InvalidProbability {
            name: "level",
            value: level,
        })
    }
}

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`, at the given confidence `level`.
///
/// Behaves sensibly at the boundaries (`successes = 0` or `= trials`),
/// unlike the Wald interval.
///
/// # Errors
///
/// Returns an error if `trials == 0` or `level ∉ (0, 1)` or
/// `successes > trials`.
///
/// # Examples
///
/// ```
/// let iv = diversim_stats::ci::wilson(8, 10, 0.95).unwrap();
/// assert!(iv.contains(0.8));
/// assert!(iv.lo > 0.4 && iv.hi < 1.0);
/// ```
pub fn wilson(successes: u64, trials: u64, level: f64) -> Result<Interval, StatsError> {
    let level = check_level(level)?;
    if trials == 0 {
        return Err(StatsError::EmptySample);
    }
    if successes > trials {
        return Err(StatsError::InvalidInterval {
            lo: successes as f64,
            hi: trials as f64,
        });
    }
    let z = normal_quantile(0.5 + level / 2.0)?;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    // At the boundaries the Wilson endpoints are exactly 0 and 1; pin them
    // so rounding cannot exclude the point estimate.
    let lo = if successes == 0 {
        0.0
    } else {
        (centre - half).max(0.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (centre + half).min(1.0)
    };
    Ok(Interval { lo, hi, level })
}

/// Clopper–Pearson ("exact") interval for a binomial proportion, via beta
/// quantiles.
///
/// Guaranteed coverage at least `level`, at the price of conservatism.
///
/// # Errors
///
/// Same conditions as [`wilson`].
///
/// # Examples
///
/// ```
/// // Zero failures in 100 demands: upper bound near the rule of three, 3/n.
/// let iv = diversim_stats::ci::clopper_pearson(0, 100, 0.95).unwrap();
/// assert_eq!(iv.lo, 0.0);
/// assert!((iv.hi - 0.036).abs() < 0.002);
/// ```
pub fn clopper_pearson(successes: u64, trials: u64, level: f64) -> Result<Interval, StatsError> {
    let level = check_level(level)?;
    if trials == 0 {
        return Err(StatsError::EmptySample);
    }
    if successes > trials {
        return Err(StatsError::InvalidInterval {
            lo: successes as f64,
            hi: trials as f64,
        });
    }
    let alpha = 1.0 - level;
    let k = successes as f64;
    let n = trials as f64;
    let lo = if successes == 0 {
        0.0
    } else {
        inv_reg_inc_beta(k, n - k + 1.0, alpha / 2.0)?
    };
    let hi = if successes == trials {
        1.0
    } else {
        inv_reg_inc_beta(k + 1.0, n - k, 1.0 - alpha / 2.0)?
    };
    Ok(Interval { lo, hi, level })
}

/// Normal-approximation interval for a mean, from the point estimate and its
/// standard error.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] for a bad `level` and
/// [`StatsError::NonPositive`] for a negative or non-finite standard error.
pub fn normal_mean(mean: f64, standard_error: f64, level: f64) -> Result<Interval, StatsError> {
    let level = check_level(level)?;
    if standard_error < 0.0 || !standard_error.is_finite() {
        return Err(StatsError::NonPositive {
            name: "standard_error",
            value: standard_error,
        });
    }
    let z = normal_quantile(0.5 + level / 2.0)?;
    Ok(Interval {
        lo: mean - z * standard_error,
        hi: mean + z * standard_error,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_is_contained_in_unit_interval() {
        for &(k, n) in &[(0u64, 10u64), (10, 10), (5, 10), (1, 1000)] {
            let iv = wilson(k, n, 0.99).unwrap();
            assert!(iv.lo >= 0.0 && iv.hi <= 1.0);
            assert!(iv.lo <= iv.hi);
        }
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for &(k, n) in &[(3u64, 17u64), (50, 100), (999, 1000)] {
            let iv = wilson(k, n, 0.95).unwrap();
            assert!(iv.contains(k as f64 / n as f64));
        }
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let small = wilson(5, 10, 0.95).unwrap();
        let large = wilson(500, 1000, 0.95).unwrap();
        assert!(large.width() < small.width());
    }

    #[test]
    fn clopper_pearson_known_value() {
        // k = 1, n = 20, 95%: standard reference values.
        let iv = clopper_pearson(1, 20, 0.95).unwrap();
        assert!((iv.lo - 0.00126588).abs() < 1e-5);
        assert!((iv.hi - 0.24873).abs() < 1e-4);
    }

    #[test]
    fn clopper_pearson_is_wider_than_wilson() {
        // The "exact" interval is conservative.
        for &(k, n) in &[(2u64, 30u64), (15, 40)] {
            let cp = clopper_pearson(k, n, 0.95).unwrap();
            let wi = wilson(k, n, 0.95).unwrap();
            assert!(cp.width() >= wi.width() - 1e-12);
        }
    }

    #[test]
    fn clopper_pearson_boundary_cases() {
        let zero = clopper_pearson(0, 50, 0.95).unwrap();
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0);
        let all = clopper_pearson(50, 50, 0.95).unwrap();
        assert_eq!(all.hi, 1.0);
        assert!(all.lo < 1.0);
    }

    #[test]
    fn zero_trials_is_an_error() {
        assert!(wilson(0, 0, 0.95).is_err());
        assert!(clopper_pearson(0, 0, 0.95).is_err());
    }

    #[test]
    fn successes_beyond_trials_is_an_error() {
        assert!(wilson(11, 10, 0.95).is_err());
        assert!(clopper_pearson(11, 10, 0.95).is_err());
    }

    #[test]
    fn bad_level_is_an_error() {
        assert!(wilson(1, 10, 0.0).is_err());
        assert!(wilson(1, 10, 1.0).is_err());
        assert!(normal_mean(0.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn normal_mean_symmetric_about_estimate() {
        let iv = normal_mean(10.0, 2.0, 0.95).unwrap();
        assert!((iv.midpoint() - 10.0).abs() < 1e-12);
        assert!((iv.width() - 2.0 * 1.959_963_984_540_054 * 2.0).abs() < 1e-6);
    }

    #[test]
    fn interval_display_mentions_level() {
        let iv = Interval {
            lo: 0.1,
            hi: 0.2,
            level: 0.95,
        };
        assert!(iv.to_string().contains("95"));
    }
}
