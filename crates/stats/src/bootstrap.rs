//! Percentile bootstrap confidence intervals.
//!
//! For statistics without a tractable sampling distribution (ratios of
//! pfds, variance decompositions), the experiment harness falls back on
//! the nonparametric bootstrap.

use crate::ci::Interval;
use crate::error::StatsError;
use crate::summary::Summary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Percentile bootstrap interval for an arbitrary statistic of a sample.
///
/// Draws `resamples` bootstrap resamples (with replacement) of the input,
/// applies `statistic` to each, and returns the empirical
/// `(α/2, 1 − α/2)` percentiles.
///
/// Deterministic for a given `seed`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for an empty input,
/// [`StatsError::InvalidProbability`] for a bad `level` and
/// [`StatsError::NonPositive`] if `resamples == 0`.
///
/// # Examples
///
/// ```
/// use diversim_stats::bootstrap::percentile;
///
/// let data: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
/// let iv = percentile(&data, |s| s.iter().sum::<f64>() / s.len() as f64,
///                     1000, 0.95, 42).unwrap();
/// let mean = data.iter().sum::<f64>() / data.len() as f64;
/// assert!(iv.contains(mean));
/// ```
pub fn percentile<F>(
    sample: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<Interval, StatsError>
where
    F: Fn(&[f64]) -> f64,
{
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !level.is_finite() || level <= 0.0 || level >= 1.0 {
        return Err(StatsError::InvalidProbability {
            name: "level",
            value: level,
        });
    }
    if resamples == 0 {
        return Err(StatsError::NonPositive {
            name: "resamples",
            value: 0.0,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; sample.len()];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = sample[rng.gen_range(0..sample.len())];
        }
        stats.push(statistic(&scratch));
    }
    let summary = Summary::from_slice(&stats)?;
    let alpha = 1.0 - level;
    Ok(Interval {
        lo: summary.quantile(alpha / 2.0),
        hi: summary.quantile(1.0 - alpha / 2.0),
        level,
    })
}

/// Convenience wrapper: bootstrap interval for the sample mean.
///
/// # Errors
///
/// Same as [`percentile`].
pub fn mean_interval(
    sample: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<Interval, StatsError> {
    percentile(
        sample,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(percentile(&[], |_| 0.0, 10, 0.95, 1).is_err());
        assert!(percentile(&[1.0], |_| 0.0, 0, 0.95, 1).is_err());
        assert!(percentile(&[1.0], |_| 0.0, 10, 1.0, 1).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let a = mean_interval(&data, 500, 0.9, 7).unwrap();
        let b = mean_interval(&data, 500, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let a = mean_interval(&data, 500, 0.9, 7).unwrap();
        let b = mean_interval(&data, 500, 0.9, 8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn constant_sample_gives_degenerate_interval() {
        let data = [3.0; 20];
        let iv = mean_interval(&data, 200, 0.95, 1).unwrap();
        assert_eq!(iv.lo, 3.0);
        assert_eq!(iv.hi, 3.0);
    }

    #[test]
    fn interval_tightens_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        let iv_small = mean_interval(&small, 400, 0.95, 3).unwrap();
        let iv_large = mean_interval(&large, 400, 0.95, 3).unwrap();
        assert!(iv_large.width() < iv_small.width());
    }

    #[test]
    fn median_statistic_works() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let iv = percentile(
            &data,
            |s| {
                let mut v = s.to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[v.len() / 2]
            },
            300,
            0.95,
            11,
        )
        .unwrap();
        assert!(iv.contains(50.0));
    }
}
