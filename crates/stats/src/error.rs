//! Error type shared by the statistics substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by statistical routines in this crate.
///
/// All constructors in this crate validate their arguments (probabilities
/// must lie in `[0, 1]`, samples must be non-empty where a mean is needed,
/// and so on) and report violations through this type rather than panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A probability-valued argument was outside `[0, 1]` or non-finite.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An operation that needs at least one observation received none.
    EmptySample,
    /// A weight vector summed to zero or contained a negative/non-finite entry.
    InvalidWeights,
    /// Numerical iteration failed to converge.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
    },
    /// A pair of bounds was in the wrong order.
    InvalidInterval {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be a probability in [0, 1], got {value}"
                )
            }
            StatsError::NonPositive { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be strictly positive, got {value}"
                )
            }
            StatsError::EmptySample => write!(f, "operation requires a non-empty sample"),
            StatsError::InvalidWeights => {
                write!(
                    f,
                    "weights must be non-negative, finite, and sum to a positive value"
                )
            }
            StatsError::NoConvergence { routine } => {
                write!(f, "numerical routine `{routine}` failed to converge")
            }
            StatsError::InvalidInterval { lo, hi } => {
                write!(
                    f,
                    "invalid interval: lower bound {lo} exceeds upper bound {hi}"
                )
            }
        }
    }
}

impl Error for StatsError {}

/// Validates that `value` is a finite probability in `[0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] when the check fails.
pub fn check_probability(name: &'static str, value: f64) -> Result<f64, StatsError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(StatsError::InvalidProbability { name, value })
    }
}

/// Validates that `value` is finite and strictly positive.
///
/// # Errors
///
/// Returns [`StatsError::NonPositive`] when the check fails.
pub fn check_positive(name: &'static str, value: f64) -> Result<f64, StatsError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(StatsError::NonPositive { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::InvalidProbability {
            name: "alpha",
            value: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("alpha"));
        assert!(msg.contains("1.5"));
    }

    #[test]
    fn check_probability_accepts_bounds() {
        assert_eq!(check_probability("p", 0.0), Ok(0.0));
        assert_eq!(check_probability("p", 1.0), Ok(1.0));
        assert_eq!(check_probability("p", 0.25), Ok(0.25));
    }

    #[test]
    fn check_probability_rejects_out_of_range() {
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", 1.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
        assert!(check_probability("p", f64::INFINITY).is_err());
    }

    #[test]
    fn check_positive_rejects_zero_and_negative() {
        assert!(check_positive("x", 0.0).is_err());
        assert!(check_positive("x", -1.0).is_err());
        assert!(check_positive("x", f64::NAN).is_err());
        assert_eq!(check_positive("x", 2.0), Ok(2.0));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
