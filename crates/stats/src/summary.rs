//! Sample summaries for experiment reports.

use crate::error::StatsError;

/// A five-number-plus summary of a real-valued sample: count, mean,
/// standard deviation, extremes and interpolated quantiles.
///
/// # Examples
///
/// ```
/// use diversim_stats::summary::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    sample_sd: f64,
}

impl Summary {
    /// Builds a summary from a slice of observations.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] for an empty slice and
    /// [`StatsError::InvalidWeights`] if any observation is non-finite.
    pub fn from_slice(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::InvalidWeights);
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let sample_sd = if sorted.len() < 2 {
            0.0
        } else {
            (sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        Ok(Self {
            sorted,
            mean,
            sample_sd,
        })
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample standard deviation (zero for a single observation).
    pub fn sample_sd(&self) -> f64 {
        self.sample_sd
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        self.sample_sd / (self.sorted.len() as f64).sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Median (the 0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Linearly interpolated quantile (R type-7 / NumPy default).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let h = q * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac
    }

    /// Interquartile range, `q(0.75) − q(0.25)`.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// The observations, sorted ascending.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} p50={:.6} max={:.6}",
            self.count(),
            self.mean(),
            self.sample_sd(),
            self.min(),
            self.median(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert_eq!(Summary::from_slice(&[]), Err(StatsError::EmptySample));
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
        assert!(Summary::from_slice(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn single_value() {
        let s = Summary::from_slice(&[7.5]).unwrap();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.sample_sd(), 0.0);
        assert_eq!(s.median(), 7.5);
        assert_eq!(s.quantile(0.99), 7.5);
    }

    #[test]
    fn median_even_count_interpolates() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn quantiles_match_numpy_type7() {
        // numpy.quantile([1,2,3,4,5,6,7,8,9,10], 0.25) == 3.25
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let s = Summary::from_slice(&xs).unwrap();
        assert!((s.quantile(0.25) - 3.25).abs() < 1e-12);
        assert!((s.quantile(0.75) - 7.75).abs() < 1e-12);
        assert!((s.iqr() - 4.5).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 10.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = Summary::from_slice(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.sorted_values(), &[1.0, 5.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_panics() {
        let s = Summary::from_slice(&[1.0, 2.0]).unwrap();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = Summary::from_slice(&[1.0, 3.0]).unwrap();
        let out = s.to_string();
        assert!(out.contains("n=2"));
        assert!(out.contains("mean=2.0"));
    }
}
