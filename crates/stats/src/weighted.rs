//! Exact moments under discrete probability measures.
//!
//! The Popov–Littlewood model is built entirely from expectations of
//! functions of a demand `X ~ Q(·)`, a program `Π ~ S(·)` or a test suite
//! `T ~ M(·)` over *finite* discrete spaces. This module computes those
//! moments exactly from `(value, weight)` pairs:
//!
//! * `E[f(X)]` — [`mean`]
//! * `Var(f(X)) = E[f²] − E[f]²` — [`variance`]
//! * `Cov(f(X), g(X))` — [`covariance`]
//!
//! Weights need not be normalised; they are divided by their sum. All of
//! the paper's headline quantities — `Var(Θ)` in equation (6),
//! `Cov(Θ_A, Θ_B)` in (9), `Var_Ξ(ξ(x,T))` in (20), the covariance term in
//! (21) — reduce to these three functions.

use crate::error::StatsError;

/// The exact first two central moments of a function under a discrete
/// measure, as returned by [`moments`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// The expectation `E[f]`.
    pub mean: f64,
    /// The (population) variance `E[f²] − E[f]²`, clamped at zero to guard
    /// against negative rounding residue.
    pub variance: f64,
}

fn validated_total<I>(pairs: I) -> Result<(Vec<(f64, f64)>, f64), StatsError>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let mut collected = Vec::new();
    let mut total = 0.0_f64;
    for (value, weight) in pairs {
        if !weight.is_finite() || weight < 0.0 {
            return Err(StatsError::InvalidWeights);
        }
        total += weight;
        collected.push((value, weight));
    }
    if collected.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if total <= 0.0 || !total.is_finite() {
        return Err(StatsError::InvalidWeights);
    }
    Ok((collected, total))
}

/// Computes the exact weighted mean `E[f] = Σ f(x)·w(x) / Σ w(x)`.
///
/// # Errors
///
/// Returns [`StatsError::EmptySample`] for an empty iterator and
/// [`StatsError::InvalidWeights`] if any weight is negative or non-finite,
/// or all weights are zero.
///
/// # Examples
///
/// ```
/// let m = diversim_stats::weighted::mean([(1.0, 0.25), (3.0, 0.75)]).unwrap();
/// assert!((m - 2.5).abs() < 1e-12);
/// ```
pub fn mean<I>(pairs: I) -> Result<f64, StatsError>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let (pairs, total) = validated_total(pairs)?;
    Ok(pairs.iter().map(|(v, w)| v * w).sum::<f64>() / total)
}

/// Computes the exact mean and population variance under the measure.
///
/// # Errors
///
/// Same as [`mean`].
pub fn moments<I>(pairs: I) -> Result<Moments, StatsError>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let (pairs, total) = validated_total(pairs)?;
    let mean = pairs.iter().map(|(v, w)| v * w).sum::<f64>() / total;
    // Two-pass centred sum for accuracy.
    let variance = pairs
        .iter()
        .map(|(v, w)| (v - mean) * (v - mean) * w)
        .sum::<f64>()
        / total;
    Ok(Moments {
        mean,
        variance: variance.max(0.0),
    })
}

/// Computes the exact population variance `Var(f) = E[(f − E[f])²]`.
///
/// # Errors
///
/// Same as [`mean`].
pub fn variance<I>(pairs: I) -> Result<f64, StatsError>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    Ok(moments(pairs)?.variance)
}

/// Computes the exact covariance `Cov(f, g)` of two functions evaluated on
/// the same discrete measure, from `((f(x), g(x)), weight)` triples.
///
/// # Errors
///
/// Same as [`mean`].
///
/// # Examples
///
/// ```
/// // f and g perfectly anti-aligned on a two-point space.
/// let cov = diversim_stats::weighted::covariance([
///     ((0.0, 1.0), 0.5),
///     ((1.0, 0.0), 0.5),
/// ]).unwrap();
/// assert!((cov + 0.25).abs() < 1e-12);
/// ```
pub fn covariance<I>(triples: I) -> Result<f64, StatsError>
where
    I: IntoIterator<Item = ((f64, f64), f64)>,
{
    let mut collected = Vec::new();
    let mut total = 0.0_f64;
    for ((fv, gv), weight) in triples {
        if !weight.is_finite() || weight < 0.0 {
            return Err(StatsError::InvalidWeights);
        }
        total += weight;
        collected.push((fv, gv, weight));
    }
    if collected.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if total <= 0.0 || !total.is_finite() {
        return Err(StatsError::InvalidWeights);
    }
    let mean_f = collected.iter().map(|(f, _, w)| f * w).sum::<f64>() / total;
    let mean_g = collected.iter().map(|(_, g, w)| g * w).sum::<f64>() / total;
    Ok(collected
        .iter()
        .map(|(f, g, w)| (f - mean_f) * (g - mean_g) * w)
        .sum::<f64>()
        / total)
}

/// Computes `E[f·g]`, the mixed moment, from `((f(x), g(x)), weight)` triples.
///
/// # Errors
///
/// Same as [`mean`].
pub fn mixed_moment<I>(triples: I) -> Result<f64, StatsError>
where
    I: IntoIterator<Item = ((f64, f64), f64)>,
{
    let mut num = 0.0_f64;
    let mut total = 0.0_f64;
    let mut any = false;
    for ((fv, gv), weight) in triples {
        if !weight.is_finite() || weight < 0.0 {
            return Err(StatsError::InvalidWeights);
        }
        num += fv * gv * weight;
        total += weight;
        any = true;
    }
    if !any {
        return Err(StatsError::EmptySample);
    }
    if total <= 0.0 || !total.is_finite() {
        return Err(StatsError::InvalidWeights);
    }
    Ok(num / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_uniform_weights_is_arithmetic_mean() {
        let m = mean([(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weights_need_not_be_normalised() {
        let a = mean([(1.0, 2.0), (5.0, 6.0)]).unwrap();
        let b = mean([(1.0, 0.25), (5.0, 0.75)]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let v = variance([(3.0, 0.2), (3.0, 0.8)]).unwrap();
        assert!(v.abs() < 1e-24);
    }

    #[test]
    fn bernoulli_variance() {
        // f = 1 with prob 0.3 → Var = 0.3 * 0.7.
        let v = variance([(1.0, 0.3), (0.0, 0.7)]).unwrap();
        assert!((v - 0.21).abs() < 1e-12);
    }

    #[test]
    fn variance_identity_e2_minus_mean_sq() {
        let pairs = [(0.1, 0.2), (0.4, 0.5), (0.9, 0.3)];
        let m = moments(pairs).unwrap();
        let e2 = mean(pairs.iter().map(|&(v, w)| (v * v, w))).unwrap();
        assert!((m.variance - (e2 - m.mean * m.mean)).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_identical_functions_is_variance() {
        let pairs = [(0.2, 0.3), (0.7, 0.7)];
        let v = variance(pairs).unwrap();
        let c = covariance(pairs.iter().map(|&(x, w)| ((x, x), w))).unwrap();
        assert!((v - c).abs() < 1e-12);
    }

    #[test]
    fn mixed_moment_identity() {
        // E[fg] = Cov(f,g) + E[f]E[g].
        let triples = [((0.1, 0.9), 0.25), ((0.6, 0.2), 0.5), ((0.3, 0.4), 0.25)];
        let em = mixed_moment(triples).unwrap();
        let cov = covariance(triples).unwrap();
        let ef = mean(triples.iter().map(|&((f, _), w)| (f, w))).unwrap();
        let eg = mean(triples.iter().map(|&((_, g), w)| (g, w))).unwrap();
        assert!((em - (cov + ef * eg)).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_and_bad_weights() {
        assert_eq!(
            mean(std::iter::empty::<(f64, f64)>()),
            Err(StatsError::EmptySample)
        );
        assert_eq!(mean([(1.0, -0.5)]), Err(StatsError::InvalidWeights));
        assert_eq!(mean([(1.0, 0.0)]), Err(StatsError::InvalidWeights));
        assert_eq!(mean([(1.0, f64::NAN)]), Err(StatsError::InvalidWeights));
        assert_eq!(
            covariance([(((1.0), (2.0)), -1.0)]),
            Err(StatsError::InvalidWeights)
        );
    }

    #[test]
    fn variance_never_negative_under_rounding() {
        // Values so close that naive E[f²]−E[f]² could round negative.
        let x = 0.1 + 1e-15;
        let v = variance([(0.1, 0.5), (x, 0.5)]).unwrap();
        assert!(v >= 0.0);
    }
}
