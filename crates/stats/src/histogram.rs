//! Fixed-bin histograms for distribution shape reports.
//!
//! Used by the experiment harness to visualise the distribution of the
//! difficulty functions `θ(x)` and `ζ(x)` across demands, and of estimated
//! pfd across replications.

use crate::error::StatsError;

/// A histogram with equal-width bins over `[min, max)` plus explicit
/// underflow/overflow counters.
///
/// # Examples
///
/// ```
/// use diversim_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
/// for x in [0.1, 0.3, 0.35, 0.9] {
///     h.push(x);
/// }
/// assert_eq!(h.counts(), &[1, 2, 0, 1]);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[min, max)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidInterval`] if `min >= max` or either
    /// bound is non-finite, and [`StatsError::EmptySample`] if `bins == 0`.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self, StatsError> {
        if !min.is_finite() || !max.is_finite() || min >= max {
            return Err(StatsError::InvalidInterval { lo: min, hi: max });
        }
        if bins == 0 {
            return Err(StatsError::EmptySample);
        }
        Ok(Self {
            min,
            max,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation. Non-finite values are counted as overflow.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.overflow += 1;
            return;
        }
        if x < self.min {
            self.underflow += 1;
        } else if x >= self.max {
            // The exact upper bound is folded into the last bin, matching
            // the usual closed-right convention for the final bin.
            if x == self.max {
                let last = self.counts.len() - 1;
                self.counts[last] += 1;
            } else {
                self.overflow += 1;
            }
        } else {
            let width = (self.max - self.min) / self.counts.len() as f64;
            let idx = ((x - self.min) / width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `min`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `max` (and non-finite pushes).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations pushed, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Half-open range `[lo, hi)` covered by bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        let w = self.bin_width();
        (self.min + i as f64 * w, self.min + (i + 1) as f64 * w)
    }

    /// Index of the most populated bin (ties resolved to the lowest index).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }

    /// Combines two histograms over the *identical* binning, as if every
    /// observation had been pushed into one (bin, underflow and overflow
    /// counts add). This is what lets histograms accumulate in parallel
    /// blocks and merge deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms differ in bounds or bin count.
    pub fn merge(&self, other: &Self) -> Self {
        assert!(
            self.min == other.min
                && self.max == other.max
                && self.counts.len() == other.counts.len(),
            "cannot merge histograms with different binning"
        );
        Self {
            min: self.min,
            max: self.max,
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            underflow: self.underflow + other.underflow,
            overflow: self.overflow + other.overflow,
        }
    }

    /// Renders rows of `lo<TAB>hi<TAB>count` for machine-readable output.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for i in 0..self.counts.len() {
            let (lo, hi) = self.bin_range(i);
            out.push_str(&format!("{lo:.6}\t{hi:.6}\t{}\n", self.counts[i]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_construction() {
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn bins_cover_range_evenly() {
        let h = Histogram::new(0.0, 2.0, 4).unwrap();
        assert_eq!(h.bin_width(), 0.5);
        assert_eq!(h.bin_range(0), (0.0, 0.5));
        assert_eq!(h.bin_range(3), (1.5, 2.0));
    }

    #[test]
    fn boundary_values_bin_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.push(0.0); // first bin
        h.push(0.5); // second bin (half-open bins)
        h.push(1.0); // exact max folds into last bin
        assert_eq!(h.counts(), &[1, 2]);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.push(-0.1);
        h.push(1.5);
        h.push(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend([0.6, 0.6, 0.65, 0.1]);
        assert_eq!(h.mode_bin(), 2);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = Histogram::new(0.0, 1.0, 2).unwrap();
        a.extend([0.1, -1.0]);
        let mut b = Histogram::new(0.0, 1.0, 2).unwrap();
        b.extend([0.7, 2.0, 0.2]);
        let merged = a.merge(&b);
        assert_eq!(merged.counts(), &[2, 1]);
        assert_eq!(merged.underflow(), 1);
        assert_eq!(merged.overflow(), 1);
        assert_eq!(merged.total(), 5);
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn merge_rejects_mismatched_binning() {
        let a = Histogram::new(0.0, 1.0, 2).unwrap();
        let b = Histogram::new(0.0, 1.0, 3).unwrap();
        let _ = a.merge(&b);
    }

    #[test]
    fn tsv_has_one_row_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3).unwrap();
        h.push(0.5);
        let tsv = h.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.contains('\t'));
    }
}
