//! Test-campaign stopping rules.
//!
//! Section 2 of Popov & Littlewood notes that "the size of the test suite
//! ... is determined with respect to some stopping rule which gives the
//! tester sufficiently high confidence that the goal (e.g. targeted
//! reliability) has been achieved", citing Littlewood & Wright's
//! conservative stopping rules (the paper's reference \[3\]). This module
//! implements the standard rules so that suite sizes in the simulator can
//! be chosen the way the paper assumes:
//!
//! * [`StoppingRule::FixedSize`] — a budgeted number of demands;
//! * [`StoppingRule::FailureFree`] — the frequentist reliability-
//!   demonstration rule: enough failure-free demands that
//!   `1 − (1 − p₀)ⁿ ≥ c`;
//! * [`StoppingRule::BayesianBeta`] — a Beta-prior Bayesian rule: stop
//!   when the posterior probability that pfd < p₀ reaches the target
//!   confidence, assuming failure-free execution (conservative in the
//!   Littlewood–Wright sense when the prior is chosen pessimistically,
//!   e.g. uniform `Beta(1, 1)`).

use crate::error::StatsError;
use crate::special::reg_inc_beta;

/// Number of failure-free demands required to demonstrate `pfd < target`
/// with the given `confidence`, under the classical binomial argument:
/// the smallest `n` with `1 − (1 − target)ⁿ ≥ confidence`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] unless both arguments are in
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use diversim_stats::stopping::failure_free_tests_required;
/// // The classic "4605 tests for 10⁻³ at 99%" figure.
/// let n = failure_free_tests_required(1e-3, 0.99).unwrap();
/// assert_eq!(n, 4603);
/// ```
pub fn failure_free_tests_required(target: f64, confidence: f64) -> Result<u64, StatsError> {
    if !target.is_finite() || target <= 0.0 || target >= 1.0 {
        return Err(StatsError::InvalidProbability {
            name: "target",
            value: target,
        });
    }
    if !confidence.is_finite() || confidence <= 0.0 || confidence >= 1.0 {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    // n >= ln(1 − c) / ln(1 − p). `ln_1p` keeps the denominator exact
    // for targets below 2⁻⁵³, where `1.0 - target` rounds to 1.0 and
    // the naive formula would divide by ln(1) = 0 — claiming that zero
    // tests demonstrate an arbitrarily small pfd.
    let denominator = (-target).ln_1p();
    if denominator == 0.0 {
        return Ok(u64::MAX);
    }
    // Saturating float-to-int cast: demands beyond u64::MAX mean "no
    // achievable campaign", which the state machine can never reach.
    let n = ((1.0 - confidence).ln() / denominator).ceil();
    Ok(n as u64)
}

/// Confidence that `pfd < target` after `n` failure-free demands under the
/// classical rule: `1 − (1 − target)ⁿ`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] if `target ∉ (0, 1)`.
pub fn failure_free_confidence(target: f64, n: u64) -> Result<f64, StatsError> {
    if !target.is_finite() || target <= 0.0 || target >= 1.0 {
        return Err(StatsError::InvalidProbability {
            name: "target",
            value: target,
        });
    }
    // 1 − (1 − p)ⁿ as −expm1(n·ln1p(−p)): exact for subnormal targets
    // and demand counts beyond `powi`'s i32 range alike.
    Ok(-(n as f64 * (-target).ln_1p()).exp_m1())
}

/// Posterior probability that `pfd < target` after observing `failures`
/// failures in `n` demands, under a `Beta(a, b)` prior: `I_target(a + k,
/// b + n − k)`.
///
/// # Errors
///
/// Propagates errors from [`reg_inc_beta`]; also rejects `failures > n`.
pub fn bayesian_confidence(
    a: f64,
    b: f64,
    n: u64,
    failures: u64,
    target: f64,
) -> Result<f64, StatsError> {
    if failures > n {
        return Err(StatsError::InvalidInterval {
            lo: failures as f64,
            hi: n as f64,
        });
    }
    reg_inc_beta(a + failures as f64, b + (n - failures) as f64, target)
}

/// A rule deciding when a test campaign may stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingRule {
    /// Stop after exactly this many demands.
    FixedSize(u64),
    /// Stop once enough failure-free demands have been run to claim
    /// `pfd < target` with `confidence` (classical rule). Any failure
    /// resets the failure-free counter.
    FailureFree {
        /// Target probability of failure per demand.
        target: f64,
        /// Required confidence level, e.g. `0.99`.
        confidence: f64,
    },
    /// Stop once the Beta-posterior probability that `pfd < target`
    /// reaches `confidence`.
    BayesianBeta {
        /// Prior alpha (pseudo-failures). `1.0` gives the uniform prior.
        a: f64,
        /// Prior beta (pseudo-successes). `1.0` gives the uniform prior.
        b: f64,
        /// Target probability of failure per demand.
        target: f64,
        /// Required posterior confidence.
        confidence: f64,
    },
}

/// Streaming evaluation state for a [`StoppingRule`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingState {
    rule: StoppingRule,
    demands: u64,
    failures: u64,
    failure_free_run: u64,
}

impl StoppingState {
    /// Creates a fresh state for `rule`.
    pub fn new(rule: StoppingRule) -> Self {
        Self {
            rule,
            demands: 0,
            failures: 0,
            failure_free_run: 0,
        }
    }

    /// Records the outcome of one demand (`failed = true` for a failure).
    pub fn record(&mut self, failed: bool) {
        self.demands += 1;
        if failed {
            self.failures += 1;
            self.failure_free_run = 0;
        } else {
            self.failure_free_run += 1;
        }
    }

    /// Total demands recorded.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Total failures recorded.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Whether the rule allows stopping now.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors from the underlying rule.
    pub fn should_stop(&self) -> Result<bool, StatsError> {
        match self.rule {
            StoppingRule::FixedSize(n) => Ok(self.demands >= n),
            StoppingRule::FailureFree { target, confidence } => {
                let needed = failure_free_tests_required(target, confidence)?;
                Ok(self.failure_free_run >= needed)
            }
            StoppingRule::BayesianBeta {
                a,
                b,
                target,
                confidence,
            } => {
                let post = bayesian_confidence(a, b, self.demands, self.failures, target)?;
                Ok(post >= confidence)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_matches_closed_form() {
        // For target p and confidence c: n = ceil(ln(1-c)/ln(1-p)).
        let n = failure_free_tests_required(0.01, 0.95).unwrap();
        assert_eq!(n, 299); // ln(0.05)/ln(0.99) = 298.07...
        let n = failure_free_tests_required(0.1, 0.9).unwrap();
        assert_eq!(n, 22); // ln(0.1)/ln(0.9) = 21.85...
    }

    #[test]
    fn confidence_is_monotone_in_n() {
        let c10 = failure_free_confidence(0.01, 10).unwrap();
        let c100 = failure_free_confidence(0.01, 100).unwrap();
        let c1000 = failure_free_confidence(0.01, 1000).unwrap();
        assert!(c10 < c100 && c100 < c1000);
        assert!(c1000 < 1.0);
    }

    #[test]
    fn required_n_achieves_confidence() {
        for &(p, c) in &[(1e-3, 0.99), (0.05, 0.9), (0.5, 0.99)] {
            let n = failure_free_tests_required(p, c).unwrap();
            assert!(failure_free_confidence(p, n).unwrap() >= c);
            if n > 1 {
                assert!(failure_free_confidence(p, n - 1).unwrap() < c);
            }
        }
    }

    #[test]
    fn bayesian_uniform_prior_failure_free() {
        // Uniform prior, k = 0: posterior P(pfd < p) = 1 − (1 − p)^{n+1}.
        let post = bayesian_confidence(1.0, 1.0, 100, 0, 0.05).unwrap();
        let expected = 1.0 - 0.95f64.powi(101);
        assert!((post - expected).abs() < 1e-10);
    }

    #[test]
    fn bayesian_confidence_decreases_with_failures() {
        let none = bayesian_confidence(1.0, 1.0, 50, 0, 0.1).unwrap();
        let some = bayesian_confidence(1.0, 1.0, 50, 5, 0.1).unwrap();
        assert!(some < none);
    }

    #[test]
    fn bayesian_rejects_failures_beyond_n() {
        assert!(bayesian_confidence(1.0, 1.0, 5, 6, 0.1).is_err());
    }

    #[test]
    fn fixed_size_state_machine() {
        let mut st = StoppingState::new(StoppingRule::FixedSize(3));
        assert!(!st.should_stop().unwrap());
        st.record(false);
        st.record(true);
        assert!(!st.should_stop().unwrap());
        st.record(false);
        assert!(st.should_stop().unwrap());
        assert_eq!(st.demands(), 3);
        assert_eq!(st.failures(), 1);
    }

    #[test]
    fn failure_resets_failure_free_run() {
        let rule = StoppingRule::FailureFree {
            target: 0.1,
            confidence: 0.9,
        };
        let needed = failure_free_tests_required(0.1, 0.9).unwrap();
        let mut st = StoppingState::new(rule);
        for _ in 0..needed - 1 {
            st.record(false);
        }
        assert!(!st.should_stop().unwrap());
        st.record(true); // failure resets the run
        for _ in 0..needed - 1 {
            st.record(false);
        }
        assert!(!st.should_stop().unwrap());
        st.record(false);
        assert!(st.should_stop().unwrap());
    }

    #[test]
    fn bayesian_state_machine_stops_eventually() {
        let rule = StoppingRule::BayesianBeta {
            a: 1.0,
            b: 1.0,
            target: 0.05,
            confidence: 0.95,
        };
        let mut st = StoppingState::new(rule);
        let mut steps = 0;
        while !st.should_stop().unwrap() {
            st.record(false);
            steps += 1;
            assert!(steps < 10_000, "rule failed to stop");
        }
        // Classical rule needs 59 tests at p=0.05, c=0.95; the uniform-prior
        // Bayesian rule stops one test earlier (posterior uses n + 1).
        assert_eq!(steps, 58);
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(failure_free_tests_required(0.0, 0.9).is_err());
        assert!(failure_free_tests_required(0.5, 1.0).is_err());
        assert!(failure_free_confidence(1.0, 10).is_err());
    }

    #[test]
    fn target_boundaries_are_rejected_or_saturate() {
        // Exact boundaries of (0, 1) are invalid in both directions.
        for f in [
            failure_free_tests_required(0.0, 0.9),
            failure_free_tests_required(1.0, 0.9),
            failure_free_tests_required(-0.0, 0.9),
            failure_free_tests_required(f64::NAN, 0.9),
            failure_free_tests_required(0.5, 0.0),
        ] {
            assert!(f.is_err());
        }
        // Subnormal and sub-2⁻⁵³ targets are *valid* — and enormous.
        // The naive ln(1 − p) formula collapsed these to 0 required
        // tests, silently claiming any pfd is demonstrated for free.
        let tiny = failure_free_tests_required(1e-17, 0.99).unwrap();
        assert!(tiny > 1 << 57, "1e-17 needs ~4.6e17 tests, got {tiny}");
        let subnormal = failure_free_tests_required(5e-324, 0.99).unwrap();
        assert_eq!(subnormal, u64::MAX);
        // The matching confidence stays honest instead of rounding to 0.
        let c = failure_free_confidence(1e-17, 1 << 58).unwrap();
        assert!((0.9..1.0).contains(&c), "got {c}");
        // Even u64::MAX demands demonstrate (almost) nothing about a
        // subnormal target — the saturated requirement above is real.
        let c = failure_free_confidence(5e-324, u64::MAX).unwrap();
        assert!(c < 1e-300, "got {c}");
    }

    #[test]
    fn tiny_target_state_never_claims_success_early() {
        // Regression: with the required count collapsing to 0, this
        // state reported "stop" before the first demand was run.
        let st = StoppingState::new(StoppingRule::FailureFree {
            target: 1e-300,
            confidence: 0.99,
        });
        assert!(!st.should_stop().unwrap());
        let mut st = st;
        for _ in 0..1000 {
            st.record(false);
        }
        assert!(!st.should_stop().unwrap());
    }

    #[test]
    fn bayesian_prior_degeneracy() {
        // Posterior shape parameters that stay non-positive or
        // non-finite are rejected.
        assert!(bayesian_confidence(0.0, 1.0, 10, 0, 0.1).is_err());
        assert!(bayesian_confidence(1.0, 0.0, 10, 10, 0.1).is_err());
        assert!(bayesian_confidence(-1.0, 1.0, 10, 0, 0.1).is_err());
        assert!(bayesian_confidence(f64::INFINITY, 1.0, 10, 0, 0.1).is_err());
        assert!(bayesian_confidence(1.0, f64::NAN, 10, 0, 0.1).is_err());
        // Improper priors become proper the moment the data supplies
        // the missing pseudo-counts.
        assert!(bayesian_confidence(0.0, 1.0, 10, 2, 0.1).is_ok());
        assert!(bayesian_confidence(1.0, 0.0, 10, 2, 0.1).is_ok());
        // Target boundaries resolve to the exact CDF endpoints.
        assert_eq!(bayesian_confidence(1.0, 1.0, 10, 2, 0.0).unwrap(), 0.0);
        assert_eq!(bayesian_confidence(1.0, 1.0, 10, 2, 1.0).unwrap(), 1.0);
        // No data: the posterior is the prior; uniform prior → I_x(1,1) = x.
        let prior = bayesian_confidence(1.0, 1.0, 0, 0, 0.3).unwrap();
        assert!((prior - 0.3).abs() < 1e-13);
        // An overwhelmingly confident prior dominates a short campaign.
        let optimist = bayesian_confidence(1.0, 1e6, 10, 0, 0.05).unwrap();
        assert!(optimist > 0.999_999, "got {optimist}");
        let pessimist = bayesian_confidence(1e6, 1.0, 10, 0, 0.05).unwrap();
        assert!(pessimist < 1e-9, "got {pessimist}");
    }

    #[test]
    fn stopping_state_accumulates_across_should_stop_queries() {
        // should_stop is a pure observation: querying it never advances
        // the state.
        let mut st = StoppingState::new(StoppingRule::FixedSize(2));
        for _ in 0..5 {
            assert!(!st.should_stop().unwrap());
        }
        st.record(true);
        st.record(true);
        assert!(st.should_stop().unwrap());
        assert_eq!((st.demands(), st.failures()), (2, 2));
    }
}
