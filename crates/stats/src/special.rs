//! Special functions implemented from scratch.
//!
//! No external statistics crate is used in this reproduction, so the small
//! set of special functions needed by the confidence-interval and
//! stopping-rule machinery lives here: log-gamma (Lanczos), the regularized
//! incomplete gamma and beta functions, the error function, and the normal
//! quantile (Acklam's algorithm with a Halley refinement step).
//!
//! Accuracy targets are ~1e-12 absolute over the parameter ranges exercised
//! by this workspace (probabilities, small integer-ish shape parameters up
//! to a few thousand); unit tests pin reference values.

use crate::error::StatsError;

/// Lanczos coefficients for `g = 7`, `n = 9`.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`
/// (extended to non-integer negative arguments by reflection).
///
/// # Examples
///
/// ```
/// use diversim_stats::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-13);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS[0];
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 3.0e-15;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0`,
/// `x ≥ 0`.
///
/// # Errors
///
/// Returns [`StatsError::NonPositive`] if `a ≤ 0` and
/// [`StatsError::NoConvergence`] if the expansion fails to converge.
pub fn reg_inc_gamma(a: f64, x: f64) -> Result<f64, StatsError> {
    if !a.is_finite() || a <= 0.0 {
        return Err(StatsError::NonPositive {
            name: "a",
            value: a,
        });
    }
    if x < 0.0 || !x.is_finite() {
        return Err(StatsError::NonPositive {
            name: "x",
            value: x,
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..MAX_ITER {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * EPS {
                let ln_pre = -x + a * x.ln() - ln_gamma(a);
                return Ok((sum * ln_pre.exp()).clamp(0.0, 1.0));
            }
        }
        Err(StatsError::NoConvergence {
            routine: "reg_inc_gamma(series)",
        })
    } else {
        // Continued fraction for Q(a, x) = 1 − P(a, x), modified Lentz.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..=MAX_ITER {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < EPS {
                let ln_pre = -x + a * x.ln() - ln_gamma(a);
                return Ok((1.0 - ln_pre.exp() * h).clamp(0.0, 1.0));
            }
        }
        Err(StatsError::NoConvergence {
            routine: "reg_inc_gamma(cf)",
        })
    }
}

/// Continued-fraction kernel for the incomplete beta function
/// (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64, StatsError> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence { routine: "beta_cf" })
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// This is the CDF of the Beta(a, b) distribution, used for
/// Clopper–Pearson intervals and Bayesian stopping rules.
///
/// # Errors
///
/// Returns [`StatsError::NonPositive`] for non-positive shape parameters,
/// [`StatsError::InvalidProbability`] for `x` outside `[0, 1]` and
/// [`StatsError::NoConvergence`] if the continued fraction stalls.
///
/// # Examples
///
/// ```
/// use diversim_stats::special::reg_inc_beta;
/// // I_x(1, 1) = x (uniform CDF).
/// assert!((reg_inc_beta(1.0, 1.0, 0.3).unwrap() - 0.3).abs() < 1e-13);
/// ```
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64, StatsError> {
    if !a.is_finite() || a <= 0.0 {
        return Err(StatsError::NonPositive {
            name: "a",
            value: a,
        });
    }
    if !b.is_finite() || b <= 0.0 {
        return Err(StatsError::NonPositive {
            name: "b",
            value: b,
        });
    }
    if !(0.0..=1.0).contains(&x) || !x.is_finite() {
        return Err(StatsError::InvalidProbability {
            name: "x",
            value: x,
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((front * beta_cf(a, b, x)? / a).clamp(0.0, 1.0))
    } else {
        Ok((1.0 - front * beta_cf(b, a, 1.0 - x)? / b).clamp(0.0, 1.0))
    }
}

/// Inverse of the regularized incomplete beta function: the `p`-quantile of
/// the Beta(a, b) distribution.
///
/// Solved by bisection (72 iterations, bracketing to ~2⁻⁷²) which is fully
/// robust for the parameter ranges used here.
///
/// # Errors
///
/// Same conditions as [`reg_inc_beta`], with `p` validated as a probability.
pub fn inv_reg_inc_beta(a: f64, b: f64, p: f64) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(StatsError::InvalidProbability {
            name: "p",
            value: p,
        });
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    for _ in 0..72 {
        let mid = 0.5 * (lo + hi);
        if reg_inc_beta(a, b, mid)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Error function `erf(x)`, computed from the regularized incomplete gamma
/// function (`erf(x) = sign(x) · P(1/2, x²)`), accurate to ~1e-13.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_inc_gamma(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Acklam's rational approximation to the inverse normal CDF.
fn acklam(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Quantile of the standard normal distribution, `Φ⁻¹(p)`, for `p ∈ (0, 1)`.
///
/// Acklam's approximation refined with one Halley step against the accurate
/// [`normal_cdf`], giving near machine precision.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] unless `0 < p < 1`.
///
/// # Examples
///
/// ```
/// use diversim_stats::special::normal_quantile;
/// let z = normal_quantile(0.975).unwrap();
/// assert!((z - 1.959963984540054).abs() < 1e-9);
/// ```
pub fn normal_quantile(p: f64) -> Result<f64, StatsError> {
    if !p.is_finite() || p <= 0.0 || p >= 1.0 {
        return Err(StatsError::InvalidProbability {
            name: "p",
            value: p,
        });
    }
    let x = acklam(p);
    // One Halley refinement: e = Φ(x) − p, u = e / φ(x).
    let e = normal_cdf(x) - p;
    let phi = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let u = e / phi;
    Ok(x - u / (1.0 + 0.5 * x * u))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!(ln_gamma(1.0).abs() < 1e-13);
        assert!(ln_gamma(2.0).abs() < 1e-13);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(10) = 362880.
        assert!((ln_gamma(10.0) - 362_880f64.ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x).
        for &x in &[0.7, 1.3, 3.9, 12.4, 100.2] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "recurrence failed at {x}");
        }
    }

    #[test]
    fn inc_gamma_boundaries() {
        assert_eq!(reg_inc_gamma(1.0, 0.0).unwrap(), 0.0);
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 1.0, 3.5, 10.0] {
            let p = reg_inc_gamma(1.0, x).unwrap();
            assert!((p - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_uniform_case() {
        for &x in &[0.0, 0.1, 0.5, 0.77, 1.0] {
            assert!((reg_inc_beta(1.0, 1.0, x).unwrap() - x).abs() < 1e-13);
        }
    }

    #[test]
    fn inc_beta_closed_forms() {
        // I_x(2, 2) = x²(3 − 2x).
        for &x in &[0.2, 0.5, 0.8] {
            let expected = x * x * (3.0 - 2.0 * x);
            assert!((reg_inc_beta(2.0, 2.0, x).unwrap() - expected).abs() < 1e-12);
        }
        // I_x(1, b) = 1 − (1−x)^b.
        for &(x, b) in &[(0.3_f64, 4.0_f64), (0.05, 20.0)] {
            let expected = 1.0 - (1.0 - x).powf(b);
            assert!((reg_inc_beta(1.0, b, x).unwrap() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b, x) in &[(2.5, 3.5, 0.3), (0.5, 0.5, 0.9), (7.0, 2.0, 0.65)] {
            let lhs = reg_inc_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_beta_rejects_bad_args() {
        assert!(reg_inc_beta(0.0, 1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, -1.0, 0.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, 1.5).is_err());
        assert!(reg_inc_beta(1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn inv_beta_roundtrip() {
        for &(a, b) in &[(1.0, 1.0), (2.0, 5.0), (0.5, 0.5), (30.0, 70.0)] {
            for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
                let x = inv_reg_inc_beta(a, b, p).unwrap();
                let back = reg_inc_beta(a, b, x).unwrap();
                assert!(
                    (back - p).abs() < 1e-10,
                    "roundtrip failed for a={a} b={b} p={p}"
                );
            }
        }
    }

    #[test]
    fn inv_beta_edge_probabilities() {
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(inv_reg_inc_beta(2.0, 3.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.7, 1.5, 3.0] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-13);
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5).unwrap()).abs() < 1e-12);
        assert!((normal_quantile(0.975).unwrap() - 1.959_963_984_540_054).abs() < 1e-10);
        assert!((normal_quantile(0.995).unwrap() - 2.575_829_303_548_901).abs() < 1e-10);
        // Deep tail.
        assert!((normal_quantile(1e-10).unwrap() + 6.361_340_902_404_056).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[0.001, 0.1, 0.3, 0.5, 0.8, 0.99, 0.9999] {
            let z = normal_quantile(p).unwrap();
            assert!((normal_cdf(z) - p).abs() < 1e-12, "roundtrip failed at {p}");
        }
    }

    #[test]
    fn normal_quantile_rejects_bounds() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }
}
